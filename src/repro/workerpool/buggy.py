"""The parallel-gem 0.5.9 fork discipline — the bug of paper §6.4.

*"where fork and IO.pipe operations take place interleaved by the
threads that interact with the child processes, Dionea very often
detects a concurrency error ...: The debuggee processes get into a
deadlock situation due to the failure in closing input pipe of the
child process. ... All the unnecessary pipes used for each of the forked
processes are copied."*

Reconstructed faithfully:

* each parent-side interaction thread creates its own worker's pipes and
  **forks from that thread**, concurrently with its siblings;
* a child forked while other workers' pipes already exist inherits
  copies of those descriptors and — this is the bug — never closes them;
* when the parent closes worker A's task write-end to signal
  end-of-tasks, the kernel still counts sibling B's inherited copy, so
  worker A never sees EOF and blocks in ``read`` forever.

In the wild the overlap window is a race ("rarely happens"); the
constructor's ``race_window`` barrier widens it deterministically —
playing the role disturb mode plays in the paper's §6.4 workflow, where
stopping every new process lets the user interleave the threads at will.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, List, Optional

from .pool import WorkerChannels, WorkerPoolBase, make_channels, worker_main

import os


class BuggyWorkerPool(WorkerPoolBase):
    """parallel 0.5.9: concurrent forks from interacting threads,
    inherited sibling pipes never closed."""

    def __init__(self, n_workers: int, join_timeout: float = 5.0,
                 race_window: bool = True):
        super().__init__(n_workers, join_timeout)
        #: When True, a barrier makes every thread create its pipes
        #: before any thread forks — the worst-case interleaving, which
        #: turns the intermittent deadlock into a certain one.
        self.race_window = race_window

    def _spawn_all(self, func: Callable[[Any], Any],
                   task_slices: List[List[Any]]) -> List[WorkerChannels]:
        channels: List[Optional[WorkerChannels]] = [None] * self.n_workers
        barrier = (threading.Barrier(self.n_workers)
                   if self.race_window and self.n_workers > 1 else None)

        def spawn(index: int) -> None:
            # Pipes created by the interacting thread itself...
            ch = make_channels(index)
            channels[index] = ch
            if barrier is not None:
                # ...all live before anyone forks: every child will
                # inherit every sibling's descriptors.
                barrier.wait(timeout=10.0)
            pid = os.fork()
            if pid == 0:
                # THE BUG: the child keeps running with every inherited
                # descriptor open.  It closes only the parent ends of its
                # *own* pipes; sibling pipes (channels[j] for j != index)
                # stay open in this process for as long as it lives.
                ch.child_keep_own()
                worker_main(ch, func)
                os._exit(0)
            ch.pid = pid
            ch.parent_after_fork()

        threads = [threading.Thread(target=spawn, args=(i,),
                                    name=f"buggy-spawn-{i}")
                   for i in range(self.n_workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(15.0)
        spawned = [ch for ch in channels if ch is not None]
        return spawned

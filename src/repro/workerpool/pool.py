"""Shared machinery for the parallel-gem-style worker pool (paper §6.4).

The Ruby *parallel* gem, as the paper describes it, spawns worker
**processes** and talks to each through pipes; one parent-side thread per
worker feeds tasks and collects results.  The protocol here mirrors
that:

* per worker, two one-way pipes: ``tasks`` (parent → child) and
  ``results`` (child → parent);
* the parent writes task frames, then **closes its task write-end**;
  end-of-tasks is signalled by EOF;
* the child maps its function over tasks until EOF, writes results,
  and exits (its ends close with the process);
* the parent reads results until EOF.

The EOF-based shutdown is precisely what makes the §6.4 bug possible:
the child only sees EOF when the **last** open copy of the task pipe's
write end closes.  If a sibling child inherited a copy and never closes
it, the parent's close is not enough — the worker blocks forever.  The
two pool subclasses differ *only* in fork discipline (who forks, when,
and what the child closes), isolating the bug the paper reported
against parallel 0.5.9 and the fix that became 0.5.10/11.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..mp.pipes import Connection, Pipe
from ..util.errors import PoolError, QueueClosed


@dataclass
class WorkerChannels:
    """Parent-side view of one worker's pipes."""

    index: int
    task_reader: Connection   # child reads tasks here
    task_writer: Connection   # parent writes tasks here
    result_reader: Connection  # parent reads results here
    result_writer: Connection  # child writes results here
    pid: Optional[int] = None

    def parent_after_fork(self) -> None:
        """Parent keeps task_writer + result_reader; drops the child ends."""
        self.task_reader.close()
        self.result_writer.close()

    def child_keep_own(self) -> None:
        """Child keeps task_reader + result_writer; drops the parent ends."""
        self.task_writer.close()
        self.result_reader.close()


@dataclass
class WorkerOutcome:
    """What the parent observed for one worker."""

    index: int
    pid: Optional[int]
    results: List[Any] = field(default_factory=list)
    finished: bool = False
    hung: bool = False
    error: Optional[str] = None


def make_channels(index: int) -> WorkerChannels:
    task_reader, task_writer = Pipe(label=f"w{index}.tasks")
    result_reader, result_writer = Pipe(label=f"w{index}.results")
    return WorkerChannels(index=index,
                          task_reader=task_reader,
                          task_writer=task_writer,
                          result_reader=result_reader,
                          result_writer=result_writer)


def worker_main(channels: WorkerChannels,
                func: Callable[[Any], Any]) -> None:
    """Child body: map *func* over tasks until EOF, then exit."""
    try:
        while True:
            try:
                task = channels.task_reader.recv()
            except EOFError:
                break
            try:
                channels.result_writer.send(("ok", func(task)))
            except QueueClosed:
                break
    finally:
        channels.task_reader.close()
        channels.result_writer.close()


def feed_and_collect(channels: WorkerChannels,
                     tasks: Sequence[Any],
                     outcome: WorkerOutcome,
                     join_timeout: float) -> None:
    """Parent-side interaction thread for one worker.

    Writes every task, closes the write end (EOF = no more tasks), then
    drains results.  A worker that never EOFs its result stream within
    *join_timeout* of the last observed activity is reported ``hung`` —
    which is how the §6.4 deadlock becomes observable instead of
    wedging the whole test suite.
    """
    import select

    try:
        for task in tasks:
            channels.task_writer.send(task)
        channels.task_writer.close()
        fd = channels.result_reader.fileno()
        while True:
            ready, _, _ = select.select([fd], [], [], join_timeout)
            if not ready:
                outcome.hung = True
                return
            try:
                kind, value = channels.result_reader.recv()
            except EOFError:
                break
            except QueueClosed as exc:
                outcome.error = str(exc)
                return
            if kind == "ok":
                outcome.results.append(value)
            else:
                outcome.error = str(value)
        outcome.finished = True
    except QueueClosed as exc:
        outcome.error = str(exc)


class WorkerPoolBase:
    """Common surface: map tasks over N worker processes."""

    def __init__(self, n_workers: int, join_timeout: float = 5.0):
        if n_workers < 1:
            raise PoolError("need at least one worker")
        self.n_workers = n_workers
        self.join_timeout = join_timeout

    # subclasses implement the fork discipline:
    def _spawn_all(self, func: Callable[[Any], Any],
                   task_slices: List[List[Any]]) -> List[WorkerChannels]:
        raise NotImplementedError

    def map(self, func: Callable[[Any], Any],
            tasks: Sequence[Any]) -> Tuple[List[Any], List[WorkerOutcome]]:
        """Distribute *tasks* round-robin; returns (results, outcomes).

        Results keep task order.  Hung/failed workers yield partial or
        empty result slices — the caller inspects outcomes (the §6.4
        test asserts ``hung`` for the buggy pool).
        """
        slices: List[List[Any]] = [[] for _ in range(self.n_workers)]
        slots: List[List[int]] = [[] for _ in range(self.n_workers)]
        for i, task in enumerate(tasks):
            slices[i % self.n_workers].append(task)
            slots[i % self.n_workers].append(i)

        channels = self._spawn_all(func, slices)

        outcomes = [WorkerOutcome(index=ch.index, pid=ch.pid)
                    for ch in channels]
        threads = []
        for ch, outcome, task_slice in zip(channels, outcomes, slices):
            thread = threading.Thread(
                target=feed_and_collect,
                args=(ch, task_slice, outcome, self.join_timeout),
                name=f"workerpool-io-{ch.index}")
            thread.start()
            threads.append(thread)
        for thread in threads:
            thread.join(self.join_timeout + 10.0)

        ordered: List[Any] = [None] * len(tasks)
        for outcome, slot_list in zip(outcomes, slots):
            for value, index in zip(outcome.results, slot_list):
                ordered[index] = value
        self._reap(channels, outcomes)
        return ordered, outcomes

    @staticmethod
    def _reap(channels: List[WorkerChannels],
              outcomes: List[WorkerOutcome]) -> None:
        """Close leftovers and collect children (kill the hung ones)."""
        import signal
        for ch, outcome in zip(channels, outcomes):
            for conn in (ch.task_writer, ch.result_reader):
                conn.close()
            if ch.pid is None:
                continue
            try:
                pid, _status = os.waitpid(ch.pid, os.WNOHANG)
                if pid == 0:
                    os.kill(ch.pid, signal.SIGKILL)
                    os.waitpid(ch.pid, 0)
            except (ChildProcessError, ProcessLookupError):
                pass

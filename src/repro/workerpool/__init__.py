"""parallel-gem analogue: the §6.4 pipe bug and its fix."""

from .buggy import BuggyWorkerPool
from .fixed import FixedWorkerPool
from .pool import WorkerChannels, WorkerOutcome, WorkerPoolBase

__all__ = ["BuggyWorkerPool", "FixedWorkerPool", "WorkerChannels",
           "WorkerOutcome", "WorkerPoolBase"]

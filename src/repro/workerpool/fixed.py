"""The parallel-gem 0.5.10/0.5.11 fork discipline — the §6.4 fix.

*"Therefore, the forks must be done sequentially by the main thread, not
by the threads that interact with the child processes.  By doing so,
each of the forked processes can close the copied but unused pipes (for
sibling processes)."*

Both halves of the fix are implemented and individually necessary:

1. **sequential forks by the calling thread** — no fork overlaps another
   worker's pipe creation, so the inherited-descriptor set is known;
2. **children close sibling pipes** — each child walks the full channel
   list and closes every descriptor that is not its own.

With these, the parent's close of a task write-end is the *last* open
copy, the worker sees EOF, and shutdown is deterministic.
"""

from __future__ import annotations

import os
from typing import Any, Callable, List

from .pool import WorkerChannels, WorkerPoolBase, make_channels, worker_main


class FixedWorkerPool(WorkerPoolBase):
    """parallel 0.5.10/11: sequential forks + sibling-pipe hygiene."""

    def _spawn_all(self, func: Callable[[Any], Any],
                   task_slices: List[List[Any]]) -> List[WorkerChannels]:
        # All pipes first, created by one thread: the fork below therefore
        # copies a *known* set of descriptors into every child.
        channels = [make_channels(i) for i in range(self.n_workers)]
        for index, ch in enumerate(channels):
            pid = os.fork()
            if pid == 0:
                # THE FIX, part 2: close every sibling's pipes.  Only this
                # worker's task_reader/result_writer stay open.
                for other in channels:
                    if other.index == index:
                        other.child_keep_own()
                    else:
                        other.task_reader.close()
                        other.task_writer.close()
                        other.result_reader.close()
                        other.result_writer.close()
                worker_main(ch, func)
                os._exit(0)
            ch.pid = pid
            ch.parent_after_fork()
        return channels

"""Text rendering of the full Dionea client window (paper Fig. 2).

The paper's client is a Qt GUI; per DESIGN.md the reproduction renders
the same panes as text so every affordance of Fig. 2 is testable:

::

    +--------------------------------------+----------------------+
    | Source code view                     | Processes & threads  |
    | (active debug view, -> at the stop)  | (tree, stop markers) |
    +--------------------------------------+----------------------+
    | Variables                            | Output window        |
    +--------------------------------------+----------------------+

The command shell (:mod:`repro.client.shell`) and the Input window
(``input`` command) complete the figure.
"""

from __future__ import annotations

from typing import List, Optional

from ..util.errors import ViewError
from .client import DebugClient
from .view import DebugView

PANE_WIDTH = 58
SIDE_WIDTH = 40


def _fit(text: str, width: int) -> str:
    if len(text) <= width:
        return text.ljust(width)
    return text[:width - 3] + "..."


class TextUI:
    """Renders a :class:`DebugClient`'s state as Fig. 2-style panes."""

    def __init__(self, client: DebugClient,
                 source_context: int = 6,
                 max_variables: int = 12,
                 output_tail: int = 8):
        self.client = client
        self.source_context = source_context
        self.max_variables = max_variables
        self.output_tail = output_tail

    # -- panes -----------------------------------------------------------------

    def source_pane(self, view: DebugView) -> List[str]:
        """Fig. 2's Source code view for the active debug view."""
        if not view.is_stopped or view.capture is None:
            return [f"{view.ue}: running (no source position)"]
        import os
        rendered = view.render(context=self.source_context)
        header = (f"{os.path.basename(rendered['file'])}:"
                  f"{rendered['line']} "
                  f"in {rendered['function']}() [{rendered['reason']}]")
        return [header, "-" * len(header)] + rendered["source"]

    def processes_pane(self) -> List[str]:
        """Fig. 2's Processes-and-threads view, with per-UE state."""
        lines: List[str] = []
        tree = self.client.process_tree.render()
        if tree:
            lines.extend(tree.splitlines())
        for session in self.client.sessions():
            try:
                rows = session.threads()
            except Exception:  # noqa: BLE001 - session may be closing
                continue
            for row in rows:
                marker = "*" if row["parked"] else " "
                lines.append(f"  {marker} {row['label']}")
        return lines or ["(no debuggees attached)"]

    def variables_pane(self, view: DebugView) -> List[str]:
        """Fig. 2's Variables area for the active view's top frame."""
        capture = view.capture
        if capture is None or capture.top is None:
            return ["(not stopped)"]
        rows = sorted(capture.top.locals.items())
        lines = [f"{name} = {value}" for name, value in rows]
        if len(lines) > self.max_variables:
            extra = len(lines) - self.max_variables
            lines = lines[:self.max_variables] + [f"... (+{extra} more)"]
        return lines or ["(no locals)"]

    def output_pane(self, pid: int) -> List[str]:
        """Fig. 2's Output window for one debuggee."""
        text = self.client.output_for(pid)
        if not text:
            return ["(no output)"]
        return text.splitlines()[-self.output_tail:]

    # -- the full window -----------------------------------------------------------

    def render(self, view: Optional[DebugView] = None) -> str:
        """The whole Fig. 2 window for the active (or given) view."""
        view = view or self.client.active_view
        if view is None:
            stopped = self.client.stopped_views()
            if not stopped:
                raise ViewError("no active or stopped view to render")
            view = stopped[0]

        source = self.source_pane(view)
        procs = self.processes_pane()
        variables = self.variables_pane(view)
        output = self.output_pane(view.ue.pid)

        def two_columns(left: List[str], right: List[str]) -> List[str]:
            height = max(len(left), len(right))
            rows = []
            for i in range(height):
                l = left[i] if i < len(left) else ""
                r = right[i] if i < len(right) else ""
                rows.append(f"| {_fit(l, PANE_WIDTH)} | "
                            f"{_fit(r, SIDE_WIDTH)} |")
            return rows

        bar = "+" + "-" * (PANE_WIDTH + 2) + "+" + "-" * (SIDE_WIDTH + 2) + "+"
        header = two_columns(["SOURCE"], ["PROCESSES AND THREADS"])
        body = two_columns(source, procs)
        mid_header = two_columns(["VARIABLES"], ["OUTPUT"])
        bottom = two_columns(variables, output)
        return "\n".join([bar] + header + [bar] + body + [bar]
                         + mid_header + [bar] + bottom + [bar])

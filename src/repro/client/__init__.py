"""Debug client: sessions, views, shell (paper sections 4.1-4.2)."""

from .client import DebugClient
from .reactor import ClientReactor
from .recording import SessionRecorder, TranscriptEntry
from .session import DebugSession, PendingCall
from .shell import Shell, parse_location
from .textui import TextUI
from .view import DebugView

__all__ = ["ClientReactor", "DebugClient", "PendingCall",
           "SessionRecorder", "TranscriptEntry",
           "DebugSession", "Shell", "parse_location", "TextUI",
           "DebugView"]

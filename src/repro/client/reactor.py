"""ClientReactor: one event loop for every session's sockets.

The paper's Fig. 1 promises "debug multiple processes from a single
client"; this module is what makes that cheap at fleet scale.  Instead
of three threads per :class:`~repro.client.session.DebugSession`
(reader, event dispatcher, heartbeat), ONE selector loop owns every
session's command and source sockets, and ONE dispatcher thread runs
user-facing callbacks — so a 200-worker attach costs two client threads,
not six hundred.

Division of labour:

* **reactor thread** — the selector loop.  Non-blocking framed I/O via
  the resumable :class:`~repro.util.framing.SendBuffer` /
  :class:`~repro.util.framing.RecvBuffer` pair, a timer wheel (heartbeat
  ticks, portfile polls), and a command queue for cross-thread requests
  (register, write-interest, close).  Nothing here may block: no
  ``time.sleep``, no blocking ``recv`` — ``tools/lint_hotpath.py``
  enforces this for the whole module.
* **dispatcher thread** — runs deferred callbacks that are *allowed* to
  block (stop handlers that issue requests, portfile dials).  Callbacks
  are run strictly in submission order, which preserves per-session
  event order.

Requesting threads interact with the loop only through
:meth:`ClientReactor.submit`, which appends the frame to the channel's
write buffer, opportunistically pumps the socket inline (the common
small-frame case completes without waking the loop at all), and arms
write interest only when the kernel pushed back.  Per-channel write
buffers are bounded: a submitter that outruns a stalled peer blocks on
the channel's backpressure condition rather than buffering without
limit (the reactor thread itself never blocks — it drops heartbeat
pings instead).
"""

from __future__ import annotations

import heapq
import itertools
import os
import queue
import selectors
import socket
import threading
from time import monotonic as _monotonic
from time import perf_counter as _perf_counter
from typing import Any, Callable, List, Optional

from ..obs import metrics as obs_metrics
from ..util.errors import FramingError
from ..util.framing import RecvBuffer, SendBuffer, encode_frame

#: Per-channel write-buffer bound; a submitting thread blocks (never the
#: reactor thread) while a channel holds more unsent bytes than this.
HIGH_WATER_BYTES = 1 << 20


class Timer:
    """One scheduled callback on the reactor's timer wheel."""

    __slots__ = ("when", "fn", "cancelled")

    def __init__(self, when: float, fn: Callable[[], None]):
        self.when = when
        self.fn = fn
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class Channel:
    """One registered socket: framing state + write queue + callbacks.

    ``on_messages(list)`` runs on the reactor thread and must not block;
    ``on_closed(reason)`` runs on the reactor thread when the peer goes
    away (``reason`` is ``None`` for an orderly EOF, an exception for a
    mid-frame loss).
    """

    def __init__(self, reactor: "ClientReactor", sock: socket.socket,
                 on_messages: Callable[[List[Any]], None],
                 on_closed: Callable[[Optional[BaseException]], None],
                 label: str = "?"):
        self.reactor = reactor
        self.sock = sock
        self.label = label
        self.on_messages = on_messages
        self.on_closed = on_closed
        self.recvbuf = RecvBuffer()
        self.sendbuf = SendBuffer()
        self.cond = threading.Condition()
        self.closed = False
        #: reactor-thread-only: is EVENT_WRITE currently registered?
        self.write_armed = False

    def fileno(self) -> int:
        return self.sock.fileno()


class ClientReactor:
    """Single-threaded selector loop multiplexing every client socket."""

    def __init__(self, name: str = "dionea-reactor"):
        self.name = name
        self._selector = selectors.DefaultSelector()
        self._wake_r, self._wake_w = os.pipe()
        os.set_blocking(self._wake_r, False)
        os.set_blocking(self._wake_w, False)
        self._selector.register(self._wake_r, selectors.EVENT_READ,
                                data=None)
        #: thunks to run on the reactor thread (register/interest/close)
        self._commands: "queue.SimpleQueue[Callable[[], None]]" = \
            queue.SimpleQueue()
        self._timers: List[tuple] = []
        self._timer_seq = itertools.count()
        self._channels: List[Channel] = []
        self._lock = threading.Lock()
        self._dispatch_queue: "queue.SimpleQueue[Optional[Callable]]" = \
            queue.SimpleQueue()
        self._stopping = False
        self._closed = False
        self._thread: Optional[threading.Thread] = None
        self._dispatcher: Optional[threading.Thread] = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        """Start loop + dispatcher threads (idempotent)."""
        with self._lock:
            if self._closed:
                raise FramingError("reactor is closed")
            if self._thread is not None:
                return
            self._thread = threading.Thread(
                target=self._run, name=self.name, daemon=True)
            self._dispatcher = threading.Thread(
                target=self._dispatch_loop, name=f"{self.name}-events",
                daemon=True)
            self._thread.start()
            self._dispatcher.start()

    def close(self, timeout: float = 5.0) -> None:
        """Stop both threads and close every registered socket."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._stopping = True
        self._wake()
        thread = self._thread
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout)
        self._dispatch_queue.put(None)
        dispatcher = self._dispatcher
        if (dispatcher is not None
                and dispatcher is not threading.current_thread()):
            dispatcher.join(timeout)
        # The loop's finally closed registered sockets; if the loop never
        # ran (close before first register), clean up directly.
        if thread is None:
            self._teardown()

    # -- cross-thread API --------------------------------------------------

    def register(self, sock: socket.socket,
                 on_messages: Callable[[List[Any]], None],
                 on_closed: Callable[[Optional[BaseException]], None],
                 label: str = "?") -> Channel:
        """Adopt *sock* into the loop; returns its :class:`Channel`.

        The socket is switched to non-blocking mode; all further reads
        happen on the reactor thread.  Starts the reactor on first use.
        """
        self.start()
        sock.setblocking(False)
        channel = Channel(self, sock, on_messages, on_closed, label=label)
        self._call(lambda: self._do_register(channel))
        return channel

    def submit(self, channel: Channel, message: Any) -> None:
        """Queue one framed *message* on *channel* and push it along.

        Appends to the channel's resumable write buffer, pumps the
        socket inline (so an uncontended small frame goes out with no
        loop round-trip), and arms write interest if bytes remain.
        Raises ``OSError`` if the channel is closed, and blocks on
        backpressure when called from a non-reactor thread while the
        buffer is above the high-water mark.
        """
        frame = encode_frame(message)
        on_reactor_thread = threading.current_thread() is self._thread
        failure: Optional[BaseException] = None
        with channel.cond:
            if not on_reactor_thread:
                while (not channel.closed
                       and channel.sendbuf.pending_bytes >= HIGH_WATER_BYTES):
                    obs_metrics.inc("client.reactor_backpressure_waits")
                    channel.cond.wait(0.5)
            if channel.closed:
                raise OSError(f"channel {channel.label} is closed")
            if (on_reactor_thread
                    and channel.sendbuf.pending_bytes >= HIGH_WATER_BYTES):
                # The loop must never block on its own backpressure;
                # drop loop-originated traffic (heartbeats) instead.
                obs_metrics.inc("client.reactor_dropped_frames")
                return
            channel.sendbuf.append(frame)
            obs_metrics.inc("client.reactor_tx_frames")
            try:
                drained = channel.sendbuf.pump(channel.sock)
            except (FramingError, OSError) as exc:
                failure = exc
        if failure is not None:
            self._call(lambda: self._do_close(channel, failure))
            raise OSError(
                f"send on {channel.label} failed: {failure}") from failure
        if not drained:
            self._call(lambda: self._do_arm_write(channel))

    def close_channel(self, channel: Channel,
                      shutdown: bool = True) -> None:
        """Take *channel* out of the loop and close its socket."""
        with channel.cond:
            channel.closed = True
            channel.cond.notify_all()
        self._call(lambda: self._do_unregister(channel, shutdown))

    def call_later(self, delay: float, fn: Callable[[], None]) -> Timer:
        """Run *fn* on the reactor thread after *delay* seconds.

        Starts the loop on first use: a timer may well be the client's
        first interaction (``watch_portfile`` before any attach).
        """
        self.start()
        timer = Timer(_monotonic() + max(0.0, delay), fn)
        self._call(lambda: heapq.heappush(
            self._timers, (timer.when, next(self._timer_seq), timer)))
        return timer

    def defer(self, fn: Callable[[], None]) -> None:
        """Run *fn* on the dispatcher thread (blocking allowed there)."""
        self.start()
        self._dispatch_queue.put(fn)

    def _dispatch_loop(self) -> None:
        """Dispatcher thread: deferred callbacks, submission order."""
        from ..util.ids import untrace_current_thread
        untrace_current_thread()  # infra thread: never a debuggee UE
        while True:
            fn = self._dispatch_queue.get()
            if fn is None:
                return
            try:
                fn()
            except Exception:  # noqa: BLE001 - callbacks must not kill it
                pass

    # -- loop internals (reactor thread only unless noted) -----------------

    def _call(self, thunk: Callable[[], None]) -> None:
        """Run *thunk* on the loop thread: inline if already there."""
        if threading.current_thread() is self._thread:
            thunk()
        else:
            self._commands.put(thunk)
            self._wake()

    def _wake(self) -> None:
        try:
            os.write(self._wake_w, b"x")
        except OSError:
            pass  # pipe full: the loop is already due to wake

    def _do_register(self, channel: Channel) -> None:
        if self._stopping:
            self._do_unregister(channel, shutdown=False)
            return
        self._channels.append(channel)
        try:
            self._selector.register(channel, selectors.EVENT_READ,
                                    data=channel)
        except (KeyError, ValueError, OSError):
            self._do_close(channel, None)

    def _do_arm_write(self, channel: Channel) -> None:
        if channel.closed or channel.write_armed:
            return
        try:
            self._selector.modify(
                channel, selectors.EVENT_READ | selectors.EVENT_WRITE,
                data=channel)
            channel.write_armed = True
        except (KeyError, ValueError, OSError):
            pass

    def _do_disarm_write(self, channel: Channel) -> None:
        if not channel.write_armed:
            return
        try:
            self._selector.modify(channel, selectors.EVENT_READ,
                                  data=channel)
        except (KeyError, ValueError, OSError):
            pass
        channel.write_armed = False

    def _do_unregister(self, channel: Channel, shutdown: bool) -> None:
        try:
            self._selector.unregister(channel)
        except (KeyError, ValueError, OSError):
            pass
        if channel in self._channels:
            self._channels.remove(channel)
        if shutdown:
            try:
                channel.sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        try:
            channel.sock.close()
        except OSError:
            pass

    def _do_close(self, channel: Channel,
                  reason: Optional[BaseException]) -> None:
        """Peer loss noticed by the loop: tear down + notify the owner."""
        already = channel.closed
        with channel.cond:
            channel.closed = True
            channel.cond.notify_all()
        self._do_unregister(channel, shutdown=False)
        if not already:
            try:
                channel.on_closed(reason)
            except Exception:  # noqa: BLE001 - loop must survive owners
                pass

    def _service(self, channel: Channel, mask: int) -> None:
        if mask & selectors.EVENT_WRITE:
            failure: Optional[BaseException] = None
            drained = False
            with channel.cond:
                try:
                    drained = channel.sendbuf.pump(channel.sock)
                except (FramingError, OSError) as exc:
                    failure = exc
                if drained:
                    channel.cond.notify_all()
            if failure is not None:
                self._do_close(channel, failure)
                return
            if drained:
                self._do_disarm_write(channel)
        if mask & selectors.EVENT_READ:
            try:
                messages, eof = channel.recvbuf.pump(channel.sock)
            except (FramingError, OSError) as exc:
                self._do_close(channel, exc)
                return
            if messages:
                obs_metrics.inc("client.reactor_rx_frames", len(messages))
                try:
                    channel.on_messages(messages)
                except Exception:  # noqa: BLE001 - loop must survive owners
                    pass
            if eof:
                self._do_close(channel, None)

    def _run_timers(self) -> None:
        now = _monotonic()
        while self._timers and self._timers[0][0] <= now:
            _when, _seq, timer = heapq.heappop(self._timers)
            if timer.cancelled:
                continue
            try:
                timer.fn()
            except Exception:  # noqa: BLE001 - loop must survive owners
                pass

    def _next_timeout(self) -> Optional[float]:
        while self._timers and self._timers[0][2].cancelled:
            heapq.heappop(self._timers)
        if not self._timers:
            return None
        return max(0.0, self._timers[0][0] - _monotonic())

    def _run(self) -> None:
        from ..util.ids import untrace_current_thread
        untrace_current_thread()  # infra thread: never a debuggee UE
        try:
            while not self._stopping:
                events = self._selector.select(self._next_timeout())
                tick_start = _perf_counter()
                for key, mask in events:
                    if key.data is None:
                        try:
                            os.read(self._wake_r, 4096)
                        except OSError:
                            pass
                    else:
                        self._service(key.data, mask)
                while True:
                    try:
                        thunk = self._commands.get_nowait()
                    except queue.Empty:
                        break
                    thunk()
                self._run_timers()
                if events:
                    # Loop lag: how long one batch of ready events holds
                    # the single loop — every session queues behind it.
                    obs_metrics.observe("client.reactor_tick_seconds",
                                        _perf_counter() - tick_start)
        finally:
            self._teardown()

    def _teardown(self) -> None:
        for channel in list(self._channels):
            self._do_close(channel, None)
        try:
            self._selector.close()
        except OSError:
            pass
        for fd in (self._wake_r, self._wake_w):
            try:
                os.close(fd)
            except OSError:
                pass

    # -- introspection ------------------------------------------------------

    def channel_count(self) -> int:
        return len(self._channels)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ClientReactor {self.name} channels={len(self._channels)} "
                f"running={self.running}>")

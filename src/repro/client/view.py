"""DebugView: the client's handle on one UE (paper section 4.2).

*"Debug views can be understood as the sequence of interactions between
the client and a concrete UE of the debuggee ... There is only one
debuggee view active at a time.  Debug views are presented on the client
side in form of source code and variables with their values."*

A view tracks whether its UE is stopped, carries the last stack capture
the server shipped, and offers the shell verbs (continue/step/next/...).
Rendering (:meth:`DebugView.render`) produces exactly what Fig. 2 shows
for the active view: source context around the stop line, the stack, and
the variables table.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, TYPE_CHECKING

from ..server import protocol
from ..tracing.frames import StackCapture
from ..util.errors import ViewError
from ..util.ids import UEId

if TYPE_CHECKING:  # pragma: no cover
    from .session import DebugSession


class DebugView:
    """Client ↔ one UE."""

    def __init__(self, view_id: str, session: "DebugSession", ue: UEId):
        self.view_id = view_id
        self.session = session
        self.ue = ue
        self._stopped = threading.Event()
        self._capture: Optional[StackCapture] = None
        self._cond = threading.Condition()
        self._stop_count = 0

    # -- state fed by the client's event router ----------------------------------

    def mark_stopped(self, capture: StackCapture) -> None:
        with self._cond:
            self._capture = capture
            self._stop_count += 1
            self._stopped.set()
            self._cond.notify_all()

    def mark_resumed(self) -> None:
        with self._cond:
            self._stopped.clear()
            self._cond.notify_all()

    def rebind(self, session: "DebugSession") -> None:
        """Point this view at a successor session for the same debuggee.

        Used on client reattach: the server (and its parked UEs) survived
        the client's crash, so existing views keep their identity and stop
        state and only swap the transport underneath.  The server's
        stop replay then refreshes the capture.
        """
        if session.pid != self.ue.pid:
            raise ViewError(
                f"cannot rebind view of {self.ue} to a session for "
                f"pid {session.pid}")
        self.session = session

    @property
    def is_stopped(self) -> bool:
        return self._stopped.is_set()

    @property
    def capture(self) -> Optional[StackCapture]:
        with self._cond:
            return self._capture

    @property
    def stop_marker(self) -> int:
        """Sample before a resume verb, pass to :meth:`wait_stopped_after`
        to await the *next* stop rather than re-reading the current one."""
        with self._cond:
            return self._stop_count

    def wait_stopped(self, timeout: float = 10.0) -> StackCapture:
        if not self._stopped.wait(timeout):
            raise ViewError(f"{self.ue} did not stop within {timeout:.1f}s")
        capture = self.capture
        if capture is None:
            raise ViewError(f"{self.ue} stopped without a capture")
        return capture

    def wait_stopped_after(self, marker: int,
                           timeout: float = 10.0) -> StackCapture:
        """Block until a stop event newer than *marker* arrives."""
        import time
        deadline = time.monotonic() + timeout
        with self._cond:
            while self._stop_count <= marker:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ViewError(
                        f"{self.ue} saw no new stop within {timeout:.1f}s")
                self._cond.wait(remaining)
            if self._capture is None:
                raise ViewError(f"{self.ue} stopped without a capture")
            return self._capture

    def wait_resumed(self, timeout: float = 10.0) -> None:
        import time
        deadline = time.monotonic() + timeout
        with self._cond:
            while self._stopped.is_set():
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ViewError(
                        f"{self.ue} did not resume within {timeout:.1f}s")
                self._cond.wait(remaining)

    # -- shell verbs ------------------------------------------------------------------

    def _resume(self, action: str, until_line: Optional[int] = None) -> None:
        args: Dict[str, Any] = {"ue": protocol.ue_to_wire(self.ue),
                                "action": action}
        if until_line is not None:
            args["until_line"] = until_line
        self.session.request("resume", args)

    def cont(self) -> None:
        """`continue` — run free until the next stop."""
        self._resume("continue")

    def step(self) -> None:
        """`step` — stop at the next line, entering calls."""
        self._resume("step")

    def next(self) -> None:
        """`next` — stop at the next line in the current frame."""
        self._resume("next")

    def step_return(self) -> None:
        """`return` — run until the current frame returns."""
        self._resume("return")

    def until(self, line: Optional[int] = None) -> None:
        """`until` — run until a line greater than *line* in this frame."""
        self._resume("until", until_line=line)

    def suspend(self) -> None:
        """Ask a running UE to pause (low-intrusive single-thread stop)."""
        self.session.request("suspend",
                             {"ue": protocol.ue_to_wire(self.ue)})

    # -- inspection --------------------------------------------------------------------

    def stack(self) -> StackCapture:
        raw = self.session.request("stack",
                                   {"ue": protocol.ue_to_wire(self.ue)})
        return StackCapture.from_wire(raw)

    def evaluate(self, expression: str) -> dict:
        return self.session.request(
            "eval", {"ue": protocol.ue_to_wire(self.ue),
                     "expression": expression})

    def variables(self, frame_index: int = 0) -> dict:
        return self.session.request(
            "variables", {"ue": protocol.ue_to_wire(self.ue),
                          "frame_index": frame_index})

    # -- rendering (what the GUI of Fig. 2 would display) ----------------------------------

    def render(self, context: int = 5) -> Dict[str, Any]:
        """Source view + variables for the stop site, via source-sync."""
        capture = self.capture
        if capture is None or capture.top is None:
            raise ViewError(f"{self.ue} has no capture to render")
        top = capture.top
        start = max(1, top.line - context)
        source = self.session.fetch_source(
            top.file, start=start, end=top.line + context)
        lines: List[str] = []
        for offset, text in enumerate(source["lines"]):
            lineno = source["start"] + offset
            marker = "->" if lineno == top.line else "  "
            lines.append(f"{marker} {lineno:5d}  {text}")
        return {
            "ue": str(self.ue),
            "file": top.file,
            "line": top.line,
            "function": top.function,
            "reason": capture.reason,
            "source": lines,
            "variables": dict(top.locals),
            "stack": [f"{f.function} at {f.file}:{f.line}"
                      for f in capture.frames],
        }

    def __repr__(self) -> str:  # pragma: no cover
        state = "stopped" if self.is_stopped else "running"
        return f"<DebugView {self.view_id} {self.ue} {state}>"

"""Debug-session recording: the §4.1 definition, made literal.

Paper section 4.1: *"a debug session is a sequence of interactions
between debugger and debuggee, i.e., user commands sent from the GUI
client to the debug server, and replies sent from the debug server to
the client."*  :class:`SessionRecorder` captures exactly that sequence —
requests, responses and asynchronous events, timestamped and tagged with
the debuggee pid — to a JSONL transcript that can be reloaded, filtered
and rendered as a timeline.

Uses: post-mortem analysis of a debugging session (which worker stopped
when, in what order did the client release them — the §6.4 interleaving
record), regression fixtures, and documentation of reproduction steps.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional


@dataclass(frozen=True)
class TranscriptEntry:
    """One interaction."""

    timestamp: float
    pid: int
    direction: str  # "request" | "response" | "event"
    payload: Dict[str, Any]

    def to_json(self) -> str:
        return json.dumps({
            "timestamp": self.timestamp,
            "pid": self.pid,
            "direction": self.direction,
            "payload": self.payload,
        }, separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str) -> "TranscriptEntry":
        raw = json.loads(line)
        return cls(timestamp=raw["timestamp"], pid=raw["pid"],
                   direction=raw["direction"], payload=raw["payload"])


class SessionRecorder:
    """Records the interaction stream of one DebugClient.

    Hooked in two places:

    * :meth:`wrap_session` intercepts a DebugSession's ``request`` so
      both the command and its result are recorded;
    * the client's event router calls :meth:`record_event` for every
      asynchronous server event.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: List[TranscriptEntry] = []
        self._start = time.time()

    # -- capture -----------------------------------------------------------------

    def record(self, pid: int, direction: str,
               payload: Dict[str, Any]) -> None:
        entry = TranscriptEntry(timestamp=time.time() - self._start,
                                pid=pid, direction=direction,
                                payload=payload)
        with self._lock:
            self._entries.append(entry)

    def record_event(self, pid: int, message: Dict[str, Any]) -> None:
        self.record(pid, "event", {
            "event": message.get("event"),
            "payload": message.get("payload", {}),
        })

    def wrap_session(self, session) -> None:
        """Interpose on ``session.request`` (idempotent per session)."""
        if getattr(session, "_recorder_wrapped", False):
            return
        original = session.request

        def recorded_request(command: str,
                             args: Optional[dict] = None,
                             timeout: Optional[float] = None):
            self.record(session.pid, "request",
                        {"command": command, "args": args or {}})
            try:
                result = original(command, args, timeout)
            except Exception as exc:
                self.record(session.pid, "response",
                            {"command": command, "ok": False,
                             "error": f"{type(exc).__name__}: {exc}"})
                raise
            self.record(session.pid, "response",
                        {"command": command, "ok": True,
                         "result": result})
            return result

        session.request = recorded_request
        session._recorder_wrapped = True

    def attach_to(self, client) -> None:
        """Record everything a DebugClient does, now and in the future."""
        for session in client.sessions():
            self.wrap_session(session)
        previous_new = client.on_new_session

        def on_new(session):
            self.wrap_session(session)
            if previous_new is not None:
                previous_new(session)

        client.on_new_session = on_new

        # Tap the event stream non-invasively via the stop callback plus
        # a router shim.
        previous_route = client._route_event  # noqa: SLF001

        def recording_route(session, message):
            self.record_event(session.pid, message)
            previous_route(session, message)

        client._route_event = recording_route  # noqa: SLF001
        # future sessions are constructed with client._route_event...
        # sessions capture the bound method at attach time, so wrapping
        # the attribute above covers sessions created after this call;
        # existing sessions hold the old bound method — re-point them.
        for session in client.sessions():
            session._on_event = recording_route  # noqa: SLF001

    # -- access --------------------------------------------------------------------

    def entries(self, direction: Optional[str] = None,
                pid: Optional[int] = None) -> List[TranscriptEntry]:
        with self._lock:
            out = list(self._entries)
        if direction is not None:
            out = [e for e in out if e.direction == direction]
        if pid is not None:
            out = [e for e in out if e.pid == pid]
        return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- persistence ------------------------------------------------------------------

    def save(self, path: str) -> int:
        entries = self.entries()
        with open(path, "w", encoding="utf-8") as fh:
            for entry in entries:
                fh.write(entry.to_json() + "\n")
        return len(entries)

    @staticmethod
    def load(path: str) -> List[TranscriptEntry]:
        entries = []
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                if line.strip():
                    entries.append(TranscriptEntry.from_json(line))
        return entries

    # -- rendering --------------------------------------------------------------------

    def render_timeline(self, max_entries: int = 200) -> str:
        """Human-readable interaction timeline."""
        lines = []
        for entry in self.entries()[:max_entries]:
            if entry.direction == "request":
                what = f"-> {entry.payload.get('command')}"
            elif entry.direction == "response":
                ok = "ok" if entry.payload.get("ok") else "ERROR"
                what = f"<- {entry.payload.get('command')} [{ok}]"
            else:
                what = f"** {entry.payload.get('event')}"
            lines.append(f"{entry.timestamp:9.3f}s  pid {entry.pid:<7d} "
                         f"{what}")
        return "\n".join(lines)

"""DebugSession: the client's leg of one client ↔ debuggee relationship.

Paper section 4.1: *"a debug session is a sequence of interactions
between debugger and debuggee"*; one client holds one session per
debuggee process (1 client : N servers, 1 server : 1 client).

Each session owns the client side of the paper's socket layout: the
**command** connection (requests, responses, asynchronous events) and the
**source** connection (source-sync requests only, strictly
request/response).  Both sockets are multiplexed onto a shared
:class:`~repro.client.reactor.ClientReactor` — no per-session threads.
Responses correlate to pending requests by id, which also gives the
session **pipelining**: any number of requests may be in flight at once
(:meth:`DebugSession.request_async`), completing out of order as the
server answers.  Heartbeats ride the reactor's timer wheel.
"""

from __future__ import annotations

import itertools
import socket
import threading
import time
from typing import Any, Callable, Dict, List, Optional

from time import perf_counter as _perf_counter

from ..obs import metrics as obs_metrics
from ..obs.spans import SPANS
from ..server import protocol
from ..server.sockets import connect_endpoint
from ..util.errors import (
    CommandError,
    FramingError,
    HandshakeError,
    RequestTimeoutError,
    SessionError,
    SessionLostError,
)
from ..util.framing import recv_frame
from ..util.ids import UEId
from .reactor import Channel, ClientReactor


class PendingCall:
    """One in-flight request: a future resolved by the reactor.

    Returned by :meth:`DebugSession.request_async`; any number may be
    outstanding per session at once (pipelining).  :meth:`wait` applies
    the same error contract as the blocking :meth:`DebugSession.request`.
    """

    __slots__ = ("session", "command", "request_id", "args",
                 "_event", "_response", "_failure", "_sent_at", "_span")

    def __init__(self, session: "DebugSession", command: str,
                 request_id: int, args: Optional[dict]):
        self.session = session
        self.command = command
        self.request_id = request_id
        self.args = args
        self._event = threading.Event()
        self._response: Optional[dict] = None
        self._failure: Optional[BaseException] = None
        self._sent_at = _perf_counter()
        #: client-side rpc span; its context is stamped onto the wire
        #: request so the server's command span can link back to it.
        self._span = SPANS.begin(f"rpc:{command}", cat="rpc",
                                 pid=session.pid)

    def _finish_span(self, outcome: str) -> None:
        span = self._span
        if span is None:
            return
        self._span = None
        span.args["outcome"] = outcome
        span.end()

    # -- resolution (reactor thread) ---------------------------------------

    def _complete(self, response: Optional[dict]) -> None:
        self._response = response
        self._finish_span("ok" if response is not None else "closed")
        self._event.set()

    def _fail(self, exc: BaseException) -> None:
        self._failure = exc
        self._finish_span("error")
        self._event.set()

    # -- caller side -------------------------------------------------------

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def wait(self, timeout: Optional[float] = None) -> Any:
        """Block for the response; raise exactly like ``request()``."""
        session = self.session
        deadline = timeout if timeout is not None \
            else session.request_timeout
        if not self._event.wait(deadline):
            session._forget(self.request_id)
            self._finish_span("timeout")
            obs_metrics.inc("client.request_timeouts", command=self.command)
            raise RequestTimeoutError(
                f"no response to {self.command!r} from pid {session.pid} "
                f"within {deadline:.1f}s")
        obs_metrics.observe("client.request_seconds",
                            _perf_counter() - self._sent_at,
                            command=self.command)
        if self._failure is not None:
            raise self._failure
        response = self._response
        if response is None:
            raise session._closed_error(
                f"session to pid {session.pid} closed while waiting "
                f"for {self.command!r}")
        if not response.get("ok", False):
            error = response.get("error") or {}
            raise CommandError(error.get("message", "unknown server error"))
        result = response.get("result")
        session._record_breakpoint_intent(self.command, self.args or {},
                                          result)
        return result


class DebugSession:
    """Client-side session over the command + source sockets."""

    def __init__(self, host: str, port: int, session_id: str,
                 on_event: Optional[Callable[["DebugSession", dict], None]] = None,
                 connect_timeout: float = 5.0,
                 request_timeout: float = 10.0,
                 heartbeat_interval: float = 2.0,
                 heartbeat_misses: int = 3,
                 resume_token: Optional[str] = None,
                 reactor: Optional[ClientReactor] = None):
        self.host = host
        self.port = port
        self.session_id = session_id
        self.request_timeout = request_timeout
        #: ping cadence on the command channel; <= 0 disables the monitor
        self.heartbeat_interval = heartbeat_interval
        #: consecutive unanswered beats before the session is declared lost
        self.heartbeat_misses = max(1, heartbeat_misses)
        self._on_event = on_event
        self._request_ids = itertools.count(1)
        self._pending: Dict[int, PendingCall] = {}
        self._pending_lock = threading.Lock()
        self._closed = threading.Event()
        self._source_lock = threading.Lock()
        #: set (with a reason) when the supervision layer declared this
        #: session dead, as opposed to an orderly local close
        self.lost_reason: Optional[str] = None
        self._server_exited = False
        self._last_pong = time.monotonic()
        #: in-flight heartbeat send stamps, seq -> monotonic send time;
        #: written and popped on the reactor thread only
        self._ping_sent: Dict[int, float] = {}
        self._hb_seq = 0
        #: heartbeat RTT accounting for the fleet aggregate view
        self._hb_stats_lock = threading.Lock()
        self._hb_rtt_last: Optional[float] = None
        self._hb_rtt_min: Optional[float] = None
        self._hb_rtt_max: Optional[float] = None
        self._hb_rtt_sum = 0.0
        self._hb_rtt_count = 0
        self._hb_missed_beats = 0
        #: client-side record of debugging intent, for reattach resync:
        #: server breakpoint id -> (command, args) that created it
        self._bp_log: Dict[int, tuple] = {}
        self._bp_lock = threading.Lock()

        # The shared loop (one per client); a standalone session builds
        # a private one so the constructor keeps working without a
        # DebugClient around it.
        self._reactor = reactor if reactor is not None else ClientReactor(
            name=f"dionea-reactor-{session_id}")
        self._owns_reactor = reactor is None

        token = f"client-{session_id}"
        # Command channel first: its hello_ack carries the debuggee
        # identity.  The handshake is the one blocking exchange; after
        # it, the socket is handed to the reactor and never blocks again.
        self._command_sock = connect_endpoint(
            host, port, protocol.ROLE_COMMAND, pid=0,
            session_token=token, timeout=connect_timeout,
            resume_token=resume_token)
        ack = recv_frame(self._command_sock)
        if not isinstance(ack, dict) or ack.get("type") != "hello_ack":
            self._command_sock.close()
            if self._owns_reactor:
                self._reactor.close()
            raise HandshakeError(f"bad hello_ack from {host}:{port}: {ack!r}")
        self.pid: int = ack["pid"]
        self.parent_pid: int = ack["parent_pid"]
        self.program: Optional[str] = ack.get("program")
        self.main_thread: int = ack.get("main_thread", 0)
        #: the server's token epoch — present it as ``resume_token`` to
        #: reclaim this session after a client restart
        self.session_token: Optional[str] = ack.get("session_token")
        self.resumed: bool = bool(ack.get("resumed", False))

        # Source-sync channel (the paper's second data socket).
        try:
            self._source_sock = connect_endpoint(
                host, port, protocol.ROLE_SOURCE, pid=0,
                session_token=token, timeout=connect_timeout)
            src_ack = recv_frame(self._source_sock)
        except (OSError, FramingError):
            self._command_sock.close()
            if self._owns_reactor:
                self._reactor.close()
            raise
        if not isinstance(src_ack, dict) or src_ack.get("type") != "hello_ack":
            self._command_sock.close()
            self._source_sock.close()
            if self._owns_reactor:
                self._reactor.close()
            raise HandshakeError("bad hello_ack on source channel")

        # Hand both sockets to the loop; from here on, all I/O is
        # non-blocking and every callback below runs on reactor threads.
        self._cmd_channel: Channel = self._reactor.register(
            self._command_sock, self._on_command_messages,
            self._on_command_closed, label=f"cmd-{self.pid}")
        self._src_channel: Channel = self._reactor.register(
            self._source_sock, self._on_source_messages,
            self._on_source_closed, label=f"src-{self.pid}")

        self._hb_timer = None
        if self.heartbeat_interval > 0:
            self._last_pong = time.monotonic()
            self._hb_timer = self._reactor.call_later(
                self.heartbeat_interval, self._heartbeat_tick)

    # -- lifecycle --------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    @property
    def lost(self) -> bool:
        """True when the *peer* died (vs. an orderly local close)."""
        return self.lost_reason is not None

    def declare_lost(self, reason: str) -> None:
        """Supervision verdict: the server is gone or unresponsive.

        Fails every in-flight request with :class:`SessionLostError`
        immediately, delivers a synthetic ``session_lost`` event to the
        owning client (so the process tree can mark the debuggee exited),
        then closes the session.  Idempotent; a session that already
        closed in an orderly way cannot become lost.
        """
        if self._closed.is_set() or self.lost_reason is not None:
            return
        self.lost_reason = reason
        # The lost event must be queued before close() so the dispatcher
        # delivers it (close never purges queued callbacks).
        message = protocol.make_event(
            protocol.EV_SESSION_LOST, {"pid": self.pid, "reason": reason})
        self._reactor.defer(lambda: self._deliver_event(message))
        self.close()

    def close(self) -> None:
        if self._closed.is_set():
            return
        self._closed.set()
        if self._hb_timer is not None:
            self._hb_timer.cancel()
        for channel in (getattr(self, "_cmd_channel", None),
                        getattr(self, "_src_channel", None)):
            if channel is not None:
                self._reactor.close_channel(channel)
        # Fail any requester still waiting.
        with self._pending_lock:
            pending = list(self._pending.values())
            self._pending.clear()
        for entry in pending:
            entry._complete(None)
        if self._owns_reactor:
            self._reactor.close()

    # -- request/response over the command channel ------------------------------------

    def request_async(self, command: str,
                      args: Optional[dict] = None) -> PendingCall:
        """Issue one command without waiting: the pipelining primitive.

        Any number of calls may be outstanding; the reactor completes
        each as its response arrives, in whatever order the server
        answers.  Raises :class:`SessionLostError` /
        :class:`SessionError` if the send itself fails.
        """
        if self._closed.is_set():
            raise self._closed_error(f"session to pid {self.pid} is closed")
        request_id = next(self._request_ids)
        call = PendingCall(self, command, request_id, args)
        with self._pending_lock:
            self._pending[request_id] = call
        try:
            self._reactor.submit(
                self._cmd_channel,
                protocol.make_request(request_id, command, args,
                                      trace=call._span.context.to_wire()))
        except (OSError, FramingError) as exc:
            self._forget(request_id)
            call._finish_span("send-failed")
            raise SessionLostError(f"send failed: {exc}") from exc
        return call

    def request(self, command: str, args: Optional[dict] = None,
                timeout: Optional[float] = None) -> Any:
        """Send one command and wait for its response.

        Every call resolves within its deadline: the server answers, the
        server reports an error (:class:`CommandError`), the deadline
        expires (:class:`RequestTimeoutError`), or the session dies
        mid-request (:class:`SessionLostError` — raised immediately on
        disconnect, not after the deadline).
        """
        return self.request_async(command, args).wait(timeout)

    def _forget(self, request_id: int) -> None:
        with self._pending_lock:
            self._pending.pop(request_id, None)

    def _closed_error(self, message: str) -> SessionError:
        if self.lost_reason is not None:
            return SessionLostError(f"{message} ({self.lost_reason})")
        return SessionError(message)

    # -- client-side breakpoint intent (reattach resync) ----------------------------

    def _record_breakpoint_intent(self, command: str, args: dict,
                                  result: Any) -> None:
        if command in ("set_break", "set_function_break"):
            if isinstance(result, dict) and isinstance(result.get("id"),
                                                       int):
                with self._bp_lock:
                    self._bp_log[result["id"]] = (command, dict(args))
        elif command == "clear_break":
            if isinstance(result, dict):
                with self._bp_lock:
                    self._bp_log.pop(result.get("removed"), None)

    def breakpoint_specs(self) -> List[tuple]:
        """(command, args) for every breakpoint this session set and has
        not cleared — what a reattach re-sends if the server lost them."""
        with self._bp_lock:
            return list(self._bp_log.values())

    # -- source channel (lock-step request/response) -------------------------------------

    def fetch_source(self, file: str, start: int = 1,
                     end: Optional[int] = None) -> dict:
        """Source-sync: pull lines of *file* over the source socket."""
        if self._closed.is_set():
            raise self._closed_error(f"session to pid {self.pid} is closed")
        args = {"file": file, "start": start}
        if end is not None:
            args["end"] = end
        with self._source_lock:
            request_id = next(self._request_ids)
            call = PendingCall(self, "source", request_id, args)
            with self._pending_lock:
                self._pending[request_id] = call
            try:
                self._reactor.submit(
                    self._src_channel,
                    protocol.make_request(request_id, "source", args))
            except (OSError, FramingError) as exc:
                self._forget(request_id)
                raise SessionLostError(
                    f"source channel failed: {exc}") from exc
            try:
                return call.wait(self.request_timeout)
            except RequestTimeoutError as exc:
                raise RequestTimeoutError(
                    f"no source response from pid {self.pid} within "
                    f"{self.request_timeout:.1f}s") from exc

    # -- reactor callbacks (reactor thread; must not block) ---------------------------

    def _on_command_messages(self, messages: List[dict]) -> None:
        for message in messages:
            if not isinstance(message, dict):
                continue
            mtype = message.get("type")
            if mtype == "response":
                self._complete(message)
            elif mtype == "pong":
                self._note_pong(message)
            elif mtype == "event":
                if message.get("event") in (protocol.EV_SERVER_EXIT,
                                            protocol.EV_DETACHED):
                    # Orderly farewell: the EOF that follows is expected.
                    # (A detach leaves the debuggee RUNNING — but the
                    # channel death is deliberate either way, so neither
                    # may be misread as session loss.)
                    self._server_exited = True
                self._reactor.defer(
                    lambda m=message: self._deliver_event(m))

    def _on_source_messages(self, messages: List[dict]) -> None:
        for message in messages:
            if isinstance(message, dict) and message.get("type") == "response":
                self._complete(message)

    def _on_command_closed(self, reason: Optional[BaseException]) -> None:
        if not self._closed.is_set() and not self._server_exited:
            # The stream died under us with no farewell: a crashed or
            # SIGKILLed server.  Fail pending requests *now* — their
            # deadlines would only add latency to a known-dead peer.
            self.declare_lost("command channel closed unexpectedly")
        else:
            self.close()

    def _on_source_closed(self, reason: Optional[BaseException]) -> None:
        # A dead source channel fails any in-flight source fetch at
        # once; the session itself lives or dies by the command channel.
        with self._pending_lock:
            stranded = [c for c in self._pending.values()
                        if c.command == "source"]
            for call in stranded:
                self._pending.pop(call.request_id, None)
        for call in stranded:
            call._fail(SessionLostError(
                f"source channel to pid {self.pid} closed"))

    def _note_pong(self, message: dict) -> None:
        now = time.monotonic()
        self._last_pong = now
        sent = self._ping_sent.pop(message.get("seq"), None)
        if sent is not None:
            rtt = now - sent
            # Heartbeat RTT doubles as a liveness latency probe: the
            # pong is answered inline on the server's reactor thread,
            # so this histogram IS the server reactor's responsiveness
            # as seen from outside the debuggee.
            obs_metrics.observe("client.heartbeat_rtt_seconds", rtt)
            with self._hb_stats_lock:
                self._hb_rtt_last = rtt
                self._hb_rtt_min = rtt if self._hb_rtt_min is None \
                    else min(self._hb_rtt_min, rtt)
                self._hb_rtt_max = rtt if self._hb_rtt_max is None \
                    else max(self._hb_rtt_max, rtt)
                self._hb_rtt_sum += rtt
                self._hb_rtt_count += 1

    def _deliver_event(self, message: dict) -> None:
        """Dispatcher thread: the one place user callbacks run."""
        if self._on_event is not None:
            try:
                self._on_event(self, message)
            except Exception:  # noqa: BLE001 - user callback
                pass

    def _complete(self, response: dict) -> None:
        with self._pending_lock:
            entry = self._pending.pop(response.get("id"), None)
        if entry is not None:
            entry._complete(response)

    # -- heartbeat (reactor timer wheel) ----------------------------------------------

    def _heartbeat_tick(self) -> None:
        if self._closed.is_set():
            return
        interval = self.heartbeat_interval
        budget = interval * self.heartbeat_misses
        self._hb_seq += 1
        seq = self._hb_seq
        self._ping_sent[seq] = time.monotonic()
        if len(self._ping_sent) > 2 * self.heartbeat_misses:
            # A dead or stalled peer never pops entries; trim the
            # oldest so the in-flight map stays bounded.
            oldest = min(self._ping_sent)
            self._ping_sent.pop(oldest, None)
        try:
            self._reactor.submit(self._cmd_channel, protocol.make_ping(seq))
        except (OSError, FramingError):
            self.declare_lost("heartbeat ping could not be sent")
            return
        # The pong for this ping may take up to `interval` to matter;
        # what we police is silence across the whole miss budget.
        silence = time.monotonic() - self._last_pong
        if silence > interval:
            with self._hb_stats_lock:
                self._hb_missed_beats += 1
        if silence > budget:
            self.declare_lost(
                f"no heartbeat ack for {silence:.1f}s "
                f"({self.heartbeat_misses} beats missed)")
            return
        self._hb_timer = self._reactor.call_later(interval,
                                                  self._heartbeat_tick)

    def heartbeat_stats(self) -> Dict[str, Any]:
        """Per-session heartbeat health, for the fleet aggregate view.

        ``miss_budget_used`` is current silence over the whole budget —
        0.0 right after a pong, 1.0 at the loss verdict — so one slow
        worker stands out in a 200-session sweep long before it is
        declared lost.
        """
        interval = self.heartbeat_interval
        budget = interval * self.heartbeat_misses if interval > 0 else 0.0
        silence = time.monotonic() - self._last_pong
        with self._hb_stats_lock:
            return {
                "pid": self.pid,
                "interval": interval,
                "rtt_last": self._hb_rtt_last,
                "rtt_min": self._hb_rtt_min,
                "rtt_max": self._hb_rtt_max,
                "rtt_mean": (self._hb_rtt_sum / self._hb_rtt_count
                             if self._hb_rtt_count else None),
                "rtt_count": self._hb_rtt_count,
                "missed_beats": self._hb_missed_beats,
                "silence_seconds": silence if interval > 0 else None,
                "miss_budget_used": (min(1.0, silence / budget)
                                     if budget > 0 else None),
            }

    # -- convenience ---------------------------------------------------------------------------

    def threads(self) -> List[dict]:
        return self.request("threads")

    def ue_for_main_thread(self) -> UEId:
        return UEId(self.pid, self.main_thread)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<DebugSession {self.session_id} pid={self.pid} "
                f"{self.host}:{self.port}>")

"""DebugSession: the client's leg of one client ↔ debuggee relationship.

Paper section 4.1: *"a debug session is a sequence of interactions
between debugger and debuggee"*; one client holds one session per
debuggee process (1 client : N servers, 1 server : 1 client).

Each session owns the client side of the paper's socket layout: the
**command** connection (requests, responses, asynchronous events) and the
**source** connection (source-sync requests only, strictly
request/response).  A dedicated reader thread drains the command socket,
correlating responses to pending requests by id and handing events to the
owning client.
"""

from __future__ import annotations

import itertools
import socket
import threading
import time
from typing import Any, Callable, Dict, List, Optional

from time import perf_counter as _perf_counter

from ..obs import metrics as obs_metrics
from ..server import protocol
from ..server.sockets import connect_endpoint
from ..util.errors import (
    CommandError,
    FramingError,
    HandshakeError,
    RequestTimeoutError,
    SessionError,
    SessionLostError,
)
from ..util.framing import recv_frame, send_frame
from ..util.ids import UEId


class _PendingRequest:
    __slots__ = ("event", "response")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.response: Optional[dict] = None


class DebugSession:
    """Client-side session over the command + source sockets."""

    def __init__(self, host: str, port: int, session_id: str,
                 on_event: Optional[Callable[["DebugSession", dict], None]] = None,
                 connect_timeout: float = 5.0,
                 request_timeout: float = 10.0,
                 heartbeat_interval: float = 2.0,
                 heartbeat_misses: int = 3,
                 resume_token: Optional[str] = None):
        self.host = host
        self.port = port
        self.session_id = session_id
        self.request_timeout = request_timeout
        #: ping cadence on the command channel; <= 0 disables the monitor
        self.heartbeat_interval = heartbeat_interval
        #: consecutive unanswered beats before the session is declared lost
        self.heartbeat_misses = max(1, heartbeat_misses)
        self._on_event = on_event
        self._request_ids = itertools.count(1)
        self._pending: Dict[int, _PendingRequest] = {}
        self._pending_lock = threading.Lock()
        self._closed = threading.Event()
        self._source_lock = threading.Lock()
        #: set (with a reason) when the supervision layer declared this
        #: session dead, as opposed to an orderly local close
        self.lost_reason: Optional[str] = None
        self._server_exited = False
        self._last_pong = time.monotonic()
        #: in-flight heartbeat send stamps, seq -> monotonic send time;
        #: written by the heartbeat thread, popped by the reader thread
        self._ping_sent: Dict[int, float] = {}
        #: client-side record of debugging intent, for reattach resync:
        #: server breakpoint id -> (command, args) that created it
        self._bp_log: Dict[int, tuple] = {}
        self._bp_lock = threading.Lock()

        token = f"client-{session_id}"
        # Command channel first: its hello_ack carries the debuggee identity.
        self._command_sock = connect_endpoint(
            host, port, protocol.ROLE_COMMAND, pid=0,
            session_token=token, timeout=connect_timeout,
            resume_token=resume_token)
        ack = recv_frame(self._command_sock)
        if not isinstance(ack, dict) or ack.get("type") != "hello_ack":
            self._command_sock.close()
            raise HandshakeError(f"bad hello_ack from {host}:{port}: {ack!r}")
        self.pid: int = ack["pid"]
        self.parent_pid: int = ack["parent_pid"]
        self.program: Optional[str] = ack.get("program")
        self.main_thread: int = ack.get("main_thread", 0)
        #: the server's token epoch — present it as ``resume_token`` to
        #: reclaim this session after a client restart
        self.session_token: Optional[str] = ack.get("session_token")
        self.resumed: bool = bool(ack.get("resumed", False))

        # Source-sync channel (the paper's second data socket).
        self._source_sock = connect_endpoint(
            host, port, protocol.ROLE_SOURCE, pid=0,
            session_token=token, timeout=connect_timeout)
        src_ack = recv_frame(self._source_sock)
        if not isinstance(src_ack, dict) or src_ack.get("type") != "hello_ack":
            self.close()
            raise HandshakeError("bad hello_ack on source channel")
        self._command_sock.settimeout(None)
        # The source channel is strict request/response, so a socket
        # timeout IS its per-request deadline.
        self._source_sock.settimeout(request_timeout)

        # Events are dispatched on their own thread: handlers routinely
        # issue blocking requests (e.g. auto-resume on stop), and a
        # handler running on the reader thread could never see its own
        # response arrive.
        import queue as _queue
        self._event_queue: "_queue.Queue" = _queue.Queue()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name=f"dionea-events-{self.pid}",
            daemon=True)
        self._dispatcher.start()
        self._reader = threading.Thread(
            target=self._read_loop, name=f"dionea-session-{self.pid}",
            daemon=True)
        self._reader.start()
        self._heartbeat: Optional[threading.Thread] = None
        if self.heartbeat_interval > 0:
            self._last_pong = time.monotonic()
            self._heartbeat = threading.Thread(
                target=self._heartbeat_loop,
                name=f"dionea-heartbeat-{self.pid}", daemon=True)
            self._heartbeat.start()

    # -- lifecycle --------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    @property
    def lost(self) -> bool:
        """True when the *peer* died (vs. an orderly local close)."""
        return self.lost_reason is not None

    def declare_lost(self, reason: str) -> None:
        """Supervision verdict: the server is gone or unresponsive.

        Fails every in-flight request with :class:`SessionLostError`
        immediately, delivers a synthetic ``session_lost`` event to the
        owning client (so the process tree can mark the debuggee exited),
        then closes the session.  Idempotent; a session that already
        closed in an orderly way cannot become lost.
        """
        if self._closed.is_set() or self.lost_reason is not None:
            return
        self.lost_reason = reason
        # The lost event must enter the queue before close()'s sentinel
        # so the dispatcher delivers it before shutting down.
        event_queue = getattr(self, "_event_queue", None)
        if event_queue is not None:
            event_queue.put(protocol.make_event(
                protocol.EV_SESSION_LOST,
                {"pid": self.pid, "reason": reason}))
        self.close()

    def close(self) -> None:
        if self._closed.is_set():
            return
        self._closed.set()
        for sock in (getattr(self, "_command_sock", None),
                     getattr(self, "_source_sock", None)):
            if sock is not None:
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    sock.close()
                except OSError:
                    pass
        # Fail any requester still waiting.
        with self._pending_lock:
            pending = list(self._pending.values())
            self._pending.clear()
        for entry in pending:
            entry.event.set()
        # Stop the dispatcher (None sentinel).
        event_queue = getattr(self, "_event_queue", None)
        if event_queue is not None:
            event_queue.put(None)

    # -- request/response over the command channel ------------------------------------

    def request(self, command: str, args: Optional[dict] = None,
                timeout: Optional[float] = None) -> Any:
        """Send one command and wait for its response.

        Every call resolves within its deadline: the server answers, the
        server reports an error (:class:`CommandError`), the deadline
        expires (:class:`RequestTimeoutError`), or the session dies
        mid-request (:class:`SessionLostError` — raised immediately on
        disconnect, not after the deadline).
        """
        if self._closed.is_set():
            raise self._closed_error(f"session to pid {self.pid} is closed")
        request_id = next(self._request_ids)
        entry = _PendingRequest()
        with self._pending_lock:
            self._pending[request_id] = entry
        t0 = _perf_counter()
        try:
            send_frame(self._command_sock,
                       protocol.make_request(request_id, command, args))
        except OSError as exc:
            with self._pending_lock:
                self._pending.pop(request_id, None)
            raise SessionLostError(f"send failed: {exc}") from exc
        deadline = timeout if timeout is not None else self.request_timeout
        if not entry.event.wait(deadline):
            with self._pending_lock:
                self._pending.pop(request_id, None)
            obs_metrics.inc("client.request_timeouts", command=command)
            raise RequestTimeoutError(
                f"no response to {command!r} from pid {self.pid} "
                f"within {deadline:.1f}s")
        # Full client-observed round trip: frame encode → wire → reactor
        # queue → dispatch → response decode.  Compare against the
        # server's server.command_seconds to locate where time goes.
        obs_metrics.observe("client.request_seconds",
                            _perf_counter() - t0, command=command)
        response = entry.response
        if response is None:
            raise self._closed_error(
                f"session to pid {self.pid} closed while waiting "
                f"for {command!r}")
        if not response.get("ok", False):
            error = response.get("error") or {}
            raise CommandError(error.get("message", "unknown server error"))
        result = response.get("result")
        self._record_breakpoint_intent(command, args or {}, result)
        return result

    def _closed_error(self, message: str) -> SessionError:
        if self.lost_reason is not None:
            return SessionLostError(f"{message} ({self.lost_reason})")
        return SessionError(message)

    # -- client-side breakpoint intent (reattach resync) ----------------------------

    def _record_breakpoint_intent(self, command: str, args: dict,
                                  result: Any) -> None:
        if command in ("set_break", "set_function_break"):
            if isinstance(result, dict) and isinstance(result.get("id"),
                                                       int):
                with self._bp_lock:
                    self._bp_log[result["id"]] = (command, dict(args))
        elif command == "clear_break":
            if isinstance(result, dict):
                with self._bp_lock:
                    self._bp_log.pop(result.get("removed"), None)

    def breakpoint_specs(self) -> List[tuple]:
        """(command, args) for every breakpoint this session set and has
        not cleared — what a reattach re-sends if the server lost them."""
        with self._bp_lock:
            return list(self._bp_log.values())

    # -- source channel (lock-step request/response) -------------------------------------

    def fetch_source(self, file: str, start: int = 1,
                     end: Optional[int] = None) -> dict:
        """Source-sync: pull lines of *file* over the source socket."""
        if self._closed.is_set():
            raise self._closed_error(f"session to pid {self.pid} is closed")
        args = {"file": file, "start": start}
        if end is not None:
            args["end"] = end
        with self._source_lock:
            request_id = next(self._request_ids)
            send_frame(self._source_sock,
                       protocol.make_request(request_id, "source", args))
            try:
                response = recv_frame(self._source_sock)
            except socket.timeout as exc:
                raise RequestTimeoutError(
                    f"no source response from pid {self.pid} within "
                    f"{self.request_timeout:.1f}s") from exc
            except (FramingError, OSError) as exc:
                raise SessionLostError(
                    f"source channel failed: {exc}") from exc
        if response is None:
            raise SessionError("source channel closed")
        if not response.get("ok", False):
            error = response.get("error") or {}
            raise CommandError(error.get("message", "source fetch failed"))
        return response["result"]

    # -- reader thread ---------------------------------------------------------------------

    def _read_loop(self) -> None:
        from ..util.ids import untrace_current_thread
        untrace_current_thread()  # infra thread: never a debuggee UE
        while not self._closed.is_set():
            try:
                message = recv_frame(self._command_sock)
            except (FramingError, OSError):
                break
            if message is None:
                break
            mtype = message.get("type")
            if mtype == "response":
                self._complete(message)
            elif mtype == "pong":
                self._last_pong = time.monotonic()
                sent = self._ping_sent.pop(message.get("seq"), None)
                if sent is not None:
                    # Heartbeat RTT doubles as a liveness latency probe:
                    # the pong is answered inline on the reactor thread,
                    # so this histogram IS the reactor's responsiveness
                    # as seen from outside the debuggee.
                    obs_metrics.observe("client.heartbeat_rtt_seconds",
                                        time.monotonic() - sent)
            elif mtype == "event":
                if message.get("event") == protocol.EV_SERVER_EXIT:
                    # Orderly farewell: the EOF that follows is expected.
                    self._server_exited = True
                self._event_queue.put(message)
        if not self._closed.is_set() and not self._server_exited:
            # The stream died under us with no farewell: a crashed or
            # SIGKILLed server.  Fail pending requests *now* — their
            # deadlines would only add latency to a known-dead peer.
            self.declare_lost("command channel closed unexpectedly")
        self.close()

    def _heartbeat_loop(self) -> None:
        from ..util.ids import untrace_current_thread
        untrace_current_thread()  # infra thread: never a debuggee UE
        interval = self.heartbeat_interval
        budget = interval * self.heartbeat_misses
        seq = 0
        while not self._closed.wait(interval):
            seq += 1
            try:
                self._ping_sent[seq] = time.monotonic()
                if len(self._ping_sent) > 2 * self.heartbeat_misses:
                    # A dead or stalled peer never pops entries; trim the
                    # oldest so the in-flight map stays bounded.
                    oldest = min(self._ping_sent)
                    self._ping_sent.pop(oldest, None)
                send_frame(self._command_sock, protocol.make_ping(seq))
            except OSError:
                self.declare_lost("heartbeat ping could not be sent")
                return
            # The pong for this ping may take up to `interval` to matter;
            # what we police is silence across the whole miss budget.
            silence = time.monotonic() - self._last_pong
            if silence > budget:
                self.declare_lost(
                    f"no heartbeat ack for {silence:.1f}s "
                    f"({self.heartbeat_misses} beats missed)")
                return

    def _dispatch_loop(self) -> None:
        from ..util.ids import untrace_current_thread
        untrace_current_thread()  # infra thread: never a debuggee UE
        while True:
            message = self._event_queue.get()
            if message is None:
                return
            if self._on_event is not None:
                try:
                    self._on_event(self, message)
                except Exception:  # noqa: BLE001 - user callback
                    pass

    def _complete(self, response: dict) -> None:
        with self._pending_lock:
            entry = self._pending.pop(response.get("id"), None)
        if entry is not None:
            entry.response = response
            entry.event.set()

    # -- convenience ---------------------------------------------------------------------------

    def threads(self) -> List[dict]:
        return self.request("threads")

    def ue_for_main_thread(self) -> UEId:
        return UEId(self.pid, self.main_thread)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<DebugSession {self.session_id} pid={self.pid} "
                f"{self.host}:{self.port}>")

"""DebugSession: the client's leg of one client ↔ debuggee relationship.

Paper section 4.1: *"a debug session is a sequence of interactions
between debugger and debuggee"*; one client holds one session per
debuggee process (1 client : N servers, 1 server : 1 client).

Each session owns the client side of the paper's socket layout: the
**command** connection (requests, responses, asynchronous events) and the
**source** connection (source-sync requests only, strictly
request/response).  A dedicated reader thread drains the command socket,
correlating responses to pending requests by id and handing events to the
owning client.
"""

from __future__ import annotations

import itertools
import socket
import threading
from typing import Any, Callable, Dict, List, Optional

from ..server import protocol
from ..server.sockets import connect_endpoint
from ..util.errors import (
    CommandError,
    FramingError,
    HandshakeError,
    SessionError,
)
from ..util.framing import recv_frame, send_frame
from ..util.ids import UEId


class _PendingRequest:
    __slots__ = ("event", "response")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.response: Optional[dict] = None


class DebugSession:
    """Client-side session over the command + source sockets."""

    def __init__(self, host: str, port: int, session_id: str,
                 on_event: Optional[Callable[["DebugSession", dict], None]] = None,
                 connect_timeout: float = 5.0,
                 request_timeout: float = 10.0):
        self.host = host
        self.port = port
        self.session_id = session_id
        self.request_timeout = request_timeout
        self._on_event = on_event
        self._request_ids = itertools.count(1)
        self._pending: Dict[int, _PendingRequest] = {}
        self._pending_lock = threading.Lock()
        self._closed = threading.Event()
        self._source_lock = threading.Lock()

        token = f"client-{session_id}"
        # Command channel first: its hello_ack carries the debuggee identity.
        self._command_sock = connect_endpoint(
            host, port, protocol.ROLE_COMMAND, pid=0,
            session_token=token, timeout=connect_timeout)
        ack = recv_frame(self._command_sock)
        if not isinstance(ack, dict) or ack.get("type") != "hello_ack":
            self._command_sock.close()
            raise HandshakeError(f"bad hello_ack from {host}:{port}: {ack!r}")
        self.pid: int = ack["pid"]
        self.parent_pid: int = ack["parent_pid"]
        self.program: Optional[str] = ack.get("program")
        self.main_thread: int = ack.get("main_thread", 0)

        # Source-sync channel (the paper's second data socket).
        self._source_sock = connect_endpoint(
            host, port, protocol.ROLE_SOURCE, pid=0,
            session_token=token, timeout=connect_timeout)
        src_ack = recv_frame(self._source_sock)
        if not isinstance(src_ack, dict) or src_ack.get("type") != "hello_ack":
            self.close()
            raise HandshakeError("bad hello_ack on source channel")
        self._command_sock.settimeout(None)
        self._source_sock.settimeout(connect_timeout)

        # Events are dispatched on their own thread: handlers routinely
        # issue blocking requests (e.g. auto-resume on stop), and a
        # handler running on the reader thread could never see its own
        # response arrive.
        import queue as _queue
        self._event_queue: "_queue.Queue" = _queue.Queue()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name=f"dionea-events-{self.pid}",
            daemon=True)
        self._dispatcher.start()
        self._reader = threading.Thread(
            target=self._read_loop, name=f"dionea-session-{self.pid}",
            daemon=True)
        self._reader.start()

    # -- lifecycle --------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    def close(self) -> None:
        if self._closed.is_set():
            return
        self._closed.set()
        for sock in (getattr(self, "_command_sock", None),
                     getattr(self, "_source_sock", None)):
            if sock is not None:
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    sock.close()
                except OSError:
                    pass
        # Fail any requester still waiting.
        with self._pending_lock:
            pending = list(self._pending.values())
            self._pending.clear()
        for entry in pending:
            entry.event.set()
        # Stop the dispatcher (None sentinel).
        event_queue = getattr(self, "_event_queue", None)
        if event_queue is not None:
            event_queue.put(None)

    # -- request/response over the command channel ------------------------------------

    def request(self, command: str, args: Optional[dict] = None,
                timeout: Optional[float] = None) -> Any:
        """Send one command and wait for its response.

        Raises :class:`CommandError` when the server reports failure and
        :class:`SessionError` when the session dies mid-request.
        """
        if self._closed.is_set():
            raise SessionError(f"session to pid {self.pid} is closed")
        request_id = next(self._request_ids)
        entry = _PendingRequest()
        with self._pending_lock:
            self._pending[request_id] = entry
        try:
            send_frame(self._command_sock,
                       protocol.make_request(request_id, command, args))
        except OSError as exc:
            with self._pending_lock:
                self._pending.pop(request_id, None)
            raise SessionError(f"send failed: {exc}") from exc
        if not entry.event.wait(timeout or self.request_timeout):
            with self._pending_lock:
                self._pending.pop(request_id, None)
            raise SessionError(
                f"timeout waiting for response to {command!r}")
        response = entry.response
        if response is None:
            raise SessionError(f"session to pid {self.pid} closed "
                               f"while waiting for {command!r}")
        if not response.get("ok", False):
            error = response.get("error") or {}
            raise CommandError(error.get("message", "unknown server error"))
        return response.get("result")

    # -- source channel (lock-step request/response) -------------------------------------

    def fetch_source(self, file: str, start: int = 1,
                     end: Optional[int] = None) -> dict:
        """Source-sync: pull lines of *file* over the source socket."""
        if self._closed.is_set():
            raise SessionError(f"session to pid {self.pid} is closed")
        args = {"file": file, "start": start}
        if end is not None:
            args["end"] = end
        with self._source_lock:
            request_id = next(self._request_ids)
            send_frame(self._source_sock,
                       protocol.make_request(request_id, "source", args))
            try:
                response = recv_frame(self._source_sock)
            except (FramingError, OSError) as exc:
                raise SessionError(f"source channel failed: {exc}") from exc
        if response is None:
            raise SessionError("source channel closed")
        if not response.get("ok", False):
            error = response.get("error") or {}
            raise CommandError(error.get("message", "source fetch failed"))
        return response["result"]

    # -- reader thread ---------------------------------------------------------------------

    def _read_loop(self) -> None:
        from ..util.ids import untrace_current_thread
        untrace_current_thread()  # infra thread: never a debuggee UE
        while not self._closed.is_set():
            try:
                message = recv_frame(self._command_sock)
            except (FramingError, OSError):
                break
            if message is None:
                break
            mtype = message.get("type")
            if mtype == "response":
                self._complete(message)
            elif mtype == "event":
                self._event_queue.put(message)
        self.close()

    def _dispatch_loop(self) -> None:
        from ..util.ids import untrace_current_thread
        untrace_current_thread()  # infra thread: never a debuggee UE
        while True:
            message = self._event_queue.get()
            if message is None:
                return
            if self._on_event is not None:
                try:
                    self._on_event(self, message)
                except Exception:  # noqa: BLE001 - user callback
                    pass

    def _complete(self, response: dict) -> None:
        with self._pending_lock:
            entry = self._pending.pop(response.get("id"), None)
        if entry is not None:
            entry.response = response
            entry.event.set()

    # -- convenience ---------------------------------------------------------------------------

    def threads(self) -> List[dict]:
        return self.request("threads")

    def ue_for_main_thread(self) -> UEId:
        return UEId(self.pid, self.main_thread)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<DebugSession {self.session_id} pid={self.pid} "
                f"{self.host}:{self.port}>")

"""The command shell: textual debug commands (Fig. 2's shell window).

*"The command shell is used to send commands to the debuggee, e.g.,
continue, step, next."*  The grammar is pdb-flavoured:

=====================  =====================================================
``break FILE:LINE [, COND]``   set a breakpoint (``b`` works too)
``tbreak FILE:LINE [, COND]``  one-shot breakpoint
``breakf NAME``                break on entry to function NAME
``clear ID``                   delete breakpoint ID
``breaks``                     list breakpoints
``continue`` / ``c``           resume the active UE
``step`` / ``s``               step into
``next`` / ``n``               step over
``return`` / ``r``             run until the current frame returns
``until [LINE]``               run until past LINE in this frame
``suspend``                    pause the active UE
``suspendall``                 pause the whole program
``resumeall``                  release every parked UE
``p EXPR``                     evaluate EXPR in the active UE's frame
``vars [N]``                   variables of stack frame N
``threads``                    processes-and-threads view
``sessions``                   list attached debuggees
``view PID [TID]``             switch the active view (Fig. 3)
``disturb on|off``             toggle disturb mode
``deadlocks``                  wait-for-graph report
=====================  =====================================================

The interpreter is deliberately decoupled from I/O: :meth:`execute`
returns the text a terminal would print, which is what the tests assert
against.
"""

from __future__ import annotations

import shlex
from typing import List, Optional, Tuple

from ..server import protocol
from ..util.errors import CommandError, SessionError, ViewError
from ..util.ids import UEId
from .client import DebugClient
from .view import DebugView


def parse_location(text: str) -> Tuple[str, int, Optional[str]]:
    """Parse ``FILE:LINE`` with an optional ``, condition`` suffix."""
    condition: Optional[str] = None
    if "," in text:
        text, condition = text.split(",", 1)
        condition = condition.strip() or None
    text = text.strip()
    if ":" not in text:
        raise CommandError(f"expected FILE:LINE, got {text!r}")
    file, _, line_text = text.rpartition(":")
    try:
        line = int(line_text)
    except ValueError as exc:
        raise CommandError(f"bad line number {line_text!r}") from exc
    return file, line, condition


class Shell:
    """Stateful interpreter bound to a :class:`DebugClient`."""

    def __init__(self, client: DebugClient):
        self.client = client

    # -- helpers -----------------------------------------------------------------

    def _active(self) -> DebugView:
        view = self.client.active_view
        if view is None:
            stopped = self.client.stopped_views()
            if stopped:
                view = stopped[0]
                self.client._active_view = view  # noqa: SLF001
            else:
                raise CommandError("no active view; use 'view PID [TID]'")
        return view

    def _session(self):
        view = self.client.active_view
        if view is not None:
            return view.session
        sessions = self.client.sessions()
        if not sessions:
            raise CommandError("no attached sessions")
        return sessions[0]

    # -- entry point -------------------------------------------------------------

    def execute(self, line: str) -> str:
        line = line.strip()
        if not line:
            return ""
        verb, _, rest = line.partition(" ")
        rest = rest.strip()
        method = getattr(self, f"do_{self._canonical(verb)}", None)
        if method is None:
            raise CommandError(f"unknown command {verb!r}")
        return method(rest)

    _ALIASES = {"b": "break", "c": "continue", "s": "step", "n": "next",
                "r": "return", "bt": "stack", "where": "stack"}

    def _canonical(self, verb: str) -> str:
        verb = self._ALIASES.get(verb, verb)
        return {"break": "break_", "continue": "continue_",
                "return": "return_"}.get(verb, verb)

    # -- breakpoints -----------------------------------------------------------------

    def do_break_(self, rest: str) -> str:
        file, lineno, condition = parse_location(rest)
        result = self._session().request(
            "set_break", {"file": file, "line": lineno,
                          "condition": condition})
        return f"breakpoint {result['id']} at {result['file']}:{result['line']}"

    def do_tbreak(self, rest: str) -> str:
        file, lineno, condition = parse_location(rest)
        result = self._session().request(
            "set_break", {"file": file, "line": lineno,
                          "condition": condition, "temporary": True})
        return (f"temporary breakpoint {result['id']} at "
                f"{result['file']}:{result['line']}")

    def do_breakf(self, rest: str) -> str:
        if not rest:
            raise CommandError("breakf needs a function name")
        result = self._session().request("set_function_break",
                                         {"function": rest})
        return f"breakpoint {result['id']} on function {rest}"

    def do_clear(self, rest: str) -> str:
        try:
            bp_id = int(rest)
        except ValueError as exc:
            raise CommandError("clear needs a breakpoint id") from exc
        self._session().request("clear_break", {"id": bp_id})
        return f"cleared breakpoint {bp_id}"

    def do_breaks(self, rest: str) -> str:
        rows = self._session().request("breaks")
        if not rows:
            return "no breakpoints"
        out = []
        for bp in rows:
            place = (bp["function"] if bp.get("function")
                     else f"{bp['file']}:{bp['line']}")
            flags = []
            if not bp["enabled"]:
                flags.append("disabled")
            if bp["temporary"]:
                flags.append("temporary")
            if bp["condition"]:
                flags.append(f"if {bp['condition']}")
            suffix = f" ({', '.join(flags)})" if flags else ""
            out.append(f"{bp['id']:3d}  {place}  hits={bp['hit_count']}"
                       f"{suffix}")
        return "\n".join(out)

    # -- execution control ---------------------------------------------------------------

    def do_continue_(self, rest: str) -> str:
        view = self._active()
        view.cont()
        return f"continuing {view.ue}"

    def do_step(self, rest: str) -> str:
        view = self._active()
        view.step()
        return f"stepping {view.ue}"

    def do_next(self, rest: str) -> str:
        view = self._active()
        view.next()
        return f"next on {view.ue}"

    def do_return_(self, rest: str) -> str:
        view = self._active()
        view.step_return()
        return f"running {view.ue} to return"

    def do_until(self, rest: str) -> str:
        view = self._active()
        view.until(int(rest) if rest else None)
        return f"running {view.ue} until past line"

    def do_suspend(self, rest: str) -> str:
        view = self._active()
        view.suspend()
        return f"suspend requested for {view.ue}"

    def do_suspendall(self, rest: str) -> str:
        self._session().request("suspend_all")
        return "suspend requested for all UEs"

    def do_resumeall(self, rest: str) -> str:
        result = self._session().request("resume_all")
        return f"released {result['released']} UEs"

    # -- inspection -------------------------------------------------------------------------

    def do_p(self, rest: str) -> str:
        if not rest:
            raise CommandError("p needs an expression")
        result = self._active().evaluate(rest)
        if result.get("ok"):
            return result["value"]
        return f"error: {result['error']}"

    def do_vars(self, rest: str) -> str:
        frame_index = int(rest) if rest else 0
        frame = self._active().variables(frame_index)
        rows = [f"{name} = {value}"
                for name, value in sorted(frame["locals"].items())]
        header = (f"frame {frame_index}: {frame['function']} at "
                  f"{frame['file']}:{frame['line']}")
        return "\n".join([header] + rows)

    def do_stack(self, rest: str) -> str:
        capture = self._active().stack()
        return "\n".join(f"#{i} {f.function} at {f.file}:{f.line}"
                         for i, f in enumerate(capture.frames))

    def do_threads(self, rest: str) -> str:
        rows: List[str] = []
        for session in self.client.sessions():
            rows.append(f"process {session.pid} ({session.program or '?'})")
            for entry in session.threads():
                state = "stopped" if entry["parked"] else "running"
                rows.append(f"  {entry['label']} [{state}]")
        return "\n".join(rows) if rows else "no sessions"

    def do_sessions(self, rest: str) -> str:
        rows = [f"{s.session_id}: pid {s.pid} at {s.host}:{s.port}"
                for s in self.client.sessions()]
        return "\n".join(rows) if rows else "no sessions"

    def do_view(self, rest: str) -> str:
        parts = shlex.split(rest)
        if not parts:
            raise CommandError("view needs PID [TID]")
        pid = int(parts[0])
        session = self.client.session_for_pid(pid, timeout=0.1)
        tid = int(parts[1]) if len(parts) > 1 else session.main_thread
        view = self.client.view_for(UEId(pid, tid))
        if view.is_stopped:
            rendered = self.client.activate(view)
            return "\n".join(rendered["source"])
        self.client._active_view = view  # noqa: SLF001
        return f"active view is now {view.ue} (running)"

    # -- watchpoints -------------------------------------------------------------------

    def do_watch(self, rest: str) -> str:
        """`watch EXPR` — stop any UE when EXPR's value changes."""
        if not rest:
            raise CommandError("watch needs an expression")
        result = self._session().request("set_watch",
                                         {"expression": rest})
        return f"watchpoint {result['id']} on {result['expression']}"

    def do_unwatch(self, rest: str) -> str:
        try:
            watch_id = int(rest)
        except ValueError as exc:
            raise CommandError("unwatch needs a watchpoint id") from exc
        self._session().request("clear_watch", {"id": watch_id})
        return f"cleared watchpoint {watch_id}"

    def do_watches(self, rest: str) -> str:
        rows = self._session().request("watches")
        if not rows:
            return "no watchpoints"
        return "\n".join(
            f"{w['id']:3d}  {w['expression']}  hits={w['hit_count']}"
            f"{'' if w['enabled'] else ' (disabled)'}"
            for w in rows)

    def do_catch(self, rest: str) -> str:
        """`catch on|off [Type ...]` — break at every (matching) raise."""
        parts = rest.split()
        if not parts or parts[0] not in ("on", "off"):
            raise CommandError("catch needs 'on' or 'off' "
                               "(optionally followed by exception names)")
        only = parts[1:] or None
        result = self._session().request(
            "catch_exceptions",
            {"enabled": parts[0] == "on", "only": only})
        state = "on" if result["catching"] else "off"
        suffix = f" (only: {', '.join(only)})" if only else ""
        return f"exception catching {state}{suffix}"

    # -- debuggee I/O (Fig. 2 Input/Output windows) --------------------------------------

    def do_output(self, rest: str) -> str:
        """`output [stdout|stderr]` — the active session's Output window."""
        session = self._session()
        stream = rest or None
        result = session.request("output", {"stream": stream})
        if not result["capturing"] and not result["text"]:
            return ("no output captured (enable with 'capture on' or "
                    "start the server with capture_io)")
        return result["text"] or "(no output yet)"

    def do_capture(self, rest: str) -> str:
        if rest not in ("on", "off"):
            raise CommandError("capture needs 'on' or 'off'")
        result = self._session().request("capture_output",
                                         {"enabled": rest == "on"})
        return f"output capture {'on' if result['capturing'] else 'off'}"

    def do_input(self, rest: str) -> str:
        """`input TEXT` — feed a line to the debuggee's stdin."""
        result = self._session().request("feed_input",
                                         {"text": rest + "\n"})
        return f"fed {result['fed']} bytes"

    def do_eof(self, rest: str) -> str:
        self._session().request("close_input")
        return "stdin closed"

    def do_tree(self, rest: str) -> str:
        """The whole-program process tree (Fig. 1)."""
        rendered = self.client.render_process_tree()
        return rendered or "no processes observed"

    # -- modes ----------------------------------------------------------------------------------

    def do_disturb(self, rest: str) -> str:
        if rest not in ("on", "off"):
            raise CommandError("disturb needs 'on' or 'off'")
        self._session().request("disturb", {"enabled": rest == "on"})
        return f"disturb mode {rest}"

    def do_profile(self, rest: str) -> str:
        """`profile start [MS] | stop | report` — sampling profiler."""
        parts = rest.split()
        if not parts:
            raise CommandError("profile needs start/stop/report")
        session = self._session()
        if parts[0] == "start":
            interval = float(parts[1]) if len(parts) > 1 else 5.0
            session.request("profile_start", {"interval_ms": interval})
            return f"profiler started ({interval} ms interval)"
        if parts[0] == "stop":
            result = session.request("profile_stop")
            return f"profiler stopped after {result['total_sweeps']} sweeps"
        if parts[0] == "report":
            report = session.request("profile_report")
            lines = [f"{report['total_sweeps']} sweeps at "
                     f"{report['interval_ms']:.1f} ms"]
            for ue, data in sorted(report["profiles"].items()):
                lines.append(f"{ue}: {data['samples']} samples")
                for row in data["hottest"][:6]:
                    share = 100.0 * row["self"] / max(1, data["samples"])
                    lines.append(f"    {share:5.1f}%  {row['function']}")
            return "\n".join(lines)
        raise CommandError("profile needs start/stop/report")

    # -- telemetry (observability subsystem) -----------------------------------------

    @staticmethod
    def _render_metrics(snap: dict, indent: str = "") -> List[str]:
        """Counters, gauges and histogram summaries of one snapshot."""
        lines: List[str] = []
        metrics = snap.get("metrics", {})
        for name, value in sorted(metrics.get("counters", {}).items()):
            lines.append(f"{indent}{name} = {value}")
        for name, value in sorted(metrics.get("gauges", {}).items()):
            lines.append(f"{indent}{name} = {value} (gauge)")
        for name, hist in sorted(metrics.get("histograms", {}).items()):
            n = hist.get("count", 0)
            if not n:
                continue
            mean = hist.get("sum", 0.0) / n
            lines.append(f"{indent}{name}: n={n} mean={mean * 1e3:.3f}ms "
                         f"min={hist.get('min', 0.0) * 1e3:.3f}ms "
                         f"max={hist.get('max', 0.0) * 1e3:.3f}ms")
        spans = snap.get("spans", [])
        if spans:
            lines.append(f"{indent}{len(spans)} recorded spans")
        return lines

    def do_telemetry(self, rest: str) -> str:
        """`telemetry [process|cluster|ue] [reset]` — observability snapshot.

        ``process`` (default) polls the active session's debuggee;
        ``cluster`` sweeps every attached debuggee plus this client;
        ``ue`` narrows the process snapshot's spans to the active UE's
        thread.  Append ``reset`` to drain counters as they are read.
        """
        parts = rest.split()
        scope = parts[0] if parts and parts[0] in ("process", "cluster",
                                                   "ue") else "process"
        reset = "reset" in parts
        if scope == "cluster":
            sweep = self.client.cluster_telemetry(reset=reset)
            lines: List[str] = []
            for pid, snap in sorted(sweep["processes"].items()):
                lines.append(f"process {pid} ({snap.get('program') or '?'}, "
                             f"epoch {snap.get('epoch')})")
                lines.extend(self._render_metrics(snap, indent="  "))
            for pid, err in sorted(sweep.get("errors", {}).items()):
                lines.append(f"process {pid}: telemetry failed: {err}")
            fleet = sweep.get("fleet") or {}
            if fleet.get("sessions"):
                line = (f"fleet: {fleet['sessions']} sessions, "
                        f"{fleet.get('heartbeats_seen', 0)} beats, "
                        f"{fleet.get('missed_beats', 0)} missed")
                rtt = fleet.get("rtt_seconds")
                if rtt:
                    line += (f"; hb rtt min/p50/max "
                             f"{rtt['min'] * 1e3:.1f}/"
                             f"{rtt['p50'] * 1e3:.1f}/"
                             f"{rtt['max'] * 1e3:.1f} ms "
                             f"(slowest pid {rtt['slowest_pid']})")
                lines.append(line)
            client_snap = sweep.get("client")
            if client_snap:
                lines.append("client (this process)")
                lines.extend(self._render_metrics(client_snap, indent="  "))
            return "\n".join(lines) if lines else "no telemetry"
        session = self._session()
        snap = session.request("telemetry", {"reset": reset})
        lines = [f"process {snap['pid']} ({snap.get('program') or '?'}, "
                 f"epoch {snap.get('epoch')}, "
                 f"fork generation {snap.get('fork_generation')})"]
        if scope == "ue":
            view = self._active()
            tid = view.ue.tid
            mine = [s for s in snap.get("spans", [])
                    if s.get("tid") == tid]
            lines.append(f"UE {view.ue}: {len(mine)} spans")
            for s in mine[-20:]:
                lines.append(f"  {s['name']} [{s['cat']}] "
                             f"{s['dur'] * 1e3:.3f}ms")
            return "\n".join(lines)
        lines.extend(self._render_metrics(snap, indent="  "))
        return "\n".join(lines)

    def do_log(self, rest: str) -> str:
        """`log [N]` — the debuggee-side debugger's internal event log."""
        limit = int(rest) if rest else 50
        result = self._session().request("debug_log", {"limit": limit})
        lines = result["records"]
        if result["dropped"]:
            lines.insert(0, f"({result['dropped']} older records dropped)")
        return "\n".join(lines) if lines else "(log empty)"

    def do_help(self, rest: str) -> str:
        verbs = sorted(name[3:].rstrip("_")
                       for name in dir(self) if name.startswith("do_"))
        aliases = ", ".join(f"{alias}={full}"
                            for alias, full in sorted(self._ALIASES.items()))
        return ("commands: " + ", ".join(verbs)
                + "\naliases: " + aliases)

    def do_deadlocks(self, rest: str) -> str:
        report = self._session().request("deadlock_report")
        if not report.get("available", True):
            return "deadlock detection not available"
        cycles = report.get("cycles", [])
        if not cycles:
            return "no deadlocks detected"
        out = []
        for cycle in cycles:
            out.append("deadlock: " + " -> ".join(cycle["nodes"]))
            for ue, where in cycle.get("locations", {}).items():
                out.append(f"  {ue} blocked at {where}")
        return "\n".join(out)

"""DebugClient: one client, many sessions (paper Fig. 1 and section 4.1).

*"this distributed architecture makes possible to debug multiple
processes from a single client"* — the client keeps one
:class:`~repro.client.session.DebugSession` per debuggee process and one
:class:`~repro.client.view.DebugView` per UE, multiplexing views with a
single *active* view at a time (section 4.2 and Fig. 3).

New debuggees arrive two ways:

* explicitly, via :meth:`attach`;
* automatically, when a debuggee forks: the child's fork handler writes
  its port into the rendezvous file and the client's
  :class:`~repro.util.portfile.PortFileWatcher` dials it (Fig. 6).
"""

from __future__ import annotations

import random
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..obs import metrics as obs_metrics
from ..server import protocol
from ..tracing.frames import StackCapture
from ..util.errors import ReproError, SessionError, ViewError
from ..util.ids import IdAllocator, UEId
from ..util.portfile import PortFile, PortFileWatcher, PortRecord, pid_alive
from ..util.ringlog import debug_event
from .reactor import ClientReactor
from .session import DebugSession, PendingCall
from .view import DebugView

#: Retained tail of :attr:`DebugClient.stop_history` — bounded the same
#: way the Output window is; ``stop_count`` keeps the monotonic total.
STOP_HISTORY_LIMIT = 1024


class DebugClient:
    """1 client : N servers session manager.

    All sessions share ONE :class:`~repro.client.reactor.ClientReactor`:
    the client costs two threads total (loop + dispatcher) no matter how
    many debuggees are attached — the property the fleet benchmark
    gates on.
    """

    def __init__(self,
                 on_stop: Optional[Callable[[DebugView], None]] = None,
                 on_new_session: Optional[
                     Callable[[DebugSession], None]] = None,
                 on_session_lost: Optional[
                     Callable[[DebugSession, str], None]] = None,
                 on_detached: Optional[
                     Callable[[DebugSession, str], None]] = None,
                 auto_reattach: bool = False,
                 reattach_base: float = 0.1,
                 reattach_cap: float = 2.0,
                 reattach_attempts: int = 6):
        self._sessions: Dict[int, DebugSession] = {}
        self._views: Dict[UEId, DebugView] = {}
        self._lock = threading.RLock()
        #: signalled whenever a session is added (attach/auto-attach)
        self._session_signal = threading.Condition(self._lock)
        self._session_ids = IdAllocator("s")
        self._view_ids = IdAllocator("v")
        self._watcher: Optional[PortFileWatcher] = None
        self._active_view: Optional[DebugView] = None
        self.on_stop = on_stop
        self.on_new_session = on_new_session
        self.on_session_lost = on_session_lost
        #: degraded-mode notification: the server DETACHED (debuggee
        #: still running, just no longer debugged) — distinct from loss
        self.on_detached = on_detached
        #: exponential-backoff-with-jitter reconnect, layered on
        #: reattach(): on session LOSS (not server_exit/detach — those
        #: are deliberate) the client redials the old coordinates until
        #: the server answers, the pid dies, or the budget runs out.
        self.auto_reattach = auto_reattach
        self.reattach_base = reattach_base
        self.reattach_cap = reattach_cap
        self.reattach_attempts = reattach_attempts
        #: jitter decorrelates a fleet of clients redialing one server
        self._reattach_rng = random.Random()
        #: one selector loop for every session's sockets
        self.reactor = ClientReactor()
        #: recent stop notifications in arrival order (bounded tail)
        self.stop_history: List[DebugView] = []
        #: monotonic count of every stop ever routed — what
        #: :meth:`wait_for_stop` counts, immune to the history bound
        self.stop_count = 0
        self._stop_signal = threading.Condition()
        #: Fig. 2's Output window, per debuggee pid.
        self._output: Dict[int, List[tuple]] = {}
        #: Fig. 1's whole-program view: who forked whom.
        from ..core.metadata import ProcessTree
        self.process_tree = ProcessTree()

    # -- attaching ------------------------------------------------------------------

    def attach(self, host: str, port: int, **session_kwargs) -> DebugSession:
        """Open a session to the debug server at host:port."""
        session_kwargs.setdefault("reactor", self.reactor)
        session = DebugSession(host, port, self._session_ids.next(),
                               on_event=self._route_event, **session_kwargs)
        with self._lock:
            existing = self._sessions.get(session.pid)
            if existing is not None and not existing.closed:
                session.close()
                raise SessionError(
                    f"already attached to pid {session.pid}")
            self._sessions[session.pid] = session
            # A successor session for a known pid (reattach after loss):
            # existing views swap transports, keeping their stop state.
            for ue, view in self._views.items():
                if ue.pid == session.pid:
                    view.rebind(session)
            self._session_signal.notify_all()
        self.process_tree.observe(pid=session.pid,
                                  parent_pid=session.parent_pid,
                                  program=session.program)
        debug_event("client", f"attached to pid {session.pid} "
                              f"at {host}:{port}")
        if self.on_new_session is not None:
            try:
                self.on_new_session(session)
            except Exception:  # noqa: BLE001 - user callback
                pass
        return session

    def watch_portfile(self, portfile: PortFile,
                       poll_interval: float = 0.02,
                       gc_interval: float = 5.0) -> None:
        """Auto-attach every server announced in the rendezvous file.

        The watcher is liveness-checked: a record whose pid is already
        dead is never dialed (each dial would eat a connect timeout),
        and dead records are reaped from the file every *gc_interval*
        seconds so a long debug run's rendezvous file doesn't accrete
        corpses.  Pass ``gc_interval=0`` to keep every record forever.

        The poll rides the shared reactor's timer wheel — the wheel
        fires the tick, the dispatcher thread runs the poll and any
        dials (a dial blocks on connect, which the loop thread must
        never do) — so watching adds zero threads.
        """
        if self._watcher is not None:
            raise SessionError("already watching a port file")
        self._watcher = PortFileWatcher(
            portfile=portfile, on_record=self._on_port_record,
            poll_interval=poll_interval, gc_interval=gc_interval)
        self._watcher.start(scheduler=self._schedule_poll)

    def _schedule_poll(self, delay: float,
                       fn: Callable[[], None]) -> object:
        """Timer-wheel scheduler handed to the portfile watcher."""
        return self.reactor.call_later(
            delay, lambda: self.reactor.defer(fn))

    def _on_port_record(self, record: PortRecord) -> None:
        with self._lock:
            existing = self._sessions.get(record.pid)
            if existing is not None and not existing.closed:
                return
        try:
            self.attach(record.host, record.port)
        except (ReproError, OSError) as exc:
            # The child may have exited between announce and dial; a
            # failed auto-attach must not kill the watcher.
            debug_event("client",
                        f"auto-attach to pid {record.pid} failed: {exc}")

    # -- lifecycle -------------------------------------------------------------------

    def close(self) -> None:
        if self._watcher is not None:
            self._watcher.stop()
            self._watcher = None
        with self._lock:
            sessions = list(self._sessions.values())
            self._sessions.clear()
            self._views.clear()
            self._active_view = None
        for session in sessions:
            session.close()
        self.reactor.close()

    def __enter__(self) -> "DebugClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- sessions and views -----------------------------------------------------------

    def sessions(self) -> List[DebugSession]:
        with self._lock:
            return [s for s in self._sessions.values() if not s.closed]

    def session_for_pid(self, pid: int,
                        timeout: float = 5.0) -> DebugSession:
        """Get the session for *pid*, waiting for auto-attach if needed.

        Blocks on a condition signalled by :meth:`attach` — no polling;
        the waiter wakes the moment the watcher's dial completes.
        """
        deadline = time.monotonic() + timeout
        with self._session_signal:
            while True:
                session = self._sessions.get(pid)
                if session is not None and not session.closed:
                    return session
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise SessionError(f"no session for pid {pid}")
                self._session_signal.wait(remaining)

    def reattach(self, pid: int, host: Optional[str] = None,
                 port: Optional[int] = None, resync: bool = True,
                 **session_kwargs) -> DebugSession:
        """Reclaim a lost session to a still-running debug server.

        Dials the old coordinates (or the ones given), presenting the
        token the original hello_ack granted so the server can tell this
        rightful successor from a stale client of a previous epoch.  On
        success the server cancels its client-loss grace timer — parked
        UEs stay parked — and replays every live stop; existing views are
        rebound to the new transport.  With *resync*, breakpoints the old
        session had set but the server no longer has are re-sent.
        """
        with self._lock:
            old = self._sessions.get(pid)
        if old is None:
            raise SessionError(f"never attached to pid {pid}; "
                               f"use attach()")
        if not old.closed:
            return old
        session = self.attach(host or old.host, port or old.port,
                              resume_token=old.session_token,
                              **session_kwargs)
        if resync:
            self._resync_breakpoints(session, old)
        debug_event("client", f"reattached to pid {pid} "
                              f"(resumed={session.resumed})")
        return session

    def _resync_breakpoints(self, session: DebugSession,
                            old: DebugSession) -> None:
        """Re-send the old session's breakpoint intent, minus survivors."""
        from ..tracing.breakpoints import canonical_file
        specs = old.breakpoint_specs()
        if not specs:
            return
        try:
            table = session.request("breaks")
        except ReproError:
            table = []
        have = set()
        for bp in table or []:
            if bp.get("function"):
                have.add(("func", bp["function"], bp.get("condition")))
            else:
                have.add((bp.get("file"), bp.get("line"),
                          bp.get("condition")))
        for command, args in specs:
            if command == "set_function_break":
                key = ("func", args.get("function"), args.get("condition"))
            else:
                key = (canonical_file(str(args.get("file", ""))),
                       args.get("line"), args.get("condition"))
            if key in have:
                continue
            try:
                session.request(command, args)
            except ReproError as exc:
                debug_event("client",
                            f"breakpoint resync failed for {args}: {exc}")

    def view_for(self, ue: UEId,
                 session: Optional[DebugSession] = None) -> DebugView:
        """The view for *ue*, created on first use.

        *session* is the transport to bind a new view to when the
        registry has no entry yet: a stop replayed at hello time races
        the `attach()` bookkeeping (the reader thread starts before the
        session is registered), and the event's own delivering session
        is already the right one.
        """
        with self._lock:
            view = self._views.get(ue)
            if view is None:
                owner = self._sessions.get(ue.pid)
                if owner is None or owner.closed:
                    owner = session
                if owner is None or owner.closed:
                    raise ViewError(f"no session for {ue}")
                view = DebugView(self._view_ids.next(), owner, ue)
                self._views[ue] = view
            return view

    def views(self) -> List[DebugView]:
        with self._lock:
            return list(self._views.values())

    # -- active-view multiplexing (Fig. 3) ----------------------------------------------

    @property
    def active_view(self) -> Optional[DebugView]:
        with self._lock:
            return self._active_view

    def activate(self, view: DebugView) -> dict:
        """Make *view* the active view and render it (Fig. 3 steps 1-4:
        the previously active view's source is hidden, the new view's
        source is fetched and displayed)."""
        with self._lock:
            self._active_view = view
        return view.render()

    # -- event routing ---------------------------------------------------------------------

    def _route_event(self, session: DebugSession, message: dict) -> None:
        event = message.get("event")
        payload = message.get("payload", {})
        if event == protocol.EV_STOPPED:
            ue = protocol.ue_from_wire(payload["ue"])
            view = self.view_for(ue, session=session)
            view.mark_stopped(StackCapture.from_wire(payload["capture"]))
            with self._stop_signal:
                self.stop_count += 1
                self.stop_history.append(view)
                if len(self.stop_history) > STOP_HISTORY_LIMIT:
                    # Bounded like the Output window: at fleet scale an
                    # unbounded arrival log is a leak.  stop_count keeps
                    # wait_for_stop counting correct across the trim.
                    del self.stop_history[:len(self.stop_history)
                                          - STOP_HISTORY_LIMIT]
                self._stop_signal.notify_all()
            if self.on_stop is not None:
                try:
                    self.on_stop(view)
                except Exception:  # noqa: BLE001
                    pass
        elif event == protocol.EV_RESUMED:
            ue = protocol.ue_from_wire(payload["ue"])
            with self._lock:
                view = self._views.get(ue)
            if view is not None:
                view.mark_resumed()
        elif event == protocol.EV_OUTPUT:
            with self._lock:
                chunks = self._output.setdefault(payload["pid"], [])
                chunks.append((payload["stream"], payload["text"]))
                if len(chunks) > 4000:
                    del chunks[:len(chunks) - 4000]
        elif event == protocol.EV_PROCESS_FORKED:
            # Fig. 1: a child was born; the tree learns about it even
            # before the child's own announce/attach completes.
            self.process_tree.observe(pid=payload["child_pid"],
                                      parent_pid=payload["parent_pid"])
        elif event == protocol.EV_SERVER_EXIT:
            self.process_tree.mark_exited(session.pid)
            session.close()
        elif event == protocol.EV_DETACHED:
            # Degraded mode: the debugger removed itself from a LIVE
            # debuggee (do-no-harm bail-out).  The process is not
            # exited — only its debugability is gone; close the session
            # in an orderly way and surface the verdict.
            reason = payload.get("reason", "unknown")
            debug_event("client", f"debug server for pid {session.pid} "
                                  f"detached: {reason}")
            obs_metrics.inc("client.detaches")
            session.close()
            if self.on_detached is not None:
                try:
                    self.on_detached(session, reason)
                except Exception:  # noqa: BLE001 - user callback
                    pass
        elif event == protocol.EV_SESSION_LOST:
            # Synthesised by the session's supervision layer (missed
            # heartbeats / abrupt channel loss).  The debuggee may well
            # be dead; reflect that in the whole-program view and hand
            # the verdict to the embedder, who may try reattach().
            self.process_tree.mark_exited(session.pid)
            reason = payload.get("reason", "unknown")
            debug_event("client",
                        f"session to pid {session.pid} lost: {reason}")
            if self.on_session_lost is not None:
                try:
                    self.on_session_lost(session, reason)
                except Exception:  # noqa: BLE001 - user callback
                    pass
            if self.auto_reattach:
                self._schedule_reattach(session.pid, attempt=1)

    # -- backoff reconnect (layered on reattach) --------------------------------

    def _schedule_reattach(self, pid: int, attempt: int) -> None:
        """Arm one redial on the reactor timer wheel, with jitter.

        Exponential backoff (base × 2^attempt, capped) times a
        0.5–1.5× jitter factor: a fleet of clients that all lost the
        same server redial decorrelated instead of in lockstep.
        """
        if attempt > self.reattach_attempts:
            obs_metrics.inc("client.reattach_giveups")
            debug_event("client", f"giving up on pid {pid} after "
                                  f"{self.reattach_attempts} reattach "
                                  f"attempts")
            return
        delay = min(self.reattach_cap,
                    self.reattach_base * (2 ** (attempt - 1)))
        delay *= 0.5 + self._reattach_rng.random()
        # The dial blocks on connect, so it runs on the dispatcher
        # (defer), never on the loop thread the timer fires from.
        self.reactor.call_later(
            delay, lambda: self.reactor.defer(
                lambda: self._try_reattach(pid, attempt)))

    def _try_reattach(self, pid: int, attempt: int) -> None:
        with self._lock:
            session = self._sessions.get(pid)
        if session is None or not session.closed:
            return  # detached from the client side, or already back
        if not pid_alive(pid):
            debug_event("client", f"pid {pid} is gone; "
                                  f"abandoning reattach")
            return
        obs_metrics.inc("client.reattach_attempts")
        try:
            self.reattach(pid)
            debug_event("client", f"backoff reattach to pid {pid} "
                                  f"succeeded (attempt {attempt})")
        except (ReproError, OSError) as exc:
            debug_event("client", f"reattach attempt {attempt} to "
                                  f"pid {pid} failed: {exc}")
            self._schedule_reattach(pid, attempt + 1)

    def wait_for_stop(self, timeout: float = 10.0,
                      min_count: int = 1) -> List[DebugView]:
        """Block until at least *min_count* stop events have arrived.

        Counts against the monotonic :attr:`stop_count`, so the bound on
        :attr:`stop_history` can never make a waiter miscount; returns
        the retained history tail.
        """
        deadline = time.monotonic() + timeout
        with self._stop_signal:
            while self.stop_count < min_count:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ViewError(
                        f"only {self.stop_count}/{min_count} stops "
                        f"within {timeout:.1f}s")
                self._stop_signal.wait(remaining)
            return list(self.stop_history)

    def stopped_views(self) -> List[DebugView]:
        return [v for v in self.views() if v.is_stopped]

    # -- cluster-wide fan-out (scatter-gather) -------------------------------------

    def cluster_request(self, command: str, args: Optional[dict] = None,
                        timeout: Optional[float] = None,
                        sessions: Optional[List[DebugSession]] = None,
                        ) -> Tuple[Dict[int, Any], Dict[int, str]]:
        """Issue *command* to every live session concurrently.

        The scatter leg pipelines one request per session onto the
        shared reactor (no per-pid round trips); the gather leg collects
        under ONE deadline, so total sweep time scales with the slowest
        responder, not with the session count.  Returns
        ``(results_by_pid, errors_by_pid)`` — a pid that errors or times
        out becomes a *hole*, recorded in the errors dict AND in the obs
        ringlog (``debug_event``), never an aborted sweep.
        """
        targets = self.sessions() if sessions is None else sessions
        calls: Dict[int, PendingCall] = {}
        errors: Dict[int, str] = {}
        for session in targets:
            try:
                calls[session.pid] = session.request_async(command, args)
            except (ReproError, OSError) as exc:
                errors[session.pid] = f"{type(exc).__name__}: {exc}"
        if timeout is None:
            timeout = max((s.request_timeout for s in targets),
                          default=10.0)
        deadline = time.monotonic() + timeout
        results: Dict[int, Any] = {}
        for pid, call in calls.items():
            remaining = max(0.0, deadline - time.monotonic())
            try:
                results[pid] = call.wait(remaining)
            except (ReproError, OSError) as exc:
                errors[pid] = f"{type(exc).__name__}: {exc}"
        for pid, why in errors.items():
            # The hole must be diagnosable after the sweep returns, not
            # only present in the dict the caller may drop.
            debug_event("client",
                        f"cluster {command!r}: hole at pid {pid}: {why}")
        if errors:
            obs_metrics.inc("client.cluster_holes", len(errors),
                            command=command)
        return results, errors

    def cluster_telemetry(self, reset: bool = False,
                          include_client: bool = True,
                          ringlog_limit: int = 500,
                          timeout: Optional[float] = None) -> dict:
        """Pull the ``telemetry`` snapshot from every live session.

        Scatter-gather: one batch of pipelined requests, gathered under
        a single deadline — a 200-worker sweep costs ~one round trip,
        not 200.  A session that dies mid-poll is recorded under
        ``"errors"`` (and in the ringlog) rather than aborting the sweep
        — a cluster snapshot with a hole beats no snapshot during a
        crash.  The client process's own registry rides along
        (``"client"``), and ``"fleet"`` aggregates per-session heartbeat
        health so one slow worker is visible without reading N blobs.
        """
        processes, errors = self.cluster_request(
            "telemetry", {"reset": reset, "ringlog_limit": ringlog_limit},
            timeout=timeout)
        out: dict = {"processes": processes}
        if errors:
            out["errors"] = errors
        out["fleet"] = self.fleet_health()
        if include_client:
            from .. import obs
            client_snap = obs.telemetry_snapshot(
                reset=reset, ringlog_limit=ringlog_limit)
            client_snap["program"] = "dionea-client"
            out["client"] = client_snap
        return out

    def cluster_timeline(self, blackbox_dir: Optional[str] = None,
                         reset: bool = False,
                         ringlog_limit: int = 500,
                         timeout: Optional[float] = None,
                         flush: bool = True) -> dict:
        """One causally ordered Chrome trace for the WHOLE fork tree —
        the living answering ``telemetry``, the dead speaking through
        their black-box dumps.

        *blackbox_dir* defaults to ``DIONEA_BLACKBOX_DIR``; with
        *flush*, live sessions are asked to force a dump first so the
        on-disk record is as fresh as the live one.  Pids the client has
        ever observed (the process tree) are passed as expected pids, so
        a child that died before writing anything shows up as an
        explicit hole instead of vanishing.  Works with zero live
        sessions: a purely post-mortem timeline is the design point.
        """
        import os as _os

        from ..obs import timeline as obs_timeline
        from ..obs.blackbox import BLACKBOX_DIR_ENV

        if blackbox_dir is None:
            blackbox_dir = _os.environ.get(BLACKBOX_DIR_ENV)
        if flush and self.sessions():
            # Best-effort: a session that cannot flush still contributes
            # whatever its last incremental flush left on disk.
            self.cluster_request("blackbox", {"flush": True},
                                 timeout=timeout)
        telemetry = self.cluster_telemetry(reset=reset,
                                           ringlog_limit=ringlog_limit,
                                           timeout=timeout)
        live = list(telemetry.get("processes", {}).values())
        document = obs_timeline.assemble_from_dir(
            blackbox_dir, live_snapshots=live,
            client_snapshot=telemetry.get("client"),
            expected_pids=self.process_tree.pids())
        if telemetry.get("errors"):
            document["otherData"]["telemetry_errors"] = {
                str(pid): why
                for pid, why in telemetry["errors"].items()}
        return document

    def cluster_set_break(self, file: Optional[str] = None,
                          line: Optional[int] = None,
                          function: Optional[str] = None,
                          condition: Optional[str] = None,
                          temporary: bool = False,
                          timeout: Optional[float] = None) -> dict:
        """Set one breakpoint in EVERY attached debuggee at once.

        The fleet analogue of ``set_break`` / ``set_function_break``:
        scatter to all sessions, gather with a deadline.  Returns
        ``{"breakpoints": {pid: result}, "errors": {pid: reason}}``.
        """
        if function is not None:
            command = "set_function_break"
            args: dict = {"function": function}
        else:
            if file is None or line is None:
                raise ViewError("cluster_set_break needs file+line "
                                "or function")
            command = "set_break"
            args = {"file": file, "line": line}
        if condition is not None:
            args["condition"] = condition
        if temporary:
            args["temporary"] = True
        results, errors = self.cluster_request(command, args,
                                               timeout=timeout)
        return {"breakpoints": results, "errors": errors}

    def cluster_continue(self,
                         timeout: Optional[float] = None) -> dict:
        """Resume every parked UE across the whole fleet (continue-all).

        Fans ``resume_all`` out to every session concurrently; a pid
        that cannot be resumed is a hole, not an abort.  Returns
        ``{"resumed": {pid: result}, "errors": {pid: reason}}``.
        """
        results, errors = self.cluster_request("resume_all",
                                               timeout=timeout)
        return {"resumed": results, "errors": errors}

    def fleet_health(self) -> dict:
        """min/p50/max heartbeat aggregates across all live sessions.

        The 200-worker question is never "what is worker 137's RTT" but
        "is any worker slow" — so the sweep output leads with the
        distribution: RTT last/min/max/p50 across sessions plus the
        worst miss-budget usage, with the offending pid named.
        """
        stats = [s.heartbeat_stats() for s in self.sessions()]
        rtts = sorted((st["rtt_last"], st["pid"]) for st in stats
                      if st["rtt_last"] is not None)
        out: dict = {"sessions": len(stats),
                     "heartbeats_seen": sum(st["rtt_count"]
                                            for st in stats),
                     "missed_beats": sum(st["missed_beats"]
                                         for st in stats)}
        if rtts:
            out["rtt_seconds"] = {
                "min": rtts[0][0],
                "p50": rtts[len(rtts) // 2][0],
                "max": rtts[-1][0],
                "slowest_pid": rtts[-1][1],
            }
        budget_used = [(st["miss_budget_used"], st["pid"]) for st in stats
                       if st["miss_budget_used"] is not None]
        if budget_used:
            worst = max(budget_used)
            out["miss_budget_used"] = {"max": worst[0],
                                       "worst_pid": worst[1]}
        return out

    # -- Output window / process tree -------------------------------------------

    def output_for(self, pid: int, stream: Optional[str] = None) -> str:
        """Buffered output events received from debuggee *pid*."""
        with self._lock:
            chunks = list(self._output.get(pid, ()))
        return "".join(text for label, text in chunks
                       if stream is None or label == stream)

    def render_process_tree(self) -> str:
        """Fig. 2's Processes-and-threads pane, process level."""
        return self.process_tree.render()

"""DebugClient: one client, many sessions (paper Fig. 1 and section 4.1).

*"this distributed architecture makes possible to debug multiple
processes from a single client"* — the client keeps one
:class:`~repro.client.session.DebugSession` per debuggee process and one
:class:`~repro.client.view.DebugView` per UE, multiplexing views with a
single *active* view at a time (section 4.2 and Fig. 3).

New debuggees arrive two ways:

* explicitly, via :meth:`attach`;
* automatically, when a debuggee forks: the child's fork handler writes
  its port into the rendezvous file and the client's
  :class:`~repro.util.portfile.PortFileWatcher` dials it (Fig. 6).
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional

from ..server import protocol
from ..tracing.frames import StackCapture
from ..util.errors import ReproError, SessionError, ViewError
from ..util.ids import IdAllocator, UEId
from ..util.portfile import PortFile, PortFileWatcher, PortRecord
from ..util.ringlog import debug_event
from .session import DebugSession
from .view import DebugView


class DebugClient:
    """1 client : N servers session manager."""

    def __init__(self,
                 on_stop: Optional[Callable[[DebugView], None]] = None,
                 on_new_session: Optional[
                     Callable[[DebugSession], None]] = None):
        self._sessions: Dict[int, DebugSession] = {}
        self._views: Dict[UEId, DebugView] = {}
        self._lock = threading.RLock()
        self._session_ids = IdAllocator("s")
        self._view_ids = IdAllocator("v")
        self._watcher: Optional[PortFileWatcher] = None
        self._active_view: Optional[DebugView] = None
        self.on_stop = on_stop
        self.on_new_session = on_new_session
        #: stop notifications in arrival order (handy for tests/tools)
        self.stop_history: List[DebugView] = []
        self._stop_signal = threading.Condition()
        #: Fig. 2's Output window, per debuggee pid.
        self._output: Dict[int, List[tuple]] = {}
        #: Fig. 1's whole-program view: who forked whom.
        from ..core.metadata import ProcessTree
        self.process_tree = ProcessTree()

    # -- attaching ------------------------------------------------------------------

    def attach(self, host: str, port: int, **session_kwargs) -> DebugSession:
        """Open a session to the debug server at host:port."""
        session = DebugSession(host, port, self._session_ids.next(),
                               on_event=self._route_event, **session_kwargs)
        with self._lock:
            existing = self._sessions.get(session.pid)
            if existing is not None and not existing.closed:
                session.close()
                raise SessionError(
                    f"already attached to pid {session.pid}")
            self._sessions[session.pid] = session
        self.process_tree.observe(pid=session.pid,
                                  parent_pid=session.parent_pid,
                                  program=session.program)
        debug_event("client", f"attached to pid {session.pid} "
                              f"at {host}:{port}")
        if self.on_new_session is not None:
            try:
                self.on_new_session(session)
            except Exception:  # noqa: BLE001 - user callback
                pass
        return session

    def watch_portfile(self, portfile: PortFile,
                       poll_interval: float = 0.02) -> None:
        """Auto-attach every server announced in the rendezvous file."""
        if self._watcher is not None:
            raise SessionError("already watching a port file")
        self._watcher = PortFileWatcher(
            portfile=portfile, on_record=self._on_port_record,
            poll_interval=poll_interval)
        self._watcher.start()

    def _on_port_record(self, record: PortRecord) -> None:
        with self._lock:
            existing = self._sessions.get(record.pid)
            if existing is not None and not existing.closed:
                return
        try:
            self.attach(record.host, record.port)
        except (ReproError, OSError) as exc:
            # The child may have exited between announce and dial; a
            # failed auto-attach must not kill the watcher.
            debug_event("client",
                        f"auto-attach to pid {record.pid} failed: {exc}")

    # -- lifecycle -------------------------------------------------------------------

    def close(self) -> None:
        if self._watcher is not None:
            self._watcher.stop()
            self._watcher = None
        with self._lock:
            sessions = list(self._sessions.values())
            self._sessions.clear()
            self._views.clear()
            self._active_view = None
        for session in sessions:
            session.close()

    def __enter__(self) -> "DebugClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- sessions and views -----------------------------------------------------------

    def sessions(self) -> List[DebugSession]:
        with self._lock:
            return [s for s in self._sessions.values() if not s.closed]

    def session_for_pid(self, pid: int,
                        timeout: float = 5.0) -> DebugSession:
        """Get the session for *pid*, waiting for auto-attach if needed."""
        import time
        deadline = time.monotonic() + timeout
        while True:
            with self._lock:
                session = self._sessions.get(pid)
            if session is not None and not session.closed:
                return session
            if time.monotonic() >= deadline:
                raise SessionError(f"no session for pid {pid}")
            time.sleep(0.01)

    def view_for(self, ue: UEId) -> DebugView:
        with self._lock:
            view = self._views.get(ue)
            if view is None:
                session = self._sessions.get(ue.pid)
                if session is None or session.closed:
                    raise ViewError(f"no session for {ue}")
                view = DebugView(self._view_ids.next(), session, ue)
                self._views[ue] = view
            return view

    def views(self) -> List[DebugView]:
        with self._lock:
            return list(self._views.values())

    # -- active-view multiplexing (Fig. 3) ----------------------------------------------

    @property
    def active_view(self) -> Optional[DebugView]:
        with self._lock:
            return self._active_view

    def activate(self, view: DebugView) -> dict:
        """Make *view* the active view and render it (Fig. 3 steps 1-4:
        the previously active view's source is hidden, the new view's
        source is fetched and displayed)."""
        with self._lock:
            self._active_view = view
        return view.render()

    # -- event routing ---------------------------------------------------------------------

    def _route_event(self, session: DebugSession, message: dict) -> None:
        event = message.get("event")
        payload = message.get("payload", {})
        if event == protocol.EV_STOPPED:
            ue = protocol.ue_from_wire(payload["ue"])
            view = self.view_for(ue)
            view.mark_stopped(StackCapture.from_wire(payload["capture"]))
            with self._stop_signal:
                self.stop_history.append(view)
                self._stop_signal.notify_all()
            if self.on_stop is not None:
                try:
                    self.on_stop(view)
                except Exception:  # noqa: BLE001
                    pass
        elif event == protocol.EV_RESUMED:
            ue = protocol.ue_from_wire(payload["ue"])
            with self._lock:
                view = self._views.get(ue)
            if view is not None:
                view.mark_resumed()
        elif event == protocol.EV_OUTPUT:
            with self._lock:
                chunks = self._output.setdefault(payload["pid"], [])
                chunks.append((payload["stream"], payload["text"]))
                if len(chunks) > 4000:
                    del chunks[:len(chunks) - 4000]
        elif event == protocol.EV_PROCESS_FORKED:
            # Fig. 1: a child was born; the tree learns about it even
            # before the child's own announce/attach completes.
            self.process_tree.observe(pid=payload["child_pid"],
                                      parent_pid=payload["parent_pid"])
        elif event == protocol.EV_SERVER_EXIT:
            self.process_tree.mark_exited(session.pid)
            session.close()

    def wait_for_stop(self, timeout: float = 10.0,
                      min_count: int = 1) -> List[DebugView]:
        """Block until at least *min_count* stop events have arrived."""
        import time
        deadline = time.monotonic() + timeout
        with self._stop_signal:
            while len(self.stop_history) < min_count:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ViewError(
                        f"only {len(self.stop_history)}/{min_count} stops "
                        f"within {timeout:.1f}s")
                self._stop_signal.wait(remaining)
            return list(self.stop_history)

    def stopped_views(self) -> List[DebugView]:
        return [v for v in self.views() if v.is_stopped]

    # -- Output window / process tree -------------------------------------------

    def output_for(self, pid: int, stream: Optional[str] = None) -> str:
        """Buffered output events received from debuggee *pid*."""
        with self._lock:
            chunks = list(self._output.get(pid, ()))
        return "".join(text for label, text in chunks
                       if stream is None or label == stream)

    def render_process_tree(self) -> str:
        """Fig. 2's Processes-and-threads pane, process level."""
        return self.process_tree.render()

"""Synthetic corpora standing in for the paper's source trees (§7)."""

from .generator import generate_file_text, generate_line, make_vocabulary
from .reserved import RESERVED_WORDS, is_countable, is_reserved
from .trees import (
    PROFILES,
    CorpusProfile,
    corpus_stats,
    generate_corpus,
    get_profile,
    write_corpus,
)

__all__ = [
    "generate_file_text", "generate_line", "make_vocabulary",
    "RESERVED_WORDS", "is_countable", "is_reserved",
    "PROFILES", "CorpusProfile", "corpus_stats", "generate_corpus",
    "get_profile", "write_corpus",
]

"""Reserved-word filtering for the §7 word-count workload.

The paper's benchmark program *"maps words that contain only letters and
are not reserved words"*.  It counts words over **source trees** (Dionea,
Rust, Linux), so "reserved words" means language keywords.  We filter a
union of Python keywords (the paper's own implementation language) and
the ubiquitous C-family keywords that dominate the Linux/Rust trees —
the precise set shifts counts slightly but not the benchmark's shape,
which is driven by corpus volume.
"""

from __future__ import annotations

import keyword
from typing import FrozenSet

#: C / C-family keywords common across the paper's three corpora.
C_KEYWORDS = frozenset("""
auto break case char const continue default do double else enum extern
float for goto if inline int long register restrict return short signed
sizeof static struct switch typedef union unsigned void volatile while
bool true false
""".split())

#: Rust keywords (the paper also measures the Rust tree).
RUST_KEYWORDS = frozenset("""
as crate dyn fn impl let loop match mod move mut pub ref self super
trait type unsafe use where async await
""".split())

PYTHON_KEYWORDS = frozenset(keyword.kwlist)

RESERVED_WORDS: FrozenSet[str] = frozenset(
    PYTHON_KEYWORDS | C_KEYWORDS | RUST_KEYWORDS)


def is_reserved(word: str) -> bool:
    return word in RESERVED_WORDS


def is_countable(token: str) -> bool:
    """The §7 predicate: only letters, and not a reserved word."""
    return token.isalpha() and token not in RESERVED_WORDS

"""Deterministic source-code-shaped text generation.

Substitution record (see DESIGN.md): the paper benchmarks word-count over
three real source trees — Dionea trunk r656, Rust master 7613b15 and
Linux 3.18.1 — none of which ship with this container.  What the workload
actually exercises is *volume of tokenizable text pushed through forked
workers and pickled queues*; the identity of the identifiers is
irrelevant to the overhead measurement.  So we synthesize trees whose
token statistics look like code:

* a seeded vocabulary of identifier-like words with a Zipf-ish rank
  distribution (a few very hot names, a long tail);
* lines mixing identifiers, reserved words, operators and literals at
  code-like proportions;
* fully deterministic for a given seed — two runs generate byte-identical
  corpora, so benchmark pairs (with/without debugger) see the same input.

``random.Random`` (not ``numpy``) keeps generation dependency-free and
stable across library versions.
"""

from __future__ import annotations

import random
import string
from typing import List

from ..util.errors import CorpusError
from .reserved import C_KEYWORDS, PYTHON_KEYWORDS

_OPERATORS = ["=", "==", "+", "-", "*", "/", "->", "=>", "&&", "||",
              "+=", "<<", ">>", "&", "|", "::", "."]
_PUNCT = ["(", ")", "{", "}", "[", "]", ";", ",", ":"]
_KEYWORD_POOL = sorted(PYTHON_KEYWORDS | C_KEYWORDS)


def make_vocabulary(rng: random.Random, size: int,
                    min_len: int = 2, max_len: int = 14) -> List[str]:
    """*size* distinct identifier-like words (letters only)."""
    if size < 1:
        raise CorpusError("vocabulary size must be >= 1")
    seen = set()
    words: List[str] = []
    while len(words) < size:
        length = rng.randint(min_len, max_len)
        word = "".join(rng.choice(string.ascii_lowercase)
                       for _ in range(length))
        if word not in seen:
            seen.add(word)
            words.append(word)
    return words


def _zipf_choice(rng: random.Random, vocabulary: List[str],
                 skew: float = 1.1) -> str:
    """Pick a word with a Zipf-flavoured bias toward low ranks.

    Implemented by squashing a uniform draw — cheap, deterministic and
    close enough to code-identifier frequency curves for this workload.
    """
    u = rng.random()
    index = int((u ** skew) * len(vocabulary) * u)
    return vocabulary[min(index, len(vocabulary) - 1)]


def generate_line(rng: random.Random, vocabulary: List[str],
                  tokens_per_line: int = 8) -> str:
    """One code-shaped line: keywords, identifiers, operators, digits."""
    parts: List[str] = []
    indent = "    " * rng.randint(0, 3)
    for _ in range(rng.randint(2, tokens_per_line)):
        roll = rng.random()
        if roll < 0.12:
            parts.append(rng.choice(_KEYWORD_POOL))
        elif roll < 0.72:
            parts.append(_zipf_choice(rng, vocabulary))
        elif roll < 0.84:
            parts.append(rng.choice(_OPERATORS))
        elif roll < 0.94:
            parts.append(rng.choice(_PUNCT))
        else:
            parts.append(str(rng.randint(0, 4096)))
    return indent + " ".join(parts)


def generate_file_text(seed: int, lines: int,
                       vocabulary: List[str]) -> str:
    """One file's content; deterministic in (seed, lines, vocabulary)."""
    rng = random.Random(seed)
    return "\n".join(generate_line(rng, vocabulary)
                     for _ in range(lines)) + "\n"

"""Corpus profiles standing in for the paper's three source trees.

Paper section 7 measures the same word-count program over corpora of
three sizes:

* **dionea** — Dionea's own trunk (r656): *small*; Fig. 9 shows 2.31 s
  normal vs 2.58 s debugging (≈ +12 %);
* **rust** — Rust master 7613b15: *medium*; 3'49" vs 4'36" (≈ +20 %);
* **linux** — Linux 3.18.1: *large*; Fig. 10 shows 1601 s vs 1933 s
  (≈ +20 %).

Our profiles keep the *ratios* (small : medium : large ≈ 1 : 8 : 40 by
token volume, echoing the real trees' relative sizes) while scaling the
absolute volume down so a with/without-debugger pair finishes in
benchmark-friendly time on this container.  The overhead *shape* — small
corpus ≈ low-teens %, larger corpora ≈ twenty-ish % — is what the
reproduction must show; see EXPERIMENTS.md.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..util.errors import CorpusError
from .generator import generate_file_text, make_vocabulary


@dataclass(frozen=True)
class CorpusProfile:
    """Parameters for one synthetic tree."""

    name: str
    n_files: int
    lines_per_file: int
    vocabulary_size: int
    seed: int
    #: which real tree this stands in for, for reporting
    stands_in_for: str = ""

    @property
    def approx_lines(self) -> int:
        return self.n_files * self.lines_per_file


#: Scaled stand-ins.  Sizes chosen so one §7 arm runs for whole seconds
#: (timing noise settles) while the full sweep (3 profiles x 2 modes x
#: several repetitions) still fits in minutes, not the paper's hours.
PROFILES: Dict[str, CorpusProfile] = {
    "dionea": CorpusProfile(
        name="dionea", n_files=500, lines_per_file=200,
        vocabulary_size=1500, seed=0xD10, stands_in_for="Dionea trunk r656"),
    "rust": CorpusProfile(
        name="rust", n_files=900, lines_per_file=330,
        vocabulary_size=5000, seed=0x2057, stands_in_for="Rust master 7613b15"),
    "linux": CorpusProfile(
        name="linux", n_files=1800, lines_per_file=440,
        vocabulary_size=9000, seed=0x318, stands_in_for="Linux 3.18.1"),
    #: small profile for fast unit/integration tests
    "small": CorpusProfile(
        name="small", n_files=48, lines_per_file=60,
        vocabulary_size=1200, seed=0x51, stands_in_for="(tests only)"),
    #: tiny profile for unit tests
    "tiny": CorpusProfile(
        name="tiny", n_files=6, lines_per_file=12,
        vocabulary_size=80, seed=7, stands_in_for="(tests only)"),
}

#: Generation is deterministic, so corpora are memoised per profile —
#: benchmark pairs regenerate nothing between arms.
_CORPUS_CACHE: Dict[CorpusProfile, List[Tuple[str, str]]] = {}


def get_profile(name: str) -> CorpusProfile:
    try:
        return PROFILES[name]
    except KeyError:
        raise CorpusError(
            f"unknown corpus profile {name!r}; "
            f"choose from {sorted(PROFILES)}") from None


def generate_corpus(profile: CorpusProfile) -> List[Tuple[str, str]]:
    """The whole tree in memory: ``[(relative_path, text), ...]``.

    Deterministic: repeated calls with the same profile are identical,
    so a benchmark's debug and no-debug arms read the same bytes.
    """
    cached = _CORPUS_CACHE.get(profile)
    if cached is not None:
        return list(cached)
    rng = random.Random(profile.seed)
    vocabulary = make_vocabulary(rng, profile.vocabulary_size)
    files: List[Tuple[str, str]] = []
    for index in range(profile.n_files):
        directory = f"src/module_{index % 16:02d}"
        path = f"{directory}/file_{index:04d}.src"
        file_seed = rng.randrange(2 ** 31)
        files.append((path, generate_file_text(
            file_seed, profile.lines_per_file, vocabulary)))
    _CORPUS_CACHE[profile] = files
    return list(files)


def write_corpus(profile: CorpusProfile, root: str) -> List[str]:
    """Materialise the tree under *root*; returns absolute file paths."""
    paths = []
    for rel_path, text in generate_corpus(profile):
        full = os.path.join(root, profile.name, rel_path)
        os.makedirs(os.path.dirname(full), exist_ok=True)
        with open(full, "w", encoding="utf-8") as fh:
            fh.write(text)
        paths.append(full)
    return paths


def corpus_stats(profile: CorpusProfile) -> Dict[str, int]:
    """Volume numbers for EXPERIMENTS.md and benchmark reports."""
    files = generate_corpus(profile)
    total_bytes = sum(len(text) for _, text in files)
    total_lines = sum(text.count("\n") for _, text in files)
    return {"files": len(files), "bytes": total_bytes,
            "lines": total_lines}

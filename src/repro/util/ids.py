"""Identifier helpers for sessions, views and units of execution.

The paper (section 2) uses *UE* (unit of execution) as the generic term for
a process or a thread.  Dionea needs stable, comparable identifiers for

* debuggee *processes* (one debug server each, one session each), and
* debuggee *threads* within a process (one debug view each).

A :class:`UEId` therefore couples a PID with a thread id.  Thread ids are
only meaningful inside their own process, so equality always compares the
pair.  Session and view ids are small monotonic tokens generated per
client; they survive ``fork`` in the parent but are deliberately
regenerated in the child (paper section 5.3, problem 2: inherited metadata
describes the parent and must be rewritten).
"""

from __future__ import annotations

import itertools
import os
import threading
from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class UEId:
    """Identity of a unit of execution: a (process, thread) pair."""

    pid: int
    tid: int

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"ue:{self.pid}.{self.tid}"

    @property
    def is_process_main(self) -> bool:
        """True when this UE denotes the process itself (tid == 0 sentinel)."""
        return self.tid == 0

    @classmethod
    def current(cls) -> "UEId":
        """The UE of the calling thread."""
        return cls(os.getpid(), threading.get_ident())

    @classmethod
    def process(cls, pid: int | None = None) -> "UEId":
        """A UE denoting a whole process (used for process-level commands)."""
        return cls(os.getpid() if pid is None else pid, 0)


class IdAllocator:
    """Thread-safe monotonic id allocator with a textual prefix.

    Used for session ids (``s1, s2, ...``) and view ids (``v1, v2, ...``).
    A fresh allocator is installed in forked children so child ids never
    collide with ids the parent already handed out *within the child's own
    tables* — the client namespaces ids per connection, so global
    uniqueness is not required.
    """

    def __init__(self, prefix: str):
        self._prefix = prefix
        self._counter = itertools.count(1)
        self._lock = threading.Lock()

    def next(self) -> str:
        with self._lock:
            return f"{self._prefix}{next(self._counter)}"

    def reset(self) -> None:
        """Restart numbering (called from the child-side fork handler)."""
        with self._lock:
            self._counter = itertools.count(1)


def untrace_current_thread() -> None:
    """Opt the calling thread out of interpreter tracing.

    Debugger infrastructure threads (listener, session reader, event
    dispatcher, port-file watcher) are not debuggee UEs: they must never
    park at a breakpoint or a suspend-all sweep, and tracing them would
    only add overhead.  Their frames inside *our* packages are already
    skipped by the engine, but the stdlib frames they call into
    (threading, queue, selectors) are not — so each such thread clears
    its own trace function as its first action.
    """
    import sys
    sys.settrace(None)


def describe_ue(ue: UEId, main_thread_ident: int | None = None) -> str:
    """Human-readable UE label, matching the process/thread tree of Fig. 2."""
    if ue.is_process_main:
        return f"process {ue.pid}"
    if main_thread_ident is not None and ue.tid == main_thread_ident:
        return f"process {ue.pid} / main thread"
    return f"process {ue.pid} / thread {ue.tid}"

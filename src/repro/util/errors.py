"""Exception hierarchy for the repro package.

All exceptions raised by the library derive from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
letting genuine programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ProtocolError(ReproError):
    """A malformed or out-of-sequence message on the debug wire protocol."""


class FramingError(ProtocolError):
    """A frame on the wire could not be decoded (bad length, bad JSON...)."""


class HandshakeError(ProtocolError):
    """Client and server failed to agree during connection setup."""


class SessionError(ReproError):
    """Illegal operation on a debug session (closed, duplicate, ...)."""


class SessionLostError(SessionError):
    """The peer of a debug session died or stopped responding.

    Raised by the client when the heartbeat monitor declares the server
    lost (N missed beats), or when the command channel drops without an
    orderly ``server_exit`` — every in-flight request fails with this
    immediately instead of waiting out its deadline.
    """


class RequestTimeoutError(SessionError):
    """One request exceeded its deadline; the session itself may live on.

    Distinct from :class:`SessionLostError`: a single slow command (a
    frozen reactor, a wedged handler) times out per-request, while the
    heartbeat decides whether the whole session is gone.
    """


class ViewError(SessionError):
    """Illegal operation on a debug view (unknown UE, inactive view, ...)."""


class BreakpointError(ReproError):
    """Invalid breakpoint specification or unknown breakpoint id."""


class TraceError(ReproError):
    """The trace engine was driven into an illegal state."""


class ForkHookError(ReproError):
    """A fork handler could not be registered or executed."""


class SyncObjectError(ReproError):
    """Failure while taking or releasing ownership of a sync object."""


class RendezvousError(ReproError):
    """The port-file rendezvous between child and client failed."""


class DeadlockDetected(ReproError):
    """Raised (or reported) when the wait-for graph contains a cycle.

    Carries the cycle and the source locations of the blocked UEs so the
    client can display *the exact place where the deadlock occurred*
    (paper section 6.2, figure 7).
    """

    def __init__(self, cycle, locations=None):
        self.cycle = list(cycle)
        self.locations = dict(locations or {})
        desc = " -> ".join(str(node) for node in self.cycle)
        super().__init__(f"deadlock detected: {desc}")


class QueueClosed(ReproError):
    """Operation on a closed repro.mp queue."""


class PoolError(ReproError):
    """Worker-pool failure (worker died, pool closed, ...)."""


class CorpusError(ReproError):
    """Invalid corpus profile or generation parameters."""


class CommandError(ReproError):
    """A debug command could not be parsed or executed."""

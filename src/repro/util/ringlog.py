"""Low-interference in-memory ring logger.

Paper section 3 warns that printf-debugging concurrent programs *"may
introduce more errors and hide the real problems"* because logging streams
take locks and perturb timing.  The debugger itself must not fall into the
same trap: diagnostics emitted from inside trace callbacks or fork
handlers cannot go through the ``logging`` module (whose handlers lock,
allocate and do I/O).

:class:`RingLog` appends preformatted records into a fixed-size ring under
a single short critical section — no I/O, no formatting of user objects on
the hot path (callers pass ready strings), bounded memory.  Records can be
drained later, outside any callback, for inspection or test assertions.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class LogRecord:
    """One ring entry, stamped with a wall + monotonic clock **pair**.

    ``timestamp`` (wall clock) alone is unusable for merging records
    across processes: it can step backwards under NTP slew and two
    processes' wall clocks need not agree.  ``mono`` never goes
    backwards within a process, so exporters align records via a
    per-process anchor pair and only trust the wall clock for the
    anchor instant (see repro.obs.export).
    """

    seq: int
    timestamp: float  # wall clock (time.time())
    mono: float       # monotonic clock (time.monotonic())
    pid: int
    tid: int
    category: str
    message: str

    def format(self) -> str:
        return (f"[{self.seq:06d} {self.mono:.6f} "
                f"{self.pid}.{self.tid} {self.category}] {self.message}")

    def to_dict(self) -> dict:
        """JSON-ready shape used by the `telemetry` command / exporter."""
        return {"seq": self.seq, "timestamp": self.timestamp,
                "mono": self.mono, "pid": self.pid, "tid": self.tid,
                "category": self.category, "message": self.message}


class RingLog:
    """Fixed-capacity, thread-safe, allocation-light event log."""

    def __init__(self, capacity: int = 4096):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        self._records: List[Optional[LogRecord]] = [None] * capacity
        self._next_seq = 0
        self._lock = threading.Lock()

    @property
    def capacity(self) -> int:
        return self._capacity

    def emit(self, category: str, message: str) -> None:
        record = LogRecord(
            seq=0,  # patched under the lock
            timestamp=time.time(),
            mono=time.monotonic(),
            pid=os.getpid(),
            tid=threading.get_ident(),
            category=category,
            message=message,
        )
        with self._lock:
            seq = self._next_seq
            self._next_seq += 1
            object.__setattr__(record, "seq", seq)
            self._records[seq % self._capacity] = record

    def snapshot(self) -> List[LogRecord]:
        """All retained records, oldest first."""
        with self._lock:
            total = self._next_seq
            start = max(0, total - self._capacity)
            out = []
            for seq in range(start, total):
                record = self._records[seq % self._capacity]
                if record is not None:
                    out.append(record)
            return out

    def drain(self) -> List[LogRecord]:
        """Snapshot and clear."""
        with self._lock:
            total = self._next_seq
            start = max(0, total - self._capacity)
            out = [self._records[s % self._capacity]
                   for s in range(start, total)]
            self._records = [None] * self._capacity
            self._next_seq = 0
            return [r for r in out if r is not None]

    @property
    def dropped(self) -> int:
        """How many records were overwritten before being read."""
        with self._lock:
            return max(0, self._next_seq - self._capacity)

    def reset_after_fork(self) -> None:
        """Child-side fork handler hook: start the child with a clean log.

        Inherited records describe the parent; keeping them would be
        exactly the stale-metadata problem of paper Fig. 4.  Fresh lock,
        assignments only: the inherited lock may have been held by a
        parent thread mid-append at the fork moment, and the
        single-threaded child would block on it forever.
        """
        self._lock = threading.Lock()
        self._records = [None] * self._capacity
        self._next_seq = 0


#: Process-global diagnostic log used by the debugger internals.  Children
#: clear it in their fork handler (see repro.core.handlers).
GLOBAL_LOG = RingLog()


def debug_event(category: str, message: str) -> None:
    """Record one diagnostic event on the global ring."""
    GLOBAL_LOG.emit(category, message)

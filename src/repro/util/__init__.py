"""Shared infrastructure: framing, ids, rendezvous, rendering, ring log."""

from .errors import (
    BreakpointError,
    CommandError,
    CorpusError,
    DeadlockDetected,
    ForkHookError,
    FramingError,
    HandshakeError,
    PoolError,
    ProtocolError,
    QueueClosed,
    RendezvousError,
    ReproError,
    SessionError,
    SyncObjectError,
    TraceError,
    ViewError,
)
from .framing import (
    MAX_FRAME_BYTES,
    FrameDecoder,
    decode_payload,
    encode_frame,
    recv_frame,
    send_frame,
)
from .ids import IdAllocator, UEId, describe_ue
from .portfile import PortFile, PortFileWatcher, PortRecord, default_portfile_path
from .ringlog import GLOBAL_LOG, LogRecord, RingLog, debug_event
from .serde import render_namespace, render_value

__all__ = [
    "BreakpointError", "CommandError", "CorpusError", "DeadlockDetected",
    "ForkHookError", "FramingError", "HandshakeError", "PoolError",
    "ProtocolError", "QueueClosed", "RendezvousError", "ReproError",
    "SessionError", "SyncObjectError", "TraceError", "ViewError",
    "MAX_FRAME_BYTES", "FrameDecoder", "decode_payload", "encode_frame",
    "recv_frame", "send_frame",
    "IdAllocator", "UEId", "describe_ue",
    "PortFile", "PortFileWatcher", "PortRecord", "default_portfile_path",
    "GLOBAL_LOG", "LogRecord", "RingLog", "debug_event",
    "render_namespace", "render_value",
]

"""Temporary-file port rendezvous between forked children and the client.

Paper section 5.3, problem 3: a freshly forked child inherits its parent's
sockets; talking through them would interleave two processes' traffic on
one session.  *"Dionea's fork handlers use a temporary file, where the port
number of the most recently created process is saved."*  The client watches
that file and dials the new debug server.

The file lives next to a lock file and is written atomically
(write-to-temp + ``os.rename``) so a watcher never observes a half-written
record.  Each record is one JSON line; the file is append-only within one
debug run, which doubles as an audit trail of every fork.
"""

from __future__ import annotations

import contextlib
import errno
import fcntl
import json
import os
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .errors import RendezvousError


@dataclass(frozen=True)
class PortRecord:
    """One child announcement: who forked, who was born, where to dial."""

    pid: int
    parent_pid: int
    host: str
    port: int
    created_at: float

    def to_json(self) -> str:
        return json.dumps({
            "pid": self.pid,
            "parent_pid": self.parent_pid,
            "host": self.host,
            "port": self.port,
            "created_at": self.created_at,
        }, separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str) -> "PortRecord":
        try:
            raw = json.loads(line)
            return cls(pid=int(raw["pid"]), parent_pid=int(raw["parent_pid"]),
                       host=str(raw["host"]), port=int(raw["port"]),
                       created_at=float(raw["created_at"]))
        except (ValueError, KeyError, TypeError) as exc:
            raise RendezvousError(f"corrupt port record: {line!r}") from exc


def default_portfile_path(run_id: str) -> str:
    """Canonical per-run port file location under the system temp dir."""
    return os.path.join(tempfile.gettempdir(), f"dionea-ports-{run_id}.jsonl")


def pid_alive(pid: int) -> bool:
    """Liveness probe: does *pid* exist right now?

    ``kill(pid, 0)`` performs permission checks but sends nothing;
    EPERM therefore means "exists, not ours" — alive.
    """
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except PermissionError:
        return True
    except OSError:
        return False
    return True


class PortFile:
    """Writer/reader for the rendezvous file.

    Writing happens in the *child-side fork handler* (one record per fork);
    reading happens in the client's watcher thread.  Both sides may live in
    different processes, so coordination goes through the filesystem only.
    """

    def __init__(self, path: str):
        self.path = path
        self._write_lock = threading.Lock()

    @contextlib.contextmanager
    def _flocked(self):
        """Cross-process mutual exclusion between appenders and the GC.

        ``O_APPEND`` alone keeps concurrent *appends* intact, but the
        liveness GC rewrites the whole file — an append landing between
        its read and its rename would be silently dropped.  A sidecar
        ``flock`` file serialises the two; appenders hold it only for
        one ``write(2)``.
        """
        lock_fd = os.open(f"{self.path}.lock",
                          os.O_WRONLY | os.O_CREAT, 0o600)
        try:
            fcntl.flock(lock_fd, fcntl.LOCK_EX)
            yield
        finally:
            os.close(lock_fd)  # closing releases the flock

    # -- writer side (debug server, child fork handler) --------------------

    def announce(self, record: PortRecord) -> None:
        """Append one record atomically.

        Append via a rename of the whole file would race with concurrent
        children, so we rely on POSIX ``O_APPEND`` atomicity for writes
        below PIPE_BUF — every record is far smaller than that.
        """
        line = record.to_json() + "\n"
        data = line.encode("utf-8")
        if len(data) > 4096:
            raise RendezvousError("port record unexpectedly large")
        with self._write_lock, self._flocked():
            fd = os.open(self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT,
                         0o600)
            try:
                os.write(fd, data)
            finally:
                os.close(fd)

    # -- reader side (client watcher) --------------------------------------

    def read_all(self) -> List[PortRecord]:
        """Read every record currently in the file (possibly empty)."""
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                lines = fh.read().splitlines()
        except FileNotFoundError:
            return []
        records = []
        for line in lines:
            if line.strip():
                records.append(PortRecord.from_json(line))
        return records

    def remove(self) -> None:
        try:
            os.unlink(self.path)
        except OSError as exc:  # already gone is fine
            if exc.errno != errno.ENOENT:
                raise

    # -- liveness GC --------------------------------------------------------

    def reap_dead(self, min_age: float = 5.0,
                  now: Optional[float] = None) -> List[PortRecord]:
        """Drop records whose pid is dead; returns the reaped records.

        Only records older than *min_age* seconds are candidates: a
        record younger than that can belong to a child between its
        ``announce`` and its first breath (pid visible but the process
        table entry still settling), and reaping it would orphan a
        live debuggee.

        The rewrite is atomic (temp file + ``rename``) and holds the
        sidecar ``flock`` so a concurrent child's append can never land
        between the read and the rename and be lost.
        """
        now = time.time() if now is None else now
        with self._write_lock, self._flocked():
            records = self.read_all()
            keep: List[PortRecord] = []
            reaped: List[PortRecord] = []
            for record in records:
                if (now - record.created_at >= min_age
                        and not pid_alive(record.pid)):
                    reaped.append(record)
                else:
                    keep.append(record)
            if not reaped:
                return []
            tmp = f"{self.path}.gc.{os.getpid()}"
            with open(tmp, "w", encoding="utf-8") as fh:
                for record in keep:
                    fh.write(record.to_json() + "\n")
            os.replace(tmp, self.path)
        return reaped


@dataclass
class PortFileWatcher:
    """Polls a :class:`PortFile` and fires a callback for each new record.

    A tiny poll loop instead of inotify keeps the watcher portable and
    dependency-free; the poll interval bounds attach latency for new
    children (the paper's GUI shows children appearing in the process
    tree shortly after fork).
    """

    portfile: PortFile
    on_record: Callable[[PortRecord], None]
    poll_interval: float = 0.02
    #: re-dialing a dead pid's record wastes a connect timeout per poll;
    #: with gc_interval > 0, dead pids are never dialed and their records
    #: are reaped every `gc_interval` seconds.  Off (0) by default at
    #: this layer; :meth:`DebugClient.watch_portfile` turns it on.
    gc_interval: float = 0.0
    _seen: Dict[int, PortRecord] = field(default_factory=dict)
    _thread: Optional[threading.Thread] = None
    _stop: threading.Event = field(default_factory=threading.Event)
    _next_gc: float = 0.0
    #: external timer source (``scheduler(delay, fn)``) when the poll is
    #: driven off a reactor timer wheel instead of a dedicated thread
    _scheduler: Optional[Callable[[float, Callable[[], None]], object]] = None

    def poll_once(self) -> List[PortRecord]:
        """Process any unseen records; returns the new ones (for tests)."""
        fresh: List[PortRecord] = []
        for record in self.portfile.read_all():
            key = record.pid
            if key in self._seen:
                continue
            if self.gc_interval > 0 and not pid_alive(record.pid):
                # Announced, then died before we dialed: never attach.
                # Mark seen so the pid is not re-probed every poll; the
                # periodic reap below erases the record itself.
                self._seen[key] = record
                continue
            self._seen[key] = record
            fresh.append(record)
        for record in fresh:
            self.on_record(record)
        if self.gc_interval > 0:
            now = time.monotonic()
            if now >= self._next_gc:
                self._next_gc = now + self.gc_interval
                for reaped in self.portfile.reap_dead():
                    # Forget reaped pids: if the pid is ever recycled by
                    # a *new* debuggee, its fresh record must be dialed.
                    self._seen.pop(reaped.pid, None)
        return fresh

    def start(self, scheduler: Optional[
            Callable[[float, Callable[[], None]], object]] = None) -> None:
        """Begin polling.

        Without *scheduler*, a dedicated daemon thread polls (the
        standalone mode).  With one — any ``scheduler(delay, fn)`` that
        runs ``fn`` after *delay* seconds, e.g. the client reactor's
        timer wheel — the watcher owns NO thread: each tick polls once
        and re-schedules itself, so fleet-scale clients pay zero threads
        for auto-attach.
        """
        if self._thread is not None or self._scheduler is not None:
            raise RendezvousError("watcher already started")
        self._stop.clear()
        if scheduler is not None:
            self._scheduler = scheduler
            scheduler(self.poll_interval, self._scheduled_tick)
            return
        self._thread = threading.Thread(
            target=self._run, name="dionea-portfile-watcher", daemon=True)
        self._thread.start()

    def _scheduled_tick(self) -> None:
        """One reactor-driven poll; re-arms itself until stopped."""
        if self._stop.is_set():
            return
        try:
            self.poll_once()
        except RendezvousError:
            pass  # torn read: heals next pass, like the thread mode
        scheduler = self._scheduler
        if scheduler is not None and not self._stop.is_set():
            scheduler(self.poll_interval, self._scheduled_tick)

    def _run(self) -> None:
        from .ids import untrace_current_thread
        untrace_current_thread()  # infra thread: never a debuggee UE
        while not self._stop.is_set():
            try:
                self.poll_once()
            except RendezvousError:
                # A corrupt record must not kill the watcher: skip this
                # poll; the writer only ever appends whole lines, so a
                # torn read heals on the next pass.
                pass
            self._stop.wait(self.poll_interval)

    def stop(self, timeout: float = 2.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None
        self._scheduler = None

    def wait_for_pid(self, pid: int, timeout: float = 5.0) -> PortRecord:
        """Block until a record for *pid* appears (tests and CLI attach)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if pid in self._seen:
                return self._seen[pid]
            for record in self.portfile.read_all():
                self._seen.setdefault(record.pid, record)
            if pid in self._seen:
                return self._seen[pid]
            time.sleep(self.poll_interval)
        raise RendezvousError(f"no port record for pid {pid} "
                              f"within {timeout:.1f}s")

"""Temporary-file port rendezvous between forked children and the client.

Paper section 5.3, problem 3: a freshly forked child inherits its parent's
sockets; talking through them would interleave two processes' traffic on
one session.  *"Dionea's fork handlers use a temporary file, where the port
number of the most recently created process is saved."*  The client watches
that file and dials the new debug server.

The file lives next to a lock file and is written atomically
(write-to-temp + ``os.rename``) so a watcher never observes a half-written
record.  Each record is one JSON line; the file is append-only within one
debug run, which doubles as an audit trail of every fork.
"""

from __future__ import annotations

import contextlib
import errno
import fcntl
import json
import os
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .errors import RendezvousError


#: record states: a ``live`` record is a dialable rendezvous; a
#: ``tombstone`` announces that the debugger LEFT this pid (detach,
#: exec-after-fork, daemonize hand-off) — the pid may well still be
#: alive, but there is nothing to dial there any more.
STATE_LIVE = "live"
STATE_TOMBSTONE = "tombstone"


@dataclass(frozen=True)
class PortRecord:
    """One child announcement: who forked, who was born, where to dial."""

    pid: int
    parent_pid: int
    host: str
    port: int
    created_at: float
    state: str = STATE_LIVE
    reason: Optional[str] = None

    @property
    def tombstoned(self) -> bool:
        return self.state == STATE_TOMBSTONE

    def to_json(self) -> str:
        raw = {
            "pid": self.pid,
            "parent_pid": self.parent_pid,
            "host": self.host,
            "port": self.port,
            "created_at": self.created_at,
        }
        if self.state != STATE_LIVE:
            # Serialised only when non-default so pre-tombstone readers
            # (and recorded port files) keep parsing unchanged.
            raw["state"] = self.state
            if self.reason is not None:
                raw["reason"] = self.reason
        return json.dumps(raw, separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str) -> "PortRecord":
        try:
            raw = json.loads(line)
            return cls(pid=int(raw["pid"]), parent_pid=int(raw["parent_pid"]),
                       host=str(raw["host"]), port=int(raw["port"]),
                       created_at=float(raw["created_at"]),
                       state=str(raw.get("state", STATE_LIVE)),
                       reason=raw.get("reason"))
        except (ValueError, KeyError, TypeError) as exc:
            raise RendezvousError(f"corrupt port record: {line!r}") from exc


def default_portfile_path(run_id: str) -> str:
    """Canonical per-run port file location under the system temp dir."""
    return os.path.join(tempfile.gettempdir(), f"dionea-ports-{run_id}.jsonl")


def pid_alive(pid: int) -> bool:
    """Liveness probe: does *pid* exist right now?

    ``kill(pid, 0)`` performs permission checks but sends nothing;
    EPERM therefore means "exists, not ours" — alive.
    """
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except PermissionError:
        return True
    except OSError:
        return False
    return True


class PortFile:
    """Writer/reader for the rendezvous file.

    Writing happens in the *child-side fork handler* (one record per fork);
    reading happens in the client's watcher thread.  Both sides may live in
    different processes, so coordination goes through the filesystem only.
    """

    def __init__(self, path: str):
        self.path = path
        self._write_lock = threading.Lock()
        #: consecutive failed port probes per (pid, port) — an exec'd
        #: debuggee keeps its pid alive while its debug port is gone,
        #: so pid liveness alone can never reap it; two failed probes
        #: (not one: a probe can race a listener restart) do.
        self._probe_strikes: Dict[tuple, int] = {}

    @contextlib.contextmanager
    def _flocked(self):
        """Cross-process mutual exclusion between appenders and the GC.

        ``O_APPEND`` alone keeps concurrent *appends* intact, but the
        liveness GC rewrites the whole file — an append landing between
        its read and its rename would be silently dropped.  A sidecar
        ``flock`` file serialises the two; appenders hold it only for
        one ``write(2)``.
        """
        lock_fd = os.open(f"{self.path}.lock",
                          os.O_WRONLY | os.O_CREAT, 0o600)
        try:
            fcntl.flock(lock_fd, fcntl.LOCK_EX)
            yield
        finally:
            os.close(lock_fd)  # closing releases the flock

    # -- writer side (debug server, child fork handler) --------------------

    def announce(self, record: PortRecord) -> None:
        """Append one record atomically.

        Append via a rename of the whole file would race with concurrent
        children, so we rely on POSIX ``O_APPEND`` atomicity for writes
        below PIPE_BUF — every record is far smaller than that.
        """
        line = record.to_json() + "\n"
        data = line.encode("utf-8")
        if len(data) > 4096:
            raise RendezvousError("port record unexpectedly large")
        with self._write_lock, self._flocked():
            fd = os.open(self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT,
                         0o600)
            try:
                os.write(fd, data)
            finally:
                os.close(fd)

    def tombstone(self, pid: int, host: str = "", port: int = 0,
                  reason: str = "detached") -> None:
        """Append a tombstone: the debugger has left *pid* for good.

        Written on degraded-mode detach and immediately before an
        ``exec``/daemonize hand-off, so the client's watcher never dials
        a rendezvous whose process outlived its debugger.  Appending
        (not rewriting) keeps the fork audit trail and stays atomic
        under ``O_APPEND`` like any announce.
        """
        self.announce(PortRecord(
            pid=pid, parent_pid=0, host=host, port=port,
            created_at=time.time(), state=STATE_TOMBSTONE, reason=reason))

    # -- reader side (client watcher) --------------------------------------

    def read_all(self) -> List[PortRecord]:
        """Read every record currently in the file (possibly empty)."""
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                lines = fh.read().splitlines()
        except FileNotFoundError:
            return []
        records = []
        for line in lines:
            if line.strip():
                records.append(PortRecord.from_json(line))
        return records

    def remove(self) -> None:
        try:
            os.unlink(self.path)
        except OSError as exc:  # already gone is fine
            if exc.errno != errno.ENOENT:
                raise

    # -- liveness GC --------------------------------------------------------

    def _port_dead(self, record: PortRecord) -> bool:
        """Probe the record's port; True after two consecutive failures.

        The strike counter absorbs the one legitimate transient — a
        watchdog healing the listener onto a new port between probes —
        while still reaping exec'd debuggees (pid alive, port gone)
        within two GC passes.
        """
        import socket
        key = (record.pid, record.port)
        try:
            socket.create_connection((record.host, record.port),
                                     timeout=0.2).close()
        except OSError:
            strikes = self._probe_strikes.get(key, 0) + 1
            self._probe_strikes[key] = strikes
            return strikes >= 2
        self._probe_strikes.pop(key, None)
        return False

    def reap_dead(self, min_age: float = 5.0,
                  now: Optional[float] = None,
                  probe_ports: bool = False) -> List[PortRecord]:
        """Drop dead records; returns the reaped records.

        Three kinds of corpse are reaped:

        * **dead pid** — the classic case (PR 4), still gated on
          *min_age* so a child between announce and first breath is
          never orphaned;
        * **tombstoned pid** — the debugger wrote a tombstone (detach /
          exec / daemonize); both the tombstone and every record it
          covers go at once, regardless of age or pid liveness;
        * **exec'd pid** (``probe_ports=True``) — pid alive but the
          debug port refuses twice in a row: the process exec'd away
          from under its debugger without a tombstone (SIGKILL between
          tombstone and exec, third-party exec).

        The rewrite is atomic (temp file + ``rename``) and holds the
        sidecar ``flock`` so a concurrent child's append can never land
        between the read and the rename and be lost.
        """
        now = time.time() if now is None else now
        # Probe OUTSIDE the flock: a fork handler appending its announce
        # must never queue behind 0.2s-per-corpse connect timeouts.  The
        # lock-held pass below drops only identities condemned here, so
        # an append racing the probe pass survives untouched.
        condemned: set = set()
        for record in self.read_all():
            if record.tombstoned:
                condemned.add(record.pid)
                continue
            aged = now - record.created_at >= min_age
            if aged and not pid_alive(record.pid):
                condemned.add(record.pid)
            elif aged and probe_ports and self._port_dead(record):
                condemned.add(record.pid)
        if not condemned:
            return []
        with self._write_lock, self._flocked():
            records = self.read_all()
            keep = [r for r in records if r.pid not in condemned]
            reaped = [r for r in records if r.pid in condemned]
            if not reaped:
                return []
            tmp = f"{self.path}.gc.{os.getpid()}"
            with open(tmp, "w", encoding="utf-8") as fh:
                for record in keep:
                    fh.write(record.to_json() + "\n")
            os.replace(tmp, self.path)
        return reaped


@dataclass
class PortFileWatcher:
    """Polls a :class:`PortFile` and fires a callback for each new record.

    A tiny poll loop instead of inotify keeps the watcher portable and
    dependency-free; the poll interval bounds attach latency for new
    children (the paper's GUI shows children appearing in the process
    tree shortly after fork).
    """

    portfile: PortFile
    on_record: Callable[[PortRecord], None]
    poll_interval: float = 0.02
    #: re-dialing a dead pid's record wastes a connect timeout per poll;
    #: with gc_interval > 0, dead pids are never dialed and their records
    #: are reaped every `gc_interval` seconds.  Off (0) by default at
    #: this layer; :meth:`DebugClient.watch_portfile` turns it on.
    gc_interval: float = 0.0
    _seen: Dict[int, PortRecord] = field(default_factory=dict)
    _thread: Optional[threading.Thread] = None
    _stop: threading.Event = field(default_factory=threading.Event)
    _next_gc: float = 0.0
    #: external timer source (``scheduler(delay, fn)``) when the poll is
    #: driven off a reactor timer wheel instead of a dedicated thread
    _scheduler: Optional[Callable[[float, Callable[[], None]], object]] = None

    def poll_once(self) -> List[PortRecord]:
        """Process any unseen records; returns the new ones (for tests)."""
        records = self.portfile.read_all()
        # Tombstones first, regardless of file order: a watcher whose
        # first poll already sees announce + tombstone (late attach to
        # an exec'd/daemonized debuggee) must not dial the dead port.
        for record in records:
            if not record.tombstoned:
                continue
            prev = self._seen.get(record.pid)
            # The debugger left this pid (detach/exec/daemonize):
            # nothing to dial — the tombstone masks any OLDER live
            # record, but not a later re-announce (recycled pid).
            if prev is None or prev.created_at <= record.created_at:
                self._seen[record.pid] = record
        fresh: List[PortRecord] = []
        for record in records:
            if record.tombstoned:
                continue
            key = record.pid
            prev = self._seen.get(key)
            if prev is not None:
                if record.created_at <= prev.created_at:
                    continue  # older than what we already acted on
                if not prev.tombstoned and record.port == prev.port:
                    continue  # duplicate announce of known coordinates
                # Newer record with new coordinates: the server healed
                # its listener onto a fresh port (watchdog), or a
                # recycled/tombstoned pid announced afresh — the old
                # coordinates are dead, dial the new ones.
            if self.gc_interval > 0 and not pid_alive(record.pid):
                # Announced, then died before we dialed: never attach.
                # Mark seen so the pid is not re-probed every poll; the
                # periodic reap below erases the record itself.
                self._seen[key] = record
                continue
            self._seen[key] = record
            fresh.append(record)
        for record in fresh:
            self.on_record(record)
        if self.gc_interval > 0:
            now = time.monotonic()
            if now >= self._next_gc:
                self._next_gc = now + self.gc_interval
                for reaped in self.portfile.reap_dead(probe_ports=True):
                    # Forget reaped pids: if the pid is ever recycled by
                    # a *new* debuggee, its fresh record must be dialed.
                    self._seen.pop(reaped.pid, None)
        return fresh

    def start(self, scheduler: Optional[
            Callable[[float, Callable[[], None]], object]] = None) -> None:
        """Begin polling.

        Without *scheduler*, a dedicated daemon thread polls (the
        standalone mode).  With one — any ``scheduler(delay, fn)`` that
        runs ``fn`` after *delay* seconds, e.g. the client reactor's
        timer wheel — the watcher owns NO thread: each tick polls once
        and re-schedules itself, so fleet-scale clients pay zero threads
        for auto-attach.
        """
        if self._thread is not None or self._scheduler is not None:
            raise RendezvousError("watcher already started")
        self._stop.clear()
        if scheduler is not None:
            self._scheduler = scheduler
            scheduler(self.poll_interval, self._scheduled_tick)
            return
        self._thread = threading.Thread(
            target=self._run, name="dionea-portfile-watcher", daemon=True)
        self._thread.start()

    def _scheduled_tick(self) -> None:
        """One reactor-driven poll; re-arms itself until stopped."""
        if self._stop.is_set():
            return
        try:
            self.poll_once()
        except RendezvousError:
            pass  # torn read: heals next pass, like the thread mode
        scheduler = self._scheduler
        if scheduler is not None and not self._stop.is_set():
            scheduler(self.poll_interval, self._scheduled_tick)

    def _run(self) -> None:
        from .ids import untrace_current_thread
        untrace_current_thread()  # infra thread: never a debuggee UE
        while not self._stop.is_set():
            try:
                self.poll_once()
            except RendezvousError:
                # A corrupt record must not kill the watcher: skip this
                # poll; the writer only ever appends whole lines, so a
                # torn read heals on the next pass.
                pass
            self._stop.wait(self.poll_interval)

    def stop(self, timeout: float = 2.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None
        self._scheduler = None

    def wait_for_pid(self, pid: int, timeout: float = 5.0) -> PortRecord:
        """Block until a record for *pid* appears (tests and CLI attach)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if pid in self._seen:
                return self._seen[pid]
            for record in self.portfile.read_all():
                self._seen.setdefault(record.pid, record)
            if pid in self._seen:
                return self._seen[pid]
            time.sleep(self.poll_interval)
        raise RendezvousError(f"no port record for pid {pid} "
                              f"within {timeout:.1f}s")

"""Temporary-file port rendezvous between forked children and the client.

Paper section 5.3, problem 3: a freshly forked child inherits its parent's
sockets; talking through them would interleave two processes' traffic on
one session.  *"Dionea's fork handlers use a temporary file, where the port
number of the most recently created process is saved."*  The client watches
that file and dials the new debug server.

The file lives next to a lock file and is written atomically
(write-to-temp + ``os.rename``) so a watcher never observes a half-written
record.  Each record is one JSON line; the file is append-only within one
debug run, which doubles as an audit trail of every fork.
"""

from __future__ import annotations

import errno
import json
import os
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .errors import RendezvousError


@dataclass(frozen=True)
class PortRecord:
    """One child announcement: who forked, who was born, where to dial."""

    pid: int
    parent_pid: int
    host: str
    port: int
    created_at: float

    def to_json(self) -> str:
        return json.dumps({
            "pid": self.pid,
            "parent_pid": self.parent_pid,
            "host": self.host,
            "port": self.port,
            "created_at": self.created_at,
        }, separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str) -> "PortRecord":
        try:
            raw = json.loads(line)
            return cls(pid=int(raw["pid"]), parent_pid=int(raw["parent_pid"]),
                       host=str(raw["host"]), port=int(raw["port"]),
                       created_at=float(raw["created_at"]))
        except (ValueError, KeyError, TypeError) as exc:
            raise RendezvousError(f"corrupt port record: {line!r}") from exc


def default_portfile_path(run_id: str) -> str:
    """Canonical per-run port file location under the system temp dir."""
    return os.path.join(tempfile.gettempdir(), f"dionea-ports-{run_id}.jsonl")


class PortFile:
    """Writer/reader for the rendezvous file.

    Writing happens in the *child-side fork handler* (one record per fork);
    reading happens in the client's watcher thread.  Both sides may live in
    different processes, so coordination goes through the filesystem only.
    """

    def __init__(self, path: str):
        self.path = path
        self._write_lock = threading.Lock()

    # -- writer side (debug server, child fork handler) --------------------

    def announce(self, record: PortRecord) -> None:
        """Append one record atomically.

        Append via a rename of the whole file would race with concurrent
        children, so we rely on POSIX ``O_APPEND`` atomicity for writes
        below PIPE_BUF — every record is far smaller than that.
        """
        line = record.to_json() + "\n"
        data = line.encode("utf-8")
        if len(data) > 4096:
            raise RendezvousError("port record unexpectedly large")
        with self._write_lock:
            fd = os.open(self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT,
                         0o600)
            try:
                os.write(fd, data)
            finally:
                os.close(fd)

    # -- reader side (client watcher) --------------------------------------

    def read_all(self) -> List[PortRecord]:
        """Read every record currently in the file (possibly empty)."""
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                lines = fh.read().splitlines()
        except FileNotFoundError:
            return []
        records = []
        for line in lines:
            if line.strip():
                records.append(PortRecord.from_json(line))
        return records

    def remove(self) -> None:
        try:
            os.unlink(self.path)
        except OSError as exc:  # already gone is fine
            if exc.errno != errno.ENOENT:
                raise


@dataclass
class PortFileWatcher:
    """Polls a :class:`PortFile` and fires a callback for each new record.

    A tiny poll loop instead of inotify keeps the watcher portable and
    dependency-free; the poll interval bounds attach latency for new
    children (the paper's GUI shows children appearing in the process
    tree shortly after fork).
    """

    portfile: PortFile
    on_record: Callable[[PortRecord], None]
    poll_interval: float = 0.02
    _seen: Dict[int, PortRecord] = field(default_factory=dict)
    _thread: Optional[threading.Thread] = None
    _stop: threading.Event = field(default_factory=threading.Event)

    def poll_once(self) -> List[PortRecord]:
        """Process any unseen records; returns the new ones (for tests)."""
        fresh: List[PortRecord] = []
        for record in self.portfile.read_all():
            key = record.pid
            if key in self._seen:
                continue
            self._seen[key] = record
            fresh.append(record)
        for record in fresh:
            self.on_record(record)
        return fresh

    def start(self) -> None:
        if self._thread is not None:
            raise RendezvousError("watcher already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="dionea-portfile-watcher", daemon=True)
        self._thread.start()

    def _run(self) -> None:
        from .ids import untrace_current_thread
        untrace_current_thread()  # infra thread: never a debuggee UE
        while not self._stop.is_set():
            try:
                self.poll_once()
            except RendezvousError:
                # A corrupt record must not kill the watcher: skip this
                # poll; the writer only ever appends whole lines, so a
                # torn read heals on the next pass.
                pass
            self._stop.wait(self.poll_interval)

    def stop(self, timeout: float = 2.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    def wait_for_pid(self, pid: int, timeout: float = 5.0) -> PortRecord:
        """Block until a record for *pid* appears (tests and CLI attach)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if pid in self._seen:
                return self._seen[pid]
            for record in self.portfile.read_all():
                self._seen.setdefault(record.pid, record)
            if pid in self._seen:
                return self._seen[pid]
            time.sleep(self.poll_interval)
        raise RendezvousError(f"no port record for pid {pid} "
                              f"within {timeout:.1f}s")

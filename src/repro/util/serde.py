"""Safe rendering of debuggee values for the client's Variables view.

The Dionea GUI (paper Fig. 2) shows *variables and their values* below the
source view.  Values live in the debuggee; the client only ever sees a
rendered form.  Rendering must therefore be

* **safe** — never call arbitrary ``__repr__`` deeper than a bounded depth,
  never serialize unbounded containers, never raise out of the trace
  callback (a broken repr in the debuggee must not kill the debugger);
* **lossy but honest** — truncation is explicit (``...`` markers, length
  annotations) so the user can tell a short value from a clipped one.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping

#: Default bounds for rendering.  Kept small: every traced stop may render
#: a whole frame's locals, and the client re-requests on demand.
MAX_DEPTH = 3
MAX_ITEMS = 25
MAX_STRING = 256

_ATOMIC = (int, float, bool, type(None))


def render_value(value: Any, depth: int = MAX_DEPTH,
                 max_items: int = MAX_ITEMS,
                 max_string: int = MAX_STRING) -> str:
    """Render *value* to a bounded, display-ready string."""
    try:
        return _render(value, depth, max_items, max_string)
    except Exception as exc:  # noqa: BLE001 - debuggee repr may do anything
        return f"<unrepresentable: {type(exc).__name__}>"


def _clip(text: str, max_string: int) -> str:
    if len(text) <= max_string:
        return text
    return text[:max_string] + f"... (+{len(text) - max_string} chars)"


def _render(value: Any, depth: int, max_items: int, max_string: int) -> str:
    if isinstance(value, _ATOMIC):
        return repr(value)
    if isinstance(value, (str, bytes, bytearray)):
        return _clip(repr(value), max_string)
    if depth <= 0:
        return f"<{type(value).__name__}>"
    if isinstance(value, (list, tuple, set, frozenset)):
        return _render_sequence(value, depth, max_items, max_string)
    if isinstance(value, Mapping):
        return _render_mapping(value, depth, max_items, max_string)
    # Fall back to the object's own repr, bounded.
    return _clip(repr(value), max_string)


_BRACKETS = {list: "[]", tuple: "()", set: "{}", frozenset: "{}"}


def _render_sequence(value, depth, max_items, max_string) -> str:
    open_, close = _BRACKETS.get(type(value), "[]")
    items = []
    for i, item in enumerate(value):
        if i >= max_items:
            items.append(f"... (+{len(value) - max_items} items)")
            break
        items.append(_render(item, depth - 1, max_items, max_string))
    body = ", ".join(items)
    if isinstance(value, tuple) and len(value) == 1 and len(items) == 1:
        body += ","
    prefix = "" if type(value) in _BRACKETS else type(value).__name__
    return f"{prefix}{open_}{body}{close}"


def _render_mapping(value, depth, max_items, max_string) -> str:
    items = []
    for i, (key, val) in enumerate(value.items()):
        if i >= max_items:
            items.append(f"... (+{len(value) - max_items} items)")
            break
        items.append(
            f"{_render(key, depth - 1, max_items, max_string)}: "
            f"{_render(val, depth - 1, max_items, max_string)}")
    prefix = "" if type(value) is dict else type(value).__name__
    return prefix + "{" + ", ".join(items) + "}"


def render_namespace(namespace: Mapping[str, Any],
                     skip_dunder: bool = True) -> Dict[str, str]:
    """Render a locals/globals mapping into ``{name: rendered}``.

    Dunder names are skipped by default — the Variables view shows user
    state, not interpreter plumbing.
    """
    rendered: Dict[str, str] = {}
    for name in sorted(namespace):
        if skip_dunder and name.startswith("__") and name.endswith("__"):
            continue
        rendered[name] = render_value(namespace[name])
    return rendered

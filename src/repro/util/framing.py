"""Length-prefixed JSON framing for the debug wire protocol.

Dionea's client and servers speak over TCP sockets (paper section 4), so
message boundaries must be explicit.  We use the classic netstring-like
layout::

    +----------+----------------------+
    | 4 bytes  |  payload             |
    | big-end  |  UTF-8 JSON object   |
    | length   |                      |
    +----------+----------------------+

JSON keeps the protocol inspectable and language-neutral (the paper's
Dionea speaks to Ruby *and* Python servers from one client).  Pickle is
deliberately avoided on the control channel: the debugger must never let a
debuggee-controlled byte stream execute code in the client.

Two interfaces are provided:

* :func:`encode_frame` / :class:`FrameDecoder` — sans-io, byte-buffer based,
  usable with ``selectors`` inside the Reactor listener thread;
* :class:`SendBuffer` / :class:`RecvBuffer` — *resumable* non-blocking
  buffers for the client reactor: a partial write or a short read parks
  the remaining bytes and the next ``pump`` call picks up exactly where
  the kernel stopped;
* :func:`send_frame` / :func:`recv_frame` — blocking helpers over a socket
  or any object with ``sendall``/``recv``.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Iterator, List, Optional, Tuple

from .errors import FramingError


def _io_fault(point: str, nbytes: int) -> int:
    """Fault-injection hook (late import: testkit sits above util)."""
    from ..testkit import faults
    return faults.io_fault(point, nbytes)

HEADER = struct.Struct(">I")
#: Refuse frames above this size: a corrupted length prefix must not make
#: the listener allocate gigabytes.
MAX_FRAME_BYTES = 32 * 1024 * 1024


def encode_frame(message: Any) -> bytes:
    """Serialize *message* (a JSON-able object) into one wire frame."""
    try:
        payload = json.dumps(message, separators=(",", ":"),
                             ensure_ascii=False).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise FramingError(f"message is not JSON-serializable: {exc}") from exc
    if len(payload) > MAX_FRAME_BYTES:
        raise FramingError(
            f"frame too large: {len(payload)} > {MAX_FRAME_BYTES}")
    return HEADER.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> Any:
    """Decode one frame payload back into a message object."""
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FramingError(f"bad frame payload: {exc}") from exc


class FrameDecoder:
    """Incremental frame decoder for non-blocking sockets.

    Feed arbitrary byte chunks with :meth:`feed`; collect complete messages
    with :meth:`messages`.  The decoder tolerates frames split across any
    chunk boundary, including inside the 4-byte header.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> None:
        self._buffer.extend(data)

    @property
    def pending_bytes(self) -> int:
        return len(self._buffer)

    def messages(self) -> Iterator[Any]:
        """Yield every complete message currently buffered."""
        while True:
            if len(self._buffer) < HEADER.size:
                return
            (length,) = HEADER.unpack_from(self._buffer, 0)
            if length > MAX_FRAME_BYTES:
                raise FramingError(
                    f"incoming frame too large: {length} > {MAX_FRAME_BYTES}")
            end = HEADER.size + length
            if len(self._buffer) < end:
                return
            payload = bytes(self._buffer[HEADER.size:end])
            del self._buffer[:end]
            yield decode_payload(payload)


class SendBuffer:
    """Resumable non-blocking write buffer for one socket.

    Frames are appended whole (:meth:`append`); :meth:`pump` pushes as
    many bytes as the kernel will take right now and returns ``True``
    once the buffer is fully drained.  A short write leaves the unsent
    tail in place — no byte is ever re-sent or dropped regardless of
    where the kernel cut the write.  Shares the ``net.frame.send``
    injection point with the blocking sender, so the testkit's
    short-write and EINTR schedules exercise the resume path too.
    """

    def __init__(self) -> None:
        self._chunks: List[memoryview] = []
        self._pending = 0

    @property
    def pending_bytes(self) -> int:
        return self._pending

    def __bool__(self) -> bool:
        return self._pending > 0

    def append(self, frame: bytes) -> None:
        """Queue one already-encoded frame for transmission."""
        if frame:
            self._chunks.append(memoryview(frame))
            self._pending += len(frame)

    def append_message(self, message: Any) -> None:
        self.append(encode_frame(message))

    def pump(self, sock) -> bool:
        """Write what the socket will take; True when fully drained.

        ``EAGAIN`` and ``EINTR`` both mean "resume later" — the caller
        (the reactor loop) keeps write interest registered and calls
        again when the selector says the socket is writable.  Raises
        :class:`FramingError` on a peer that closed mid-frame and lets
        other ``OSError``\\ s propagate for the caller's dead-peer
        handling.
        """
        while self._chunks:
            view = self._chunks[0]
            try:
                budget = _io_fault("net.frame.send", len(view))
                sent = sock.send(view[:budget])
            except (BlockingIOError, InterruptedError):
                return False
            if sent == 0:
                raise FramingError("connection closed mid-send")
            self._pending -= sent
            if sent == len(view):
                self._chunks.pop(0)
            else:
                self._chunks[0] = view[sent:]
        return True


class RecvBuffer:
    """Resumable non-blocking read side: socket → complete messages.

    Wraps a :class:`FrameDecoder`; :meth:`pump` reads whatever bytes are
    available right now and returns the complete messages they finish,
    tolerating frames split at any byte boundary across any number of
    pumps.  Shares the ``net.frame.recv`` injection point with the
    blocking reader (short-read and EINTR schedules apply).
    """

    def __init__(self) -> None:
        self._decoder = FrameDecoder()

    @property
    def pending_bytes(self) -> int:
        return self._decoder.pending_bytes

    def pump(self, sock, budget: int = 65536) -> Tuple[List[Any], bool]:
        """Drain readable bytes; returns ``(messages, eof)``.

        ``eof`` is True on orderly close (empty read).  A close landing
        *inside* a frame raises :class:`FramingError`.  ``EAGAIN`` /
        ``EINTR`` end the pump with whatever was decoded so far — the
        selector will re-arm the read.
        """
        messages: List[Any] = []
        while True:
            try:
                allowed = _io_fault("net.frame.recv", budget)
                data = sock.recv(allowed)
            except (BlockingIOError, InterruptedError):
                return messages, False
            if not data:
                if self._decoder.pending_bytes:
                    raise FramingError(
                        f"connection closed mid-frame "
                        f"({self._decoder.pending_bytes} bytes buffered)")
                return messages, True
            self._decoder.feed(data)
            messages.extend(self._decoder.messages())
            if len(data) < allowed:
                # The kernel gave less than asked: the queue is drained
                # for now; returning avoids one guaranteed-EAGAIN call.
                return messages, False


def send_frame(sock, message: Any) -> None:
    """Blocking send of one framed message over *sock*.

    Sent as an explicit short-write loop rather than ``sendall`` so the
    injection point ``net.frame.send`` can split one frame across many
    TCP segments (partial frame delivery) or raise EINTR inside the
    loop; the peer's :class:`FrameDecoder`/:func:`_recv_exact` must
    reassemble regardless of where the cuts land.
    """
    view = memoryview(encode_frame(message))
    while view:
        try:
            budget = _io_fault("net.frame.send", len(view))
            sent = sock.send(view[:budget])
        except InterruptedError:
            continue
        if sent == 0:
            raise FramingError("connection closed mid-send")
        view = view[sent:]


def _recv_exact(sock, n: int) -> Optional[bytes]:
    """Read exactly *n* bytes, or None on clean EOF at a frame boundary.

    Injection point ``net.frame.recv``: clamps the per-call byte budget
    (forcing reassembly of frames delivered one byte at a time) or
    raises EINTR, which is retried here explicitly.
    """
    chunks = bytearray()
    while len(chunks) < n:
        try:
            budget = _io_fault("net.frame.recv", n - len(chunks))
            chunk = sock.recv(budget)
        except InterruptedError:
            continue
        if not chunk:
            if not chunks:
                return None
            raise FramingError(
                f"connection closed mid-frame ({len(chunks)}/{n} bytes)")
        chunks.extend(chunk)
    return bytes(chunks)


def recv_frame(sock) -> Optional[Any]:
    """Blocking receive of one framed message.

    Returns ``None`` on orderly EOF between frames; raises
    :class:`FramingError` if the peer vanishes mid-frame.
    """
    header = _recv_exact(sock, HEADER.size)
    if header is None:
        return None
    (length,) = HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FramingError(
            f"incoming frame too large: {length} > {MAX_FRAME_BYTES}")
    payload = _recv_exact(sock, length) if length else b""
    if payload is None:
        raise FramingError("connection closed between header and payload")
    return decode_payload(payload)

"""Length-prefixed JSON framing for the debug wire protocol.

Dionea's client and servers speak over TCP sockets (paper section 4), so
message boundaries must be explicit.  We use the classic netstring-like
layout::

    +----------+----------------------+
    | 4 bytes  |  payload             |
    | big-end  |  UTF-8 JSON object   |
    | length   |                      |
    +----------+----------------------+

JSON keeps the protocol inspectable and language-neutral (the paper's
Dionea speaks to Ruby *and* Python servers from one client).  Pickle is
deliberately avoided on the control channel: the debugger must never let a
debuggee-controlled byte stream execute code in the client.

Two interfaces are provided:

* :func:`encode_frame` / :class:`FrameDecoder` — sans-io, byte-buffer based,
  usable with ``selectors`` inside the Reactor listener thread;
* :func:`send_frame` / :func:`recv_frame` — blocking helpers over a socket
  or any object with ``sendall``/``recv``.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Iterator, Optional

from .errors import FramingError


def _io_fault(point: str, nbytes: int) -> int:
    """Fault-injection hook (late import: testkit sits above util)."""
    from ..testkit import faults
    return faults.io_fault(point, nbytes)

HEADER = struct.Struct(">I")
#: Refuse frames above this size: a corrupted length prefix must not make
#: the listener allocate gigabytes.
MAX_FRAME_BYTES = 32 * 1024 * 1024


def encode_frame(message: Any) -> bytes:
    """Serialize *message* (a JSON-able object) into one wire frame."""
    try:
        payload = json.dumps(message, separators=(",", ":"),
                             ensure_ascii=False).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise FramingError(f"message is not JSON-serializable: {exc}") from exc
    if len(payload) > MAX_FRAME_BYTES:
        raise FramingError(
            f"frame too large: {len(payload)} > {MAX_FRAME_BYTES}")
    return HEADER.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> Any:
    """Decode one frame payload back into a message object."""
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FramingError(f"bad frame payload: {exc}") from exc


class FrameDecoder:
    """Incremental frame decoder for non-blocking sockets.

    Feed arbitrary byte chunks with :meth:`feed`; collect complete messages
    with :meth:`messages`.  The decoder tolerates frames split across any
    chunk boundary, including inside the 4-byte header.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> None:
        self._buffer.extend(data)

    @property
    def pending_bytes(self) -> int:
        return len(self._buffer)

    def messages(self) -> Iterator[Any]:
        """Yield every complete message currently buffered."""
        while True:
            if len(self._buffer) < HEADER.size:
                return
            (length,) = HEADER.unpack_from(self._buffer, 0)
            if length > MAX_FRAME_BYTES:
                raise FramingError(
                    f"incoming frame too large: {length} > {MAX_FRAME_BYTES}")
            end = HEADER.size + length
            if len(self._buffer) < end:
                return
            payload = bytes(self._buffer[HEADER.size:end])
            del self._buffer[:end]
            yield decode_payload(payload)


def send_frame(sock, message: Any) -> None:
    """Blocking send of one framed message over *sock*.

    Sent as an explicit short-write loop rather than ``sendall`` so the
    injection point ``net.frame.send`` can split one frame across many
    TCP segments (partial frame delivery) or raise EINTR inside the
    loop; the peer's :class:`FrameDecoder`/:func:`_recv_exact` must
    reassemble regardless of where the cuts land.
    """
    view = memoryview(encode_frame(message))
    while view:
        try:
            budget = _io_fault("net.frame.send", len(view))
            sent = sock.send(view[:budget])
        except InterruptedError:
            continue
        if sent == 0:
            raise FramingError("connection closed mid-send")
        view = view[sent:]


def _recv_exact(sock, n: int) -> Optional[bytes]:
    """Read exactly *n* bytes, or None on clean EOF at a frame boundary.

    Injection point ``net.frame.recv``: clamps the per-call byte budget
    (forcing reassembly of frames delivered one byte at a time) or
    raises EINTR, which is retried here explicitly.
    """
    chunks = bytearray()
    while len(chunks) < n:
        try:
            budget = _io_fault("net.frame.recv", n - len(chunks))
            chunk = sock.recv(budget)
        except InterruptedError:
            continue
        if not chunk:
            if not chunks:
                return None
            raise FramingError(
                f"connection closed mid-frame ({len(chunks)}/{n} bytes)")
        chunks.extend(chunk)
    return bytes(chunks)


def recv_frame(sock) -> Optional[Any]:
    """Blocking receive of one framed message.

    Returns ``None`` on orderly EOF between frames; raises
    :class:`FramingError` if the peer vanishes mid-frame.
    """
    header = _recv_exact(sock, HEADER.size)
    if header is None:
        return None
    (length,) = HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FramingError(
            f"incoming frame too large: {length} > {MAX_FRAME_BYTES}")
    payload = _recv_exact(sock, length) if length else b""
    if payload is None:
        raise FramingError("connection closed between header and payload")
    return decode_payload(payload)

"""Causal trace contexts: one trace across threads, forks and the wire.

The paper's fork handlers give the debugger a *tree* of processes; this
module gives the telemetry layer the matching causal spine.  A
:class:`TraceContext` is the classic distributed-tracing triple —
``trace_id`` / ``span_id`` / ``parent_span_id`` — plus the origin pid
and a wall+monotonic clock pair captured when the context was minted,
so a receiver in another process can place the sender's stamp on the
shared timeline without trusting either wall clock alone.

Propagation paths:

* **threads** — a per-thread context stack (:func:`activate` /
  :func:`current`): spans opened while a context is active become its
  children;
* **fork()** — the fork bracket *stages* its own span's context just
  before ``fork(2)`` (:func:`stage_fork`); the child's obs fork handler
  *consumes* it (:func:`consume_pending_fork`) and roots the child's
  new timeline under the parent's in-flight ``fork.bracket`` span,
  recording pid lineage for the exporter's flow edges;
* **the wire** — clients stamp requests with :meth:`TraceContext.
  to_wire`; the server rebuilds the context with :func:`from_wire` and
  parents its command span on the client's request span.  Control verbs
  additionally park their context as the process's *control context*
  (:func:`note_control`) so the next fork bracket — debuggee code
  resumed by that verb — links back to the command that released it.
  That is how a ``continue`` typed in the shell stays causally
  connected to the trace callbacks it triggers in a grandchild.

Hot-path discipline matches the rest of ``repro.obs``: id generation is
one counter increment and one string format; no I/O, no logging, no
locks beyond the GIL (the pending-fork slot is written inside the fork
bracket, where the forking thread is alone by construction).
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional


@dataclass(frozen=True)
class TraceContext:
    """One node in the causal tree: where am I, and who caused me."""

    trace_id: str
    span_id: str
    parent_span_id: Optional[str] = None
    pid: int = 0
    wall: float = 0.0
    mono: float = 0.0

    def child(self, span_id: str) -> "TraceContext":
        """A context for a new span caused by this one."""
        wall, mono = time.time(), time.monotonic()
        return TraceContext(trace_id=self.trace_id, span_id=span_id,
                            parent_span_id=self.span_id, pid=os.getpid(),
                            wall=wall, mono=mono)

    def to_wire(self) -> Dict[str, Any]:
        """JSON-ready form for protocol messages."""
        return {"trace_id": self.trace_id, "span_id": self.span_id,
                "parent_span_id": self.parent_span_id, "pid": self.pid,
                "wall": self.wall, "mono": self.mono}


def from_wire(payload: Any) -> Optional[TraceContext]:
    """Rebuild a context from a protocol message; tolerant of garbage
    (a malformed trace field must never fail the request it rides on)."""
    if not isinstance(payload, dict):
        return None
    trace_id = payload.get("trace_id")
    span_id = payload.get("span_id")
    if not isinstance(trace_id, str) or not isinstance(span_id, str):
        return None
    parent = payload.get("parent_span_id")
    if parent is not None and not isinstance(parent, str):
        parent = None
    try:
        pid = int(payload.get("pid") or 0)
        wall = float(payload.get("wall") or 0.0)
        mono = float(payload.get("mono") or 0.0)
    except (TypeError, ValueError):
        pid, wall, mono = 0, 0.0, 0.0
    return TraceContext(trace_id=trace_id, span_id=span_id,
                        parent_span_id=parent, pid=pid,
                        wall=wall, mono=mono)


# ---------------------------------------------------------------------------
# Id generation: ids must be unique across every process of a fork tree
# without coordination.  The prefix couples the pid with a few random
# bytes; a forked child regenerates it (new pid *and* new randomness, so
# a recycled pid or an exec'd image can never collide with its ancestor).

_counter = itertools.count(1)
_prefix = ""


def _reseed() -> None:
    global _counter, _prefix
    _prefix = f"{os.getpid():x}.{os.urandom(3).hex()}"
    _counter = itertools.count(1)


_reseed()


def new_span_id() -> str:
    return f"s{_prefix}.{next(_counter):x}"


def new_trace_id() -> str:
    return f"t{_prefix}.{next(_counter):x}"


# ---------------------------------------------------------------------------
# Per-thread context stack + process root / control slots.

_tls = threading.local()

_state_lock = threading.Lock()
_root: Optional[TraceContext] = None
_control: Optional[TraceContext] = None
_pending_fork: Optional[TraceContext] = None


def _stack() -> list:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = []
        _tls.stack = stack
    return stack


def current() -> Optional[TraceContext]:
    """The context active on the calling thread, if any."""
    stack = getattr(_tls, "stack", None)
    return stack[-1] if stack else None


class activate:
    """Context manager: make *ctx* current for the calling thread."""

    __slots__ = ("ctx",)

    def __init__(self, ctx: Optional[TraceContext]):
        self.ctx = ctx

    def __enter__(self) -> Optional[TraceContext]:
        if self.ctx is not None:
            _stack().append(self.ctx)
        return self.ctx

    def __exit__(self, *exc_info) -> None:
        if self.ctx is not None:
            stack = _stack()
            if stack and stack[-1] is self.ctx:
                stack.pop()


def process_root() -> TraceContext:
    """The process's root context; minted lazily for trace-tree roots,
    installed explicitly in forked children (:func:`reset_after_fork`)."""
    global _root
    root = _root
    if root is None:
        with _state_lock:
            if _root is None:
                wall, mono = time.time(), time.monotonic()
                _root = TraceContext(trace_id=new_trace_id(),
                                     span_id=new_span_id(),
                                     parent_span_id=None,
                                     pid=os.getpid(),
                                     wall=wall, mono=mono)
            root = _root
    return root


def set_process_root(ctx: TraceContext) -> None:
    global _root
    with _state_lock:
        _root = ctx


def note_control(ctx: TraceContext) -> None:
    """Park the context of a control verb (continue/step/...): debuggee
    activity released by it — most importantly the next fork bracket —
    adopts it as causal parent."""
    global _control
    _control = ctx


def control_context() -> Optional[TraceContext]:
    return _control


def fork_parent_context() -> TraceContext:
    """The context a fork bracket should parent its span on: the
    forking thread's active context, else the last control verb that
    resumed this process, else the process root."""
    return current() or _control or process_root()


# ---------------------------------------------------------------------------
# Fork staging: the bracket publishes its span's context just before
# fork(2); only the child (which inherits this module's globals by copy)
# consumes it.  The parent clears the slot when the bracket closes.

def stage_fork(ctx: TraceContext) -> None:
    global _pending_fork
    _pending_fork = ctx


def clear_pending_fork() -> None:
    global _pending_fork
    _pending_fork = None


def pending_fork() -> Optional[TraceContext]:
    return _pending_fork


def consume_pending_fork() -> Optional[TraceContext]:
    global _pending_fork
    pending, _pending_fork = _pending_fork, None
    return pending


def reset_after_fork() -> Optional[TraceContext]:
    """Child-side fork handler body: regenerate the id prefix, consume
    the staged bracket context, and root the child's timeline under it
    (same trace as the parent — the tree shares one trace id).  Returns
    the staged parent context, or ``None`` for an untraced fork."""
    global _root, _control
    _reseed()
    pending = consume_pending_fork()
    _tls.stack = []
    _control = None
    wall, mono = time.time(), time.monotonic()
    if pending is not None:
        _root = TraceContext(trace_id=pending.trace_id,
                             span_id=new_span_id(),
                             parent_span_id=pending.span_id,
                             pid=os.getpid(), wall=wall, mono=mono)
    else:
        _root = TraceContext(trace_id=new_trace_id(),
                             span_id=new_span_id(), parent_span_id=None,
                             pid=os.getpid(), wall=wall, mono=mono)
    return pending


def reset_after_exec(handoff: Any = None) -> Optional[TraceContext]:
    """Exec-survival body: like :func:`reset_after_fork`, but the causal
    parent arrives via an environment handoff (the pre-exec image's root
    context as a wire dict) instead of inherited memory."""
    global _root, _control
    _reseed()
    _tls.stack = []
    _control = None
    parent = from_wire(handoff)
    wall, mono = time.time(), time.monotonic()
    if parent is not None:
        _root = TraceContext(trace_id=parent.trace_id,
                             span_id=new_span_id(),
                             parent_span_id=parent.span_id,
                             pid=os.getpid(), wall=wall, mono=mono)
    else:
        _root = None  # lazily minted on first use
    return parent

"""Span flight-recorder: begin/end intervals on a RingLog-style ring.

Where :mod:`repro.util.ringlog` answers "what happened", the span
recorder answers "how long did it take and when, relative to everything
else" — fork-handler phases, command round trips, parked-UE dwell times
— in a shape the Chrome trace-event exporter (:mod:`repro.obs.export`)
can lay out on a cross-process timeline.

Same hot-path discipline as the ring logger: a completed span is one
tuple appended into a fixed-size ring under a single short critical
section; nothing is formatted, nothing allocated beyond the record, no
I/O.  Every record carries a **wall + monotonic timestamp pair** so the
exporter can merge rings from many processes without trusting any one
process's wall clock (NTP slew, clock steps).

Since the causality layer landed, every span opened through
:meth:`SpanRecorder.begin` also carries an **identity**: a span id plus
the parent span id taken from the calling thread's active
:class:`~repro.obs.causality.TraceContext` (or an explicit ``parent=``).
That identity is what lets the exporter draw fork and RPC flow edges
between processes, and what the black box dedupes on.

A forked child inherits the parent's ring; its spans describe the
parent's timeline, so the child's fork handler calls
:meth:`SpanRecorder.reset_after_fork`.  The black box drains the ring
incrementally through :meth:`SpanRecorder.drain_since`; an optional
flush hook fires every ``interval`` records, outside the ring lock.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from . import causality


class _OpenSpan:
    """Token returned by :meth:`SpanRecorder.begin`; finish it with
    :meth:`SpanRecorder.end` or use it as a context manager."""

    __slots__ = ("recorder", "name", "cat", "t0_wall", "t0_mono", "args",
                 "span_id", "parent_id", "trace_id")

    def __init__(self, recorder: "SpanRecorder", name: str, cat: str,
                 args: Optional[Dict[str, Any]],
                 parent: Optional[causality.TraceContext] = None):
        self.recorder = recorder
        self.name = name
        self.cat = cat
        self.args = args
        if parent is None:
            # Root on the process context so every span belongs to the
            # tree's trace even when no request/fork context is active.
            parent = causality.current() or causality.process_root()
        self.span_id = causality.new_span_id()
        self.parent_id = parent.span_id
        self.trace_id = parent.trace_id
        self.t0_wall = time.time()
        self.t0_mono = time.monotonic()

    @property
    def context(self) -> causality.TraceContext:
        """This span as a causal parent for children (threads, wire,
        forked processes)."""
        return causality.TraceContext(
            trace_id=self.trace_id or causality.process_root().trace_id,
            span_id=self.span_id, parent_span_id=self.parent_id,
            pid=os.getpid(), wall=self.t0_wall, mono=self.t0_mono)

    def end(self) -> None:
        self.recorder.end(self)

    def __enter__(self) -> "_OpenSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        self.end()


class SpanRecorder:
    """Fixed-capacity ring of completed spans (the flight recorder)."""

    def __init__(self, capacity: int = 2048):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        self._records: List[Optional[tuple]] = [None] * capacity
        self._next_seq = 0
        self._lock = threading.Lock()
        self._flush_hook: Optional[Callable[[], None]] = None
        self._flush_interval = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    # -- recording --------------------------------------------------------------

    def begin(self, name: str, cat: str = "debug",
              parent: Optional[causality.TraceContext] = None,
              **args: Any) -> _OpenSpan:
        """Open a span; stamp taken now, recorded at :meth:`end`."""
        return _OpenSpan(self, name, cat, args or None, parent=parent)

    def span(self, name: str, cat: str = "debug",
             parent: Optional[causality.TraceContext] = None,
             **args: Any) -> _OpenSpan:
        """Context-manager sugar: ``with spans.span("fork.child"): ...``"""
        return self.begin(name, cat, parent=parent, **args)

    def end(self, token: _OpenSpan) -> None:
        duration = time.monotonic() - token.t0_mono
        self.record(token.name, token.cat, token.t0_wall, token.t0_mono,
                    duration, token.args, span_id=token.span_id,
                    parent_id=token.parent_id, trace_id=token.trace_id)

    def record(self, name: str, cat: str, t0_wall: float, t0_mono: float,
               duration: float,
               args: Optional[Dict[str, Any]] = None, *,
               span_id: Optional[str] = None,
               parent_id: Optional[str] = None,
               trace_id: Optional[str] = None) -> None:
        """Append one completed span (already-timed path)."""
        entry = (name, cat, os.getpid(), threading.get_ident(),
                 t0_wall, t0_mono, duration, args,
                 span_id, parent_id, trace_id)
        with self._lock:
            seq = self._next_seq
            self._next_seq += 1
            self._records[seq % self._capacity] = entry
            hook = self._flush_hook
            interval = self._flush_interval
        # Fire the incremental-flush hook outside the ring lock so its
        # I/O can never block another recording thread.
        if hook is not None and interval and (seq + 1) % interval == 0:
            hook()

    # -- reading ---------------------------------------------------------------

    @staticmethod
    def _to_dict(row: tuple, seq: Optional[int] = None) -> Dict[str, Any]:
        (name, cat, pid, tid, wall, mono, dur, args,
         span_id, parent_id, trace_id) = row
        record = {"name": name, "cat": cat, "pid": pid, "tid": tid,
                  "wall": wall, "mono": mono, "dur": dur}
        if args:
            record["args"] = dict(args)
        if span_id is not None:
            record["id"] = span_id
        if parent_id is not None:
            record["parent"] = parent_id
        if trace_id is not None:
            record["trace"] = trace_id
        if seq is not None:
            record["seq"] = seq
        return record

    def snapshot(self, reset: bool = False) -> List[Dict[str, Any]]:
        """Retained spans, oldest first, as JSON-ready dicts."""
        with self._lock:
            total = self._next_seq
            start = max(0, total - self._capacity)
            rows = [self._records[s % self._capacity]
                    for s in range(start, total)]
            if reset:
                self._records = [None] * self._capacity
                self._next_seq = 0
        return [self._to_dict(row) for row in rows if row is not None]

    def drain_since(self, cursor: int) -> Tuple[int, int, List[Dict[str, Any]]]:
        """Records with seq >= *cursor* still in the ring, oldest first.

        Returns ``(new_cursor, dropped, records)`` where *dropped*
        counts records that rolled off the ring before being drained —
        the black box reports that honestly instead of papering over a
        gap.  Record dicts carry their ``seq`` so a reader can order and
        dedupe dumps even when the same span batch was written twice.
        """
        with self._lock:
            total = self._next_seq
            start = max(cursor, total - self._capacity, 0)
            rows = [(s, self._records[s % self._capacity])
                    for s in range(start, total)]
        dropped = max(0, start - cursor) if cursor < total else 0
        records = [self._to_dict(row, seq=s)
                   for s, row in rows if row is not None]
        return total, dropped, records

    def set_flush_hook(self, hook: Optional[Callable[[], None]],
                       interval: int = 256) -> None:
        """Install *hook* to run after every *interval*-th record (or
        remove it with ``None``).  Runs on the recording thread, outside
        the ring lock; the hook owns its own reentrancy protection."""
        with self._lock:
            self._flush_hook = hook
            self._flush_interval = max(1, int(interval)) if hook else 0

    @property
    def dropped(self) -> int:
        with self._lock:
            return max(0, self._next_seq - self._capacity)

    def reset_after_fork(self) -> None:
        """Child fork handler: inherited spans are the parent's timeline.

        Fresh lock, assignments only: the inherited lock may have been
        held by a parent thread mid-:meth:`record` at the fork moment,
        and this child is single-threaded — acquiring it would deadlock
        forever.
        """
        self._lock = threading.Lock()
        self._records = [None] * self._capacity
        self._next_seq = 0


#: Process-global flight recorder, exported by the `telemetry` command
#: and reset in forked children alongside the metrics registry.
SPANS = SpanRecorder()


def span(name: str, cat: str = "debug",
         parent: Optional[causality.TraceContext] = None,
         **args: Any) -> _OpenSpan:
    """Record one span on the global flight recorder."""
    return SPANS.span(name, cat, parent=parent, **args)

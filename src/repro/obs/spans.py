"""Span flight-recorder: begin/end intervals on a RingLog-style ring.

Where :mod:`repro.util.ringlog` answers "what happened", the span
recorder answers "how long did it take and when, relative to everything
else" — fork-handler phases, command round trips, parked-UE dwell times
— in a shape the Chrome trace-event exporter (:mod:`repro.obs.export`)
can lay out on a cross-process timeline.

Same hot-path discipline as the ring logger: a completed span is one
tuple appended into a fixed-size ring under a single short critical
section; nothing is formatted, nothing allocated beyond the record, no
I/O.  Every record carries a **wall + monotonic timestamp pair** so the
exporter can merge rings from many processes without trusting any one
process's wall clock (NTP slew, clock steps).

A forked child inherits the parent's ring; its spans describe the
parent's timeline, so the child's fork handler calls
:meth:`SpanRecorder.reset_after_fork`.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Dict, List, Optional


class _OpenSpan:
    """Token returned by :meth:`SpanRecorder.begin`; finish it with
    :meth:`SpanRecorder.end` or use it as a context manager."""

    __slots__ = ("recorder", "name", "cat", "t0_wall", "t0_mono", "args")

    def __init__(self, recorder: "SpanRecorder", name: str, cat: str,
                 args: Optional[Dict[str, Any]]):
        self.recorder = recorder
        self.name = name
        self.cat = cat
        self.args = args
        self.t0_wall = time.time()
        self.t0_mono = time.monotonic()

    def end(self) -> None:
        self.recorder.end(self)

    def __enter__(self) -> "_OpenSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        self.end()


class SpanRecorder:
    """Fixed-capacity ring of completed spans (the flight recorder)."""

    def __init__(self, capacity: int = 2048):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        self._records: List[Optional[tuple]] = [None] * capacity
        self._next_seq = 0
        self._lock = threading.Lock()

    @property
    def capacity(self) -> int:
        return self._capacity

    # -- recording --------------------------------------------------------------

    def begin(self, name: str, cat: str = "debug",
              **args: Any) -> _OpenSpan:
        """Open a span; stamp taken now, recorded at :meth:`end`."""
        return _OpenSpan(self, name, cat, args or None)

    def span(self, name: str, cat: str = "debug", **args: Any) -> _OpenSpan:
        """Context-manager sugar: ``with spans.span("fork.child"): ...``"""
        return self.begin(name, cat, **args)

    def end(self, token: _OpenSpan) -> None:
        duration = time.monotonic() - token.t0_mono
        self.record(token.name, token.cat, token.t0_wall, token.t0_mono,
                    duration, token.args)

    def record(self, name: str, cat: str, t0_wall: float, t0_mono: float,
               duration: float,
               args: Optional[Dict[str, Any]] = None) -> None:
        """Append one completed span (already-timed path)."""
        entry = (name, cat, os.getpid(), threading.get_ident(),
                 t0_wall, t0_mono, duration, args)
        with self._lock:
            seq = self._next_seq
            self._next_seq += 1
            self._records[seq % self._capacity] = entry

    # -- reading ---------------------------------------------------------------

    def snapshot(self, reset: bool = False) -> List[Dict[str, Any]]:
        """Retained spans, oldest first, as JSON-ready dicts."""
        with self._lock:
            total = self._next_seq
            start = max(0, total - self._capacity)
            rows = [self._records[s % self._capacity]
                    for s in range(start, total)]
            if reset:
                self._records = [None] * self._capacity
                self._next_seq = 0
        out = []
        for row in rows:
            if row is None:
                continue
            name, cat, pid, tid, wall, mono, dur, args = row
            record = {"name": name, "cat": cat, "pid": pid, "tid": tid,
                      "wall": wall, "mono": mono, "dur": dur}
            if args:
                record["args"] = dict(args)
            out.append(record)
        return out

    @property
    def dropped(self) -> int:
        with self._lock:
            return max(0, self._next_seq - self._capacity)

    def reset_after_fork(self) -> None:
        """Child fork handler: inherited spans are the parent's timeline."""
        with self._lock:
            self._records = [None] * self._capacity
            self._next_seq = 0


#: Process-global flight recorder, exported by the `telemetry` command
#: and reset in forked children alongside the metrics registry.
SPANS = SpanRecorder()


def span(name: str, cat: str = "debug", **args: Any) -> _OpenSpan:
    """Record one span on the global flight recorder."""
    return SPANS.span(name, cat, **args)

"""Lock-light metrics registry: counters, gauges, fixed-bucket histograms.

The paper's §3 low-intrusion rule applies to the debugger's *own*
telemetry as hard as it applies to the debuggee's: a metrics layer that
locks, allocates or does I/O on the hot path would perturb exactly the
schedules it is supposed to observe.  The registry therefore follows the
same discipline as :mod:`repro.util.ringlog`:

* **per-thread shards** — every writing thread owns a private shard
  (plain dicts it alone mutates), so increments and histogram observes
  touch no lock and contend with nobody;
* **merge on snapshot** — the registry lock is taken only when a shard
  is born and when a snapshot merges all shards, both off the hot path;
* **no I/O, bounded allocation** — counters are dict slots, histograms
  are fixed bucket arrays sized at first observe; nothing is formatted
  or written until a `telemetry` command asks.

Fork-awareness (§5.3's stale-metadata problem, applied to telemetry):
a forked child inherits the parent's shards, which describe threads
that no longer exist and a pid that is no longer ours.
:meth:`MetricsRegistry.reset_after_fork` drops every inherited shard and
re-labels the registry with the child's pid and session epoch, so
per-process numbers stay honest across the fork chain.
"""

from __future__ import annotations

import bisect
import os
import threading
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

#: Default histogram bucket upper bounds, in seconds: 1 µs .. 30 s,
#: roughly x3 per step.  Chosen to straddle every duration this debugger
#: produces, from a dispatch tick to a parked UE's think time.
DEFAULT_BOUNDS: Tuple[float, ...] = (
    1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3,
    1e-2, 3e-2, 1e-1, 3e-1, 1.0, 3.0, 10.0, 30.0)

#: Global on/off switch, checked first on every hot-path call so the
#: metrics-off arm of ``make bench-json`` measures a true no-op.
_enabled = True


def set_enabled(on: bool) -> None:
    """Globally enable/disable metric recording (snapshot still works)."""
    global _enabled
    _enabled = bool(on)


def enabled() -> bool:
    return _enabled


def labeled(name: str, **labels: Any) -> str:
    """Fold labels into a metric key: ``name{k=v,k2=v2}`` (sorted)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class _Histogram:
    """One thread's view of one histogram: bucket counts + sum + count."""

    __slots__ = ("bounds", "counts", "total", "n", "vmin", "vmax")

    def __init__(self, bounds: Sequence[float]):
        self.bounds = bounds
        # one slot per bound plus the +Inf overflow slot
        self.counts = [0] * (len(bounds) + 1)
        self.total = 0.0
        self.n = 0
        self.vmin = float("inf")
        self.vmax = float("-inf")

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += value
        self.n += 1
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value


class _Shard:
    """Per-thread storage: only the owning thread ever writes here."""

    __slots__ = ("counters", "hists")

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.hists: Dict[str, _Histogram] = {}


class MetricsRegistry:
    """Process-wide metrics with per-thread shards merged on snapshot."""

    def __init__(self, labels: Optional[Dict[str, Any]] = None):
        self._lock = threading.Lock()
        self._local = threading.local()
        self._shards: List[_Shard] = []
        self._gauges: Dict[str, float] = {}
        self._gauge_fns: Dict[str, Callable[[], float]] = {}
        self._hist_bounds: Dict[str, Tuple[float, ...]] = {}
        self.labels: Dict[str, Any] = dict(labels or {})
        self.labels.setdefault("pid", os.getpid())
        self.labels.setdefault("epoch", 0)

    # -- hot path ---------------------------------------------------------------

    def _shard(self) -> _Shard:
        shard = getattr(self._local, "shard", None)
        if shard is None:
            shard = _Shard()
            with self._lock:
                self._shards.append(shard)
            self._local.shard = shard
        return shard

    def inc(self, name: str, n: float = 1, **labels: Any) -> None:
        """Add *n* to counter *name*.  Lock-free for the calling thread."""
        if not _enabled:
            return
        counters = self._shard().counters
        key = labeled(name, **labels) if labels else name
        counters[key] = counters.get(key, 0) + n

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Record *value* into histogram *name*.  Lock-free."""
        if not _enabled:
            return
        hists = self._shard().hists
        key = labeled(name, **labels) if labels else name
        hist = hists.get(key)
        if hist is None:
            hist = _Histogram(self._hist_bounds.get(name, DEFAULT_BOUNDS))
            hists[key] = hist
        hist.observe(value)

    # -- configuration / gauges (not hot) -----------------------------------------

    def declare_histogram(self, name: str,
                          bounds: Sequence[float]) -> None:
        """Override the bucket bounds used for *name* (before first use)."""
        self._hist_bounds[name] = tuple(sorted(bounds))

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        if not _enabled:
            return
        with self._lock:
            self._gauges[labeled(name, **labels)] = value

    def register_gauge(self, name: str, fn: Callable[[], float]) -> None:
        """A callback gauge, evaluated at snapshot time — the zero-cost
        way to expose an existing hot-path counter (e.g. the trace
        engine's ``event_count``) without touching its fast path."""
        with self._lock:
            self._gauge_fns[name] = fn

    def unregister_gauge(self, name: str) -> None:
        with self._lock:
            self._gauge_fns.pop(name, None)
            self._gauges.pop(name, None)

    # -- snapshot / reset ----------------------------------------------------------

    def snapshot(self, reset: bool = False) -> Dict[str, Any]:
        """Merge every shard into one JSON-ready view.

        With ``reset``, counters and histograms are drained (shards are
        dropped; writers re-create theirs on next use).  Gauges and
        labels persist.
        """
        with self._lock:
            shards = list(self._shards)
            if reset:
                self._shards = []
                self._local = threading.local()
            gauges = dict(self._gauges)
            gauge_fns = dict(self._gauge_fns)
            labels = dict(self.labels)
        counters: Dict[str, float] = {}
        hists: Dict[str, Dict[str, Any]] = {}
        for shard in shards:
            for key, value in shard.counters.items():
                counters[key] = counters.get(key, 0) + value
            for key, hist in shard.hists.items():
                merged = hists.get(key)
                if merged is None:
                    hists[key] = {
                        "bounds": list(hist.bounds),
                        "counts": list(hist.counts),
                        "sum": hist.total,
                        "count": hist.n,
                        "min": hist.vmin,
                        "max": hist.vmax,
                    }
                else:
                    for i, c in enumerate(hist.counts):
                        merged["counts"][i] += c
                    merged["sum"] += hist.total
                    merged["count"] += hist.n
                    merged["min"] = min(merged["min"], hist.vmin)
                    merged["max"] = max(merged["max"], hist.vmax)
        for key, hist in hists.items():
            if hist["count"] == 0:
                hist["min"] = hist["max"] = 0.0
        for name, fn in gauge_fns.items():
            try:
                gauges[name] = float(fn())
            except Exception:  # noqa: BLE001 - a dead gauge must not
                pass           # poison the whole snapshot
        return {"labels": labels, "counters": counters,
                "gauges": gauges, "histograms": hists}

    def reset(self) -> None:
        """Drop all recorded values (counters, histograms, set gauges)."""
        with self._lock:
            self._shards = []
            self._local = threading.local()
            self._gauges.clear()

    def reset_after_fork(self,
                         labels: Optional[Dict[str, Any]] = None) -> None:
        """Child fork handler: drop inherited shards, adopt child labels.

        The inherited shards describe the parent's threads (which do not
        exist here — §5.1) and the parent's pid; keeping them would be
        the telemetry version of the Fig. 4 stale-metadata bug.

        Fresh lock, assignments only: the inherited lock may have been
        held by a parent thread mid-snapshot at the fork moment, and the
        single-threaded child would block on it forever.
        """
        self._lock = threading.Lock()
        self._shards = []
        self._local = threading.local()
        self._gauges = {}
        self.labels["pid"] = os.getpid()
        self.labels["epoch"] = int(self.labels.get("epoch", 0)) + 1
        if labels:
            self.labels.update(labels)


#: The process-global registry every subsystem instruments into.  Forked
#: children reset it via the obs fork handler (repro.core.handlers).
REGISTRY = MetricsRegistry()


def inc(name: str, n: float = 1, **labels: Any) -> None:
    REGISTRY.inc(name, n, **labels)


def observe(name: str, value: float, **labels: Any) -> None:
    REGISTRY.observe(name, value, **labels)


def set_gauge(name: str, value: float, **labels: Any) -> None:
    REGISTRY.set_gauge(name, value, **labels)


def register_gauge(name: str, fn: Callable[[], float]) -> None:
    REGISTRY.register_gauge(name, fn)

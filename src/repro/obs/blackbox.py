"""Crash black box: a per-process flight-recorder file that survives us.

Everything else in ``repro.obs`` is in-memory: when PR 9's degraded
mode detaches, a watchdog heals, or the debuggee is SIGKILLed mid-fork,
the evidence of *why* evaporates with the process.  The black box is
the durable half: a bounded, schema-versioned, append-only JSONL file
per process under ``DIONEA_BLACKBOX_DIR``, holding span batches drained
incrementally off the span ring, metrics snapshots, ring-log tails, and
*markers* — reason-coded records written on terminal events (degrade/
detach, quarantine, watchdog heal, unhandled exception, atexit, exec
handoff).  ``dionea timeline`` reassembles a whole — possibly dead —
fork tree from these files alone.

Design constraints, in order:

* **do no harm** — disabled (the default: no ``DIONEA_BLACKBOX_DIR``)
  it is a handful of attribute checks; enabled, every write is one
  ``os.write`` of a complete line to an ``O_APPEND`` fd (atomic at
  JSONL granularity for our record sizes), and any ``OSError`` disables
  the box rather than surfacing into the debuggee;
* **fork-safe** — the child's obs fork handler rotates the box onto a
  fresh path with plain assignments (no I/O inside the fork bracket);
  the inherited fd is closed lazily on the child's first flush;
* **bounded** — incremental payloads stop at ``limit_bytes``
  (``DIONEA_BLACKBOX_LIMIT``); markers and the open record are small
  and always written, so the terminal reason survives even a span
  flood.

Record schema (one JSON object per line, ``"v"``: schema version 1):

* ``open``    — process identity: pid, ppid, program, labels, the root
  trace context, and the wall+mono clock anchor;
* ``spans``   — a batch of span dicts (each with ring ``seq``) plus the
  count of records that rolled off the ring undrained;
* ``metrics`` — a metrics-registry snapshot;
* ``ringlog`` — a tail of debug-log records;
* ``marker``  — ``{"reason": code, "terminal": bool}``; a terminal
  marker means observation of this process ended on purpose — a dump
  *without* one is evidence of an unclean death.

Every record carries the ``wall``/``mono`` pair so the timeline
assembler can clock-align dumps exactly like live telemetry snapshots.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, List, Optional

from . import causality
from .metrics import REGISTRY
from .spans import SPANS, SpanRecorder

SCHEMA_VERSION = 1

#: environment switch: directory for per-process dump files
BLACKBOX_DIR_ENV = "DIONEA_BLACKBOX_DIR"
#: soft byte budget per dump file (incremental payloads stop here)
BLACKBOX_LIMIT_ENV = "DIONEA_BLACKBOX_LIMIT"
DEFAULT_LIMIT_BYTES = 1 << 19
#: span-ring records between incremental flushes
FLUSH_INTERVAL = 256

#: reason codes written by the wired-in callers (callers may also pass
#: free-form codes like ``detach:fork_handler_failed``)
REASON_QUARANTINE = "quarantine"
REASON_WATCHDOG_HEAL = "watchdog_heal"
REASON_UNHANDLED_EXCEPTION = "unhandled_exception"
REASON_ATEXIT = "atexit"
REASON_EXEC = "exec"
REASON_STOP = "stop"


class BlackBox:
    """One process's flight-recorder file (disabled until configured)."""

    def __init__(self, recorder: SpanRecorder = SPANS):
        self._recorder = recorder
        self._lock = threading.Lock()
        self._dir: Optional[str] = None
        self._program = ""
        self._labels: Dict[str, Any] = {}
        self._fd: Optional[int] = None
        self._path: Optional[str] = None
        self._bytes = 0
        self._cursor = 0
        self._limit = DEFAULT_LIMIT_BYTES
        self._records_written = 0
        self._payloads_dropped = 0
        self._exec_of: Optional[Dict[str, Any]] = None
        self._broken = False

    # -- configuration ------------------------------------------------------

    def configure(self, directory: Optional[str], program: str,
                  labels: Optional[Dict[str, Any]] = None,
                  limit_bytes: Optional[int] = None) -> None:
        """Enable (or, with ``directory=None``, disable) the box.

        The dump file is created lazily on the first flush, so calling
        this inside process startup costs only assignments.
        """
        with self._lock:
            self._close_locked()
            self._dir = directory or None
            self._program = program
            self._labels = dict(labels or {})
            self._limit = int(limit_bytes if limit_bytes is not None
                              else os.environ.get(BLACKBOX_LIMIT_ENV,
                                                  DEFAULT_LIMIT_BYTES))
            self._cursor = 0
            self._records_written = 0
            self._payloads_dropped = 0
            self._broken = False
        if self._dir is not None:
            self._recorder.set_flush_hook(self._ring_hook, FLUSH_INTERVAL)
        else:
            self._recorder.set_flush_hook(None)

    def configure_from_env(self, program: str,
                           labels: Optional[Dict[str, Any]] = None) -> None:
        self.configure(os.environ.get(BLACKBOX_DIR_ENV), program,
                       labels=labels)

    @property
    def enabled(self) -> bool:
        return self._dir is not None and not self._broken

    @property
    def path(self) -> Optional[str]:
        return self._path

    def describe(self) -> Dict[str, Any]:
        """JSON-ready status (the ``blackbox`` protocol command)."""
        with self._lock:
            return {"enabled": self.enabled, "path": self._path,
                    "bytes": self._bytes,
                    "records": self._records_written,
                    "payloads_dropped": self._payloads_dropped,
                    "limit_bytes": self._limit}

    # -- writing ------------------------------------------------------------

    def _open_locked(self) -> bool:
        """Create the dump file + write the ``open`` record; lock held."""
        if self._fd is not None:
            return True
        if self._dir is None or self._broken:
            return False
        pid = os.getpid()
        name = f"bb-{pid}-{os.urandom(3).hex()}.jsonl"
        path = os.path.join(self._dir, name)
        try:
            os.makedirs(self._dir, exist_ok=True)
            self._fd = os.open(path,
                               os.O_APPEND | os.O_CREAT | os.O_WRONLY,
                               0o644)
        except OSError:
            self._broken = True
            return False
        self._path = path
        self._bytes = 0
        root = causality.process_root()
        record = {"kind": "open", "pid": pid, "ppid": os.getppid(),
                  "program": self._program, "labels": dict(self._labels),
                  "trace": root.to_wire()}
        if self._exec_of is not None:
            record["exec_of"] = self._exec_of
        self._write_locked(record, force=True)
        return True

    def _write_locked(self, record: Dict[str, Any], force: bool) -> bool:
        if self._fd is None:
            return False
        if not force and self._bytes >= self._limit:
            self._payloads_dropped += 1
            return False
        record["v"] = SCHEMA_VERSION
        record["wall"], record["mono"] = time.time(), time.monotonic()
        try:
            line = json.dumps(record, default=repr) + "\n"
        except (TypeError, ValueError):
            return False
        data = line.encode("utf-8")
        try:
            os.write(self._fd, data)
        except OSError:
            self._broken = True
            return False
        self._bytes += len(data)
        self._records_written += 1
        return True

    def _ring_hook(self) -> None:
        """Span-ring flush hook: drain unseen spans; never raise."""
        try:
            self.flush()
        except Exception:  # noqa: BLE001 - the ring must never feel us
            self._broken = True

    def flush(self) -> None:
        """Incremental flush: append span-ring records drained since the
        last flush.  Cheap no-op while disabled or over budget."""
        if not self.enabled:
            return
        # Non-blocking: if another thread is mid-flush, its drain will
        # pick up our records; skipping beats stalling a hot path.
        if not self._lock.acquire(blocking=False):
            return
        try:
            if not self._open_locked():
                return
            cursor, ring_dropped, records = \
                self._recorder.drain_since(self._cursor)
            self._cursor = cursor
            if records or ring_dropped:
                self._write_locked({"kind": "spans", "spans": records,
                                    "ring_dropped": ring_dropped},
                                   force=False)
        finally:
            self._lock.release()

    def force_flush(self, reason: str, terminal: bool = False,
                    ringlog_limit: int = 200) -> None:
        """Full dump with a reason-coded marker.

        Terminal reasons (detach/degrade, atexit, unhandled exception)
        mean observation ended on purpose; non-terminal ones
        (quarantine, watchdog heal) are way-points worth a durable
        record while the process lives on.  The marker itself is always
        written — even past the byte budget — so "why did the debugger
        let go" survives a span flood.
        """
        if not self.enabled:
            return
        with self._lock:
            if not self._open_locked():
                return
            cursor, ring_dropped, records = \
                self._recorder.drain_since(self._cursor)
            self._cursor = cursor
            if records or ring_dropped:
                self._write_locked({"kind": "spans", "spans": records,
                                    "ring_dropped": ring_dropped},
                                   force=False)
            try:
                snap = REGISTRY.snapshot()
            except Exception:  # noqa: BLE001 - best-effort on the way out
                snap = None
            if snap is not None:
                self._write_locked({"kind": "metrics", "snapshot": snap},
                                   force=False)
            tail = self._ringlog_tail(ringlog_limit)
            if tail:
                self._write_locked({"kind": "ringlog", "records": tail},
                                   force=False)
            self._write_locked({"kind": "marker", "reason": reason,
                                "terminal": bool(terminal)}, force=True)

    @staticmethod
    def _ringlog_tail(limit: int) -> List[Dict[str, Any]]:
        try:
            from ..util.ringlog import GLOBAL_LOG
            return [r.to_dict() for r in GLOBAL_LOG.snapshot()[-limit:]]
        except Exception:  # noqa: BLE001 - best-effort on the way out
            return []

    # -- lifecycle ----------------------------------------------------------

    def _close_locked(self) -> None:
        fd, self._fd = self._fd, None
        self._path = None
        self._bytes = 0
        if fd is not None:
            try:
                os.close(fd)
            except OSError:
                pass

    def close(self) -> None:
        with self._lock:
            self._close_locked()

    def reset_after_fork(self, parent_pid: int) -> None:
        """Child-side fork handler body: rotate onto a fresh dump file.

        Assignments only — the inherited fd is dropped (closed lazily on
        the first flush; O_APPEND makes the shared offset harmless) and
        the file is recreated on first use.  The lock is replaced: the
        parent copy may have been held by a flushing thread at the fork
        moment, and the child is single-threaded here.
        """
        self._lock = threading.Lock()
        fd, self._fd = self._fd, None
        self._path = None
        self._bytes = 0
        self._cursor = 0
        self._records_written = 0
        self._payloads_dropped = 0
        self._exec_of = None
        self._labels = dict(self._labels, parent_pid=parent_pid)
        if fd is not None:
            try:
                os.close(fd)
            except OSError:
                pass

    def reset_after_exec(self, program: str,
                         exec_of: Optional[Dict[str, Any]] = None) -> None:
        """Exec-survival body: same rotation as fork, but the new open
        record names the pre-exec identity it continues."""
        with self._lock:
            self._close_locked()
            self._cursor = 0
            self._records_written = 0
            self._payloads_dropped = 0
            self._program = program
            self._exec_of = dict(exec_of) if exec_of else None


#: Process-global black box, configured by the Dionea facade.
BLACKBOX = BlackBox()


# ---------------------------------------------------------------------------
# Crash hooks: the two terminal events nobody calls detach() for.

_hooks_installed = False


def install_crash_hooks() -> None:
    """Chain an excepthook + atexit hook that force-flush the box.

    Idempotent per process; forked children inherit the installation
    (the hooks read the process-global ``BLACKBOX``, which the fork
    handler has already rotated by the time they could fire).
    """
    global _hooks_installed
    if _hooks_installed:
        return
    _hooks_installed = True

    import atexit
    import sys

    previous = sys.excepthook

    def _excepthook(exc_type, exc, tb):
        try:
            BLACKBOX.force_flush(REASON_UNHANDLED_EXCEPTION, terminal=True)
        except Exception:  # noqa: BLE001 - never mask the real crash
            pass
        previous(exc_type, exc, tb)

    def _atexit() -> None:
        try:
            BLACKBOX.force_flush(REASON_ATEXIT, terminal=True)
        except Exception:  # noqa: BLE001
            pass

    sys.excepthook = _excepthook
    atexit.register(_atexit)


# ---------------------------------------------------------------------------
# Reading dumps back: tolerant parsing for the timeline assembler.

class BlackBoxDump:
    """Parsed view of one dump file; forgiving of truncation and junk."""

    def __init__(self, path: str):
        self.path = path
        self.records: List[Dict[str, Any]] = []
        self.corrupt_lines = 0
        self.alien_schema = 0

    @property
    def pid(self) -> Optional[int]:
        for record in self.records:
            pid = record.get("pid")
            if isinstance(pid, int):
                return pid
        return None

    def terminal_reason(self) -> Optional[str]:
        """First terminal marker's reason; ``None`` = unclean death."""
        for record in self.records:
            if record.get("kind") == "marker" and record.get("terminal"):
                reason = record.get("reason")
                return str(reason) if reason is not None else None
        return None


def read_dump(path: str) -> BlackBoxDump:
    """Parse one dump file.  A SIGKILLed writer leaves a truncated last
    line; a hostile or corrupt file leaves junk — both are *counted*,
    never raised, because the reader's whole point is dead processes."""
    dump = BlackBoxDump(path)
    try:
        with open(path, "rb") as fh:
            payload = fh.read()
    except OSError:
        dump.corrupt_lines += 1
        return dump
    for line in payload.split(b"\n"):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError:
            dump.corrupt_lines += 1
            continue
        if not isinstance(record, dict):
            dump.corrupt_lines += 1
            continue
        if record.get("v") != SCHEMA_VERSION:
            dump.alien_schema += 1
            continue
        dump.records.append(record)
    return dump


def scan_dir(directory: str) -> List[BlackBoxDump]:
    """Every parseable dump under *directory*, sorted by path."""
    dumps: List[BlackBoxDump] = []
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        return dumps
    for name in names:
        if not (name.startswith("bb-") and name.endswith(".jsonl")):
            continue
        dumps.append(read_dump(os.path.join(directory, name)))
    return dumps

"""repro.obs — fork-aware telemetry for the debugger itself.

The paper promises *low intrusion* (§3); this package is how we keep
that promise measurable instead of asserted.  Five layers:

* :mod:`repro.obs.metrics` — lock-light counters / gauges / fixed-bucket
  histograms with per-thread shards, merged only on snapshot;
* :mod:`repro.obs.spans` — a begin/end span flight-recorder on a
  RingLog-style ring, stamped with wall+monotonic clock pairs and
  causal span ids;
* :mod:`repro.obs.causality` — trace contexts propagated across
  threads, ``fork()`` and the wire, so a shell command stays causally
  linked to the fork-tree activity it triggers;
* :mod:`repro.obs.blackbox` — a bounded per-process flight-recorder
  *file* (``DIONEA_BLACKBOX_DIR``) that survives the process, flushed
  with reason codes on terminal events;
* :mod:`repro.obs.export` / :mod:`repro.obs.timeline` — merge live
  telemetry snapshots and black-box dumps into one Chrome trace-event
  JSON (``about:tracing`` / Perfetto), fork flow edges included.

Everything is process-global (one registry + one span ring per process,
like the global ring log) and fork-aware: the obs fork handler
registered by :mod:`repro.core.handlers` snapshots-and-resets the
child's registry, re-labels it with the child's pid and session epoch,
roots the child's trace under the parent's in-flight fork span, and
rotates the black box onto a fresh dump file.

The ``telemetry`` protocol command returns :func:`telemetry_snapshot`;
``DebugClient.cluster_telemetry`` aggregates it across every live
session and ``DebugClient.cluster_timeline`` folds in the dumps of the
dead.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, Optional

from . import causality
from .blackbox import BLACKBOX, install_crash_hooks
from .export import chrome_trace, validate_trace, write_chrome_trace
from .metrics import (
    REGISTRY,
    MetricsRegistry,
    enabled,
    inc,
    labeled,
    observe,
    register_gauge,
    set_enabled,
    set_gauge,
)
from .spans import SPANS, SpanRecorder, span

__all__ = [
    "BLACKBOX", "REGISTRY", "MetricsRegistry", "SPANS", "SpanRecorder",
    "causality", "chrome_trace", "configure_blackbox", "enabled", "inc",
    "labeled", "observe", "register_gauge", "reset_after_exec",
    "reset_after_fork", "set_enabled", "set_gauge", "span",
    "telemetry_snapshot", "validate_trace", "write_chrome_trace",
]


def telemetry_snapshot(reset: bool = False,
                       ringlog_limit: int = 500) -> Dict[str, Any]:
    """One process's full telemetry view, JSON-ready.

    The ``clock`` anchor (wall + monotonic, captured together) is what
    lets the exporter place this process's monotonic stamps on a shared
    wall-clock timeline.  ``trace`` is the process's root trace context
    (its causal link to the fork tree); ``blackbox`` names the durable
    dump, if one is being written.  With ``reset``,
    counters/histograms/spans are drained after being read (the ring
    log is left alone — it is the debugger's black box, owned by the
    `debug_log` command).
    """
    from ..util.ringlog import GLOBAL_LOG
    records = GLOBAL_LOG.snapshot()[-ringlog_limit:]
    return {
        "clock": {"wall": time.time(), "mono": time.monotonic()},
        "trace": causality.process_root().to_wire(),
        "blackbox": {"enabled": BLACKBOX.enabled, "path": BLACKBOX.path},
        "metrics": REGISTRY.snapshot(reset=reset),
        "spans": SPANS.snapshot(reset=reset),
        "ringlog": [r.to_dict() for r in records],
    }


def configure_blackbox(program: str,
                       labels: Optional[Dict[str, Any]] = None) -> None:
    """Enable the crash black box when ``DIONEA_BLACKBOX_DIR`` is set
    (and install the unhandled-exception/atexit flush hooks); cheap
    no-op otherwise.  Called by the Dionea facade at start."""
    BLACKBOX.configure_from_env(program, labels=labels)
    if BLACKBOX.enabled:
        install_crash_hooks()


def reset_after_fork(labels: Optional[Dict[str, Any]] = None) -> None:
    """Child-side fork handler body: fresh registry + ring + trace root
    + black-box file, all child-labelled.

    The child's root span records the fork lineage — parent pid and the
    parent's in-flight ``fork.bracket`` span — which is what the
    exporter turns into a fork flow edge.  When the black box is
    enabled, that lineage is flushed to disk *immediately*: a child
    SIGKILLed (or ``os._exit``-ed) moments after fork must still appear
    in the post-mortem timeline with its flow edge.  The flush is safe
    here — the rotation replaced the inherited lock and the child is
    single-threaded — and never raises (OSError marks the box broken).
    """
    parent_ctx = causality.reset_after_fork()
    SPANS.reset_after_fork()
    REGISTRY.reset_after_fork(labels=labels)
    BLACKBOX.reset_after_fork(
        parent_pid=parent_ctx.pid if parent_ctx else os.getppid())
    root = causality.process_root()
    args: Dict[str, Any] = {}
    if parent_ctx is not None:
        args["flow"] = {"kind": "fork", "parent_span": parent_ctx.span_id,
                        "parent_pid": parent_ctx.pid,
                        "wall": parent_ctx.wall}
    SPANS.record("process.root", "process", root.wall, root.mono, 0.0,
                 args or None, span_id=root.span_id,
                 parent_id=root.parent_span_id, trace_id=root.trace_id)
    BLACKBOX.flush()


def reset_after_exec(program: str,
                     labels: Optional[Dict[str, Any]] = None,
                     handoff: Optional[Dict[str, Any]] = None) -> None:
    """Exec-survival body: the process image changed but the pid (and
    any surviving session) did not — relabel the registry, continue the
    trace from the pre-exec root delivered via *handoff* (a
    ``TraceContext.to_wire`` dict), and rotate the black box exactly as
    the fork path does, so post-exec telemetry describes the new image
    instead of the one that called ``exec``.
    """
    parent_ctx = causality.reset_after_exec(handoff)
    SPANS.reset_after_fork()
    merged = {"program": program, "exec": 1}
    if parent_ctx is not None:
        merged["exec_of"] = parent_ctx.span_id
    merged.update(labels or {})
    REGISTRY.reset_after_fork(labels=merged)
    BLACKBOX.reset_after_exec(
        program, exec_of=dict(handoff) if handoff else None)
    root = causality.process_root()
    args: Dict[str, Any] = {"exec": True}
    if parent_ctx is not None:
        args["flow"] = {"kind": "exec", "parent_span": parent_ctx.span_id,
                        "parent_pid": parent_ctx.pid,
                        "wall": parent_ctx.wall}
    SPANS.record("process.exec", "process", root.wall, root.mono, 0.0,
                 args, span_id=root.span_id,
                 parent_id=root.parent_span_id, trace_id=root.trace_id)

"""repro.obs — fork-aware telemetry for the debugger itself.

The paper promises *low intrusion* (§3); this package is how we keep
that promise measurable instead of asserted.  Three layers:

* :mod:`repro.obs.metrics` — lock-light counters / gauges / fixed-bucket
  histograms with per-thread shards, merged only on snapshot;
* :mod:`repro.obs.spans` — a begin/end span flight-recorder on a
  RingLog-style ring, stamped with wall+monotonic clock pairs;
* :mod:`repro.obs.export` — merges per-process telemetry snapshots into
  one Chrome trace-event JSON (``about:tracing`` / Perfetto).

Everything is process-global (one registry + one span ring per process,
like the global ring log) and fork-aware: the obs fork handler
registered by :mod:`repro.core.handlers` snapshots-and-resets the
child's registry and re-labels it with the child's pid and session
epoch, so per-process numbers stay honest across the fork chain.

The ``telemetry`` protocol command returns :func:`telemetry_snapshot`;
``DebugClient.cluster_telemetry`` aggregates it across every live
session.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional

from .export import chrome_trace, validate_trace, write_chrome_trace
from .metrics import (
    REGISTRY,
    MetricsRegistry,
    enabled,
    inc,
    labeled,
    observe,
    register_gauge,
    set_enabled,
    set_gauge,
)
from .spans import SPANS, SpanRecorder, span

__all__ = [
    "REGISTRY", "MetricsRegistry", "SPANS", "SpanRecorder",
    "chrome_trace", "enabled", "inc", "labeled", "observe",
    "register_gauge", "reset_after_fork", "set_enabled", "set_gauge",
    "span", "telemetry_snapshot", "validate_trace", "write_chrome_trace",
]


def telemetry_snapshot(reset: bool = False,
                       ringlog_limit: int = 500) -> Dict[str, Any]:
    """One process's full telemetry view, JSON-ready.

    The ``clock`` anchor (wall + monotonic, captured together) is what
    lets the exporter place this process's monotonic stamps on a shared
    wall-clock timeline.  With ``reset``, counters/histograms/spans are
    drained after being read (the ring log is left alone — it is the
    debugger's black box, owned by the `debug_log` command).
    """
    from ..util.ringlog import GLOBAL_LOG
    records = GLOBAL_LOG.snapshot()[-ringlog_limit:]
    return {
        "clock": {"wall": time.time(), "mono": time.monotonic()},
        "metrics": REGISTRY.snapshot(reset=reset),
        "spans": SPANS.snapshot(reset=reset),
        "ringlog": [r.to_dict() for r in records],
    }


def reset_after_fork(labels: Optional[Dict[str, Any]] = None) -> None:
    """Child-side fork handler body: fresh registry + ring, child labels."""
    REGISTRY.reset_after_fork(labels=labels)
    SPANS.reset_after_fork()

"""Post-mortem timeline assembly: live telemetry + black-box dumps.

The `telemetry` command only answers for processes that are alive to
answer.  This module merges what *is* alive with what the black box
(:mod:`repro.obs.blackbox`) preserved of what is not, into one causally
ordered Chrome-trace document for the whole fork tree — the artifact
behind ``DebugClient.cluster_timeline()`` and ``dionea timeline``.

Merge rules, chosen for honesty over tidiness:

* a process seen both live and in a dump contributes the **union** of
  its spans, deduped by span id (ring ``seq`` as fallback), with the
  live snapshot preferred for metrics and ring log;
* dump records may arrive out of order, duplicated (a span batch can be
  flushed twice around a marker) or truncated mid-line (SIGKILL);
  the reader counts damage, the assembler dedupes, nothing is raised;
* every process with a dump gets a **terminal reason**: the first
  terminal marker's code, or ``"unclean"`` when the process died with
  no chance to write one — that *absence* is the interesting datum
  after a SIGKILL;
* a pid referenced by the tree (a fork flow edge, a recorded child pid)
  with neither a live snapshot nor a dump is an explicit **hole**:
  a synthetic process entry plus a ``blackbox:hole`` instant event, and
  a row in ``otherData.holes`` — never a silent omission.

Clock alignment is the exporter's anchor math: dumps anchor on the
wall+mono pair of their *latest* record (closest to death), so a
process whose wall clock was skewed still lands its spans in the right
place relative to its own anchor.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from .blackbox import BlackBoxDump, scan_dir
from .export import chrome_trace

#: terminal code assigned when a dump has no terminal marker
UNCLEAN = "unclean"


def _span_key(span: Dict[str, Any]) -> Tuple:
    """Dedupe identity for a span dict across snapshots and dumps."""
    if span.get("id") is not None:
        return ("id", span["id"])
    if span.get("seq") is not None:
        return ("seq", span.get("pid"), span["seq"])
    return ("pos", span.get("pid"), span.get("tid"), span.get("name"),
            round(float(span.get("mono", 0.0)), 9))


def snapshot_from_dump(dump: BlackBoxDump) -> Optional[Dict[str, Any]]:
    """Rebuild a telemetry-snapshot-shaped dict from one dump file."""
    pid = dump.pid
    if pid is None:
        return None
    program: Optional[str] = None
    labels: Dict[str, Any] = {}
    trace: Optional[Dict[str, Any]] = None
    spans: Dict[Tuple, Dict[str, Any]] = {}
    metrics: Optional[Dict[str, Any]] = None
    ringlog: Dict[Tuple, Dict[str, Any]] = {}
    anchor: Optional[Tuple[float, float]] = None
    ring_dropped = 0
    for record in dump.records:
        wall, mono = record.get("wall"), record.get("mono")
        if isinstance(wall, (int, float)) and isinstance(mono, (int, float)):
            if anchor is None or mono >= anchor[1]:
                anchor = (float(wall), float(mono))
        kind = record.get("kind")
        if kind == "open":
            program = program or record.get("program")
            if isinstance(record.get("labels"), dict):
                labels.update(record["labels"])
            if isinstance(record.get("trace"), dict):
                trace = record["trace"]
        elif kind == "spans":
            for span in record.get("spans") or []:
                if isinstance(span, dict) and "mono" in span:
                    spans.setdefault(_span_key(span), span)
            try:
                ring_dropped += int(record.get("ring_dropped") or 0)
            except (TypeError, ValueError):
                pass
        elif kind == "metrics":
            if isinstance(record.get("snapshot"), dict):
                metrics = record["snapshot"]
        elif kind == "ringlog":
            for row in record.get("records") or []:
                if isinstance(row, dict) and "mono" in row:
                    ringlog.setdefault(
                        (row.get("seq"), row.get("message")), row)
    ordered = sorted(spans.values(),
                     key=lambda s: (s.get("seq") is None,
                                    s.get("seq", 0),
                                    s.get("mono", 0.0)))
    snapshot: Dict[str, Any] = {
        "pid": pid,
        "program": program or (labels.get("program") if isinstance(
            labels.get("program"), str) else None) or "debuggee",
        "spans": ordered,
        "metrics": metrics or {},
        "ringlog": sorted(ringlog.values(),
                          key=lambda r: r.get("mono", 0.0)),
        "source": "blackbox",
        "blackbox_path": dump.path,
        "terminal": dump.terminal_reason() or UNCLEAN,
        "ring_dropped": ring_dropped,
        "corrupt_lines": dump.corrupt_lines,
    }
    if trace is not None:
        snapshot["trace"] = trace
    if anchor is not None:
        snapshot["clock"] = {"wall": anchor[0], "mono": anchor[1]}
    return snapshot


def _merge(live: Dict[str, Any], dumped: Dict[str, Any]) -> Dict[str, Any]:
    """One process seen both live and post-mortem: live wins for state,
    spans are unioned (the dump holds what rolled off the live ring)."""
    merged = dict(dumped)
    merged.update({k: v for k, v in live.items() if v not in (None, [], {})})
    seen: Dict[Tuple, Dict[str, Any]] = {}
    for span in (dumped.get("spans") or []) + (live.get("spans") or []):
        seen.setdefault(_span_key(span), span)
    merged["spans"] = sorted(seen.values(),
                             key=lambda s: (s.get("mono", 0.0)))
    logs: Dict[Tuple, Dict[str, Any]] = {}
    for row in (dumped.get("ringlog") or []) + (live.get("ringlog") or []):
        logs.setdefault((row.get("seq"), row.get("message")), row)
    merged["ringlog"] = sorted(logs.values(),
                               key=lambda r: r.get("mono", 0.0))
    merged["source"] = "merged"
    # A process still answering telemetry has not terminated.
    merged.pop("terminal", None)
    return merged


def _referenced_pids(snapshots: Iterable[Dict[str, Any]]) -> set:
    """Every pid the assembled tree *names*: span owners, fork flow
    sources, recorded children, trace-context parents."""
    pids = set()
    for snap in snapshots:
        for span in snap.get("spans") or []:
            args = span.get("args") or {}
            flow = args.get("flow")
            if isinstance(flow, dict) and isinstance(
                    flow.get("parent_pid"), int):
                pids.add(flow["parent_pid"])
            if isinstance(args.get("child_pid"), int):
                pids.add(args["child_pid"])
        trace = snap.get("trace")
        if isinstance(trace, dict) and isinstance(trace.get("pid"), int):
            pids.add(trace["pid"])
    pids.discard(0)
    return pids


def assemble(live_snapshots: Iterable[Dict[str, Any]],
             dumps: Iterable[BlackBoxDump],
             client_snapshot: Optional[Dict[str, Any]] = None,
             expected_pids: Optional[Iterable[int]] = None
             ) -> Dict[str, Any]:
    """Merge live telemetry and black-box dumps into one trace document.

    *expected_pids* optionally names pids the caller knows belong to the
    tree (e.g. from the client's process tree) so their absence is
    reported as a hole even if no surviving record references them.
    """
    live_by_pid: Dict[int, Dict[str, Any]] = {}
    for snap in live_snapshots:
        pid = snap.get("pid")
        if isinstance(pid, int):
            live_by_pid[pid] = dict(snap)
            live_by_pid[pid].setdefault("source", "live")

    corrupt_lines = 0
    alien_schema = 0
    dump_by_pid: Dict[int, Dict[str, Any]] = {}
    for dump in dumps:
        corrupt_lines += dump.corrupt_lines
        alien_schema += dump.alien_schema
        snap = snapshot_from_dump(dump)
        if snap is None:
            continue
        pid = snap["pid"]
        if pid in dump_by_pid:
            # Two dumps for one pid (pid reuse, exec rotation): keep
            # both span sets, newest anchor.
            dump_by_pid[pid] = _merge(snap, dump_by_pid[pid])
            dump_by_pid[pid]["source"] = "blackbox"
            dump_by_pid[pid].setdefault("terminal", snap.get("terminal"))
        else:
            dump_by_pid[pid] = snap

    merged: Dict[int, Dict[str, Any]] = {}
    for pid, snap in dump_by_pid.items():
        merged[pid] = (_merge(live_by_pid[pid], snap)
                       if pid in live_by_pid else snap)
    for pid, snap in live_by_pid.items():
        merged.setdefault(pid, snap)

    present = set(merged)
    expected = _referenced_pids(merged.values()) | set(expected_pids or ())
    holes = sorted(expected - present)

    document = chrome_trace(merged.values(), client_snapshot=client_snapshot)
    events = document["traceEvents"]
    origin = document["otherData"].get("origin_us", 0.0)

    terminals: Dict[str, str] = {}
    for pid, snap in sorted(merged.items()):
        reason = snap.get("terminal")
        if not reason:
            continue
        terminals[str(pid)] = reason
        clock = snap.get("clock") or {}
        ts = max(0.0, float(clock.get("wall", 0.0)) * 1e6 - origin)
        events.append({"name": f"terminal:{reason}", "cat": "blackbox",
                       "ph": "i", "s": "p", "ts": round(ts, 3),
                       "pid": pid, "tid": 0,
                       "args": {"reason": reason,
                                "source": snap.get("source")}})

    for pid in holes:
        events.append({"name": "process_name", "ph": "M", "pid": pid,
                       "tid": 0,
                       "args": {"name": f"missing (pid {pid})"}})
        events.append({"name": "blackbox:hole", "cat": "blackbox",
                       "ph": "i", "s": "p", "ts": 0.0, "pid": pid,
                       "tid": 0,
                       "args": {"reason": "no live telemetry and no "
                                          "black-box dump for this pid"}})

    other = document["otherData"]
    other["processes"] = sorted(set(other.get("processes", [])) | expected)
    other["holes"] = holes
    other["terminals"] = terminals
    other["sources"] = {str(pid): snap.get("source", "live")
                        for pid, snap in sorted(merged.items())}
    if corrupt_lines:
        other["corrupt_lines"] = corrupt_lines
    if alien_schema:
        other["alien_schema_records"] = alien_schema
    return document


def assemble_from_dir(directory: Optional[str],
                      live_snapshots: Iterable[Dict[str, Any]] = (),
                      client_snapshot: Optional[Dict[str, Any]] = None,
                      expected_pids: Optional[Iterable[int]] = None
                      ) -> Dict[str, Any]:
    """Assemble from a ``DIONEA_BLACKBOX_DIR``-style directory (which
    may be ``None`` or empty — a purely-live timeline is still valid)."""
    dumps = scan_dir(directory) if directory else []
    return assemble(live_snapshots, dumps, client_snapshot=client_snapshot,
                    expected_pids=expected_pids)

"""Chrome trace-event export: one timeline for the whole fork tree.

Takes the per-process telemetry snapshots the `telemetry` command
returns (metrics + spans + ring-log records, each stamped with a
wall/monotonic clock pair) and merges them into a single JSON document
in the Chrome trace-event format, loadable in ``about:tracing`` or
Perfetto.

Cross-process time alignment uses each snapshot's **clock anchor**
(``{"wall": time.time(), "mono": time.monotonic()}`` taken at snapshot
time): an event recorded at monotonic ``m`` maps to wall time
``anchor_wall - (anchor_mono - m)``.  Wall clocks are only trusted for
the anchor instant — every offset within a process comes from its
monotonic clock, so an NTP step mid-run skews one anchor, not every
record (the multi-process-merge fix of this PR's RingLog satellite).

Reference: the Trace Event Format spec (Chromium catapult project).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional


def _anchor_us(snapshot: Dict[str, Any], mono: float) -> float:
    """Map a monotonic stamp from *snapshot*'s process to wall-clock µs."""
    clock = snapshot.get("clock") or {}
    anchor_wall = clock.get("wall")
    anchor_mono = clock.get("mono")
    if anchor_wall is None or anchor_mono is None:
        return mono * 1e6  # degenerate: no anchor, monotonic-only trace
    return (anchor_wall - (anchor_mono - mono)) * 1e6


def chrome_trace(snapshots: Iterable[Dict[str, Any]],
                 client_snapshot: Optional[Dict[str, Any]] = None
                 ) -> Dict[str, Any]:
    """Merge telemetry *snapshots* into one trace-event document.

    Each snapshot is the result of the ``telemetry`` protocol command:
    pid / program / fork_generation identity, a clock anchor, a metrics
    snapshot, a span list and a ring-log excerpt.  *client_snapshot*
    optionally adds the client process's own telemetry under a
    synthetic "client" process.
    """
    events: List[Dict[str, Any]] = []
    all_snapshots = list(snapshots)
    if client_snapshot is not None:
        client_snapshot = dict(client_snapshot)
        client_snapshot.setdefault("program", "debug client")
        all_snapshots.append(client_snapshot)

    for snap in all_snapshots:
        pid = snap.get("pid") or (snap.get("metrics") or {}).get(
            "labels", {}).get("pid", 0)
        program = snap.get("program") or "debuggee"
        generation = snap.get("fork_generation")
        name = f"{program} (pid {pid}"
        if generation is not None:
            name += f", gen {generation}"
        name += ")"
        events.append({"name": "process_name", "ph": "M", "pid": pid,
                       "tid": 0, "args": {"name": name}})

        # Spans → complete ("X") events.
        for span in snap.get("spans") or []:
            event = {
                "name": span["name"],
                "cat": span.get("cat", "debug"),
                "ph": "X",
                "ts": _anchor_us(snap, span["mono"]),
                "dur": max(span.get("dur", 0.0), 0.0) * 1e6,
                "pid": span.get("pid", pid),
                "tid": span.get("tid", 0),
            }
            if span.get("args"):
                event["args"] = span["args"]
            events.append(event)

        # Ring-log records → instant ("i") events.
        for record in snap.get("ringlog") or []:
            events.append({
                "name": record.get("message", ""),
                "cat": record.get("category", "log"),
                "ph": "i",
                "s": "t",
                "ts": _anchor_us(snap, record["mono"]),
                "pid": record.get("pid", pid),
                "tid": record.get("tid", 0),
            })

        # Counters → one "C" sample at the snapshot instant.
        metrics = snap.get("metrics") or {}
        clock = snap.get("clock") or {}
        snap_ts = (clock.get("wall", 0.0)) * 1e6
        for key, value in sorted((metrics.get("counters") or {}).items()):
            events.append({"name": key, "ph": "C", "ts": snap_ts,
                           "pid": pid, "tid": 0,
                           "args": {"value": value}})

    # Normalise to a small time origin so viewers show offsets, not
    # epoch microseconds; guard against an empty trace.
    stamped = [e for e in events if "ts" in e]
    if stamped:
        origin = min(e["ts"] for e in stamped)
        for event in stamped:
            event["ts"] = round(event["ts"] - origin, 3)

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "exporter": "repro.obs",
            "processes": sorted({s.get("pid", 0) for s in all_snapshots}),
        },
    }


def write_chrome_trace(path: str, snapshots: Iterable[Dict[str, Any]],
                       client_snapshot: Optional[Dict[str, Any]] = None
                       ) -> Dict[str, Any]:
    """Export and write the trace JSON to *path*; returns the document."""
    document = chrome_trace(snapshots, client_snapshot=client_snapshot)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, separators=(",", ":"))
    return document


def validate_trace(document: Dict[str, Any]) -> List[str]:
    """Schema check for the exported document (used by tests and the
    CLI): returns a list of problems, empty when the trace is valid."""
    problems: List[str] = []
    if not isinstance(document, dict):
        return ["document is not an object"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i} is not an object")
            continue
        ph = event.get("ph")
        if ph not in ("X", "B", "E", "i", "I", "C", "M"):
            problems.append(f"event {i}: unknown phase {ph!r}")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"event {i}: missing name")
        if ph != "M":
            if not isinstance(event.get("ts"), (int, float)):
                problems.append(f"event {i}: missing ts")
            if event.get("ts", 0) < 0:
                problems.append(f"event {i}: negative ts")
        if ph == "X" and not isinstance(event.get("dur"), (int, float)):
            problems.append(f"event {i}: X event without dur")
        if not isinstance(event.get("pid"), int):
            problems.append(f"event {i}: missing pid")
    try:
        json.dumps(document)
    except (TypeError, ValueError) as exc:
        problems.append(f"document is not JSON-serializable: {exc}")
    return problems

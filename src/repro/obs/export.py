"""Chrome trace-event export: one timeline for the whole fork tree.

Takes the per-process telemetry snapshots the `telemetry` command
returns (metrics + spans + ring-log records, each stamped with a
wall/monotonic clock pair) and merges them into a single JSON document
in the Chrome trace-event format, loadable in ``about:tracing`` or
Perfetto.

Cross-process time alignment uses each snapshot's **clock anchor**
(``{"wall": time.time(), "mono": time.monotonic()}`` taken at snapshot
time): an event recorded at monotonic ``m`` maps to wall time
``anchor_wall - (anchor_mono - m)``.  Wall clocks are only trusted for
the anchor instant — every offset within a process comes from its
monotonic clock, so an NTP step mid-run skews one anchor, not every
record (the multi-process-merge fix of this PR's RingLog satellite).

Causality: spans carry ids (``id`` / ``parent`` / ``trace``, minted by
:mod:`repro.obs.causality`), surfaced in each event's args.  A span
whose args contain a ``flow`` descriptor —

    {"kind": "fork"|"rpc", "parent_span": id, "parent_pid": pid,
     "wall": stamp}

— marks a causal edge *from another process* (the parent's in-flight
``fork.bracket`` span, or the client span that sent a request).  The
exporter renders those as Chrome flow events: an ``s`` (start) at the
source process/time and an ``f`` (finish, ``bp: "e"``) bound to the
destination span, so the viewer draws an arrow from the fork bracket
into the child's root span, and from a shell command into the server
work it caused.

Reference: the Trace Event Format spec (Chromium catapult project).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional

#: event phases the exporter emits / the validator accepts
_PHASES = ("X", "B", "E", "i", "I", "C", "M", "s", "t", "f")
_FLOW_PHASES = ("s", "t", "f")


def _anchor_us(snapshot: Dict[str, Any], mono: float) -> float:
    """Map a monotonic stamp from *snapshot*'s process to wall-clock µs."""
    clock = snapshot.get("clock") or {}
    anchor_wall = clock.get("wall")
    anchor_mono = clock.get("mono")
    if anchor_wall is None or anchor_mono is None:
        return mono * 1e6  # degenerate: no anchor, monotonic-only trace
    return (anchor_wall - (anchor_mono - mono)) * 1e6


def _flow_events(span: Dict[str, Any], span_ts: float,
                 pid: int) -> List[Dict[str, Any]]:
    """The s/f pair for a span whose args carry a ``flow`` descriptor."""
    flow = (span.get("args") or {}).get("flow")
    if not isinstance(flow, dict):
        return []
    parent_pid = flow.get("parent_pid")
    flow_id = span.get("id") or f"flow-{pid}-{span.get('mono', 0)}"
    if not isinstance(parent_pid, int):
        return []
    kind = str(flow.get("kind", "flow"))
    # The source stamp is a wall time captured *in the source process*
    # when the context was minted — the same trust model as a snapshot
    # anchor, and available even when the source process left no dump.
    source_wall = flow.get("wall")
    source_ts = (float(source_wall) * 1e6 if isinstance(source_wall,
                 (int, float)) and source_wall else span_ts)
    name = f"{kind}-flow"
    return [
        {"name": name, "cat": "flow", "ph": "s", "id": flow_id,
         "ts": source_ts, "pid": parent_pid, "tid": 0},
        {"name": name, "cat": "flow", "ph": "f", "bp": "e", "id": flow_id,
         "ts": span_ts, "pid": pid, "tid": span.get("tid", 0)},
    ]


def chrome_trace(snapshots: Iterable[Dict[str, Any]],
                 client_snapshot: Optional[Dict[str, Any]] = None
                 ) -> Dict[str, Any]:
    """Merge telemetry *snapshots* into one trace-event document.

    Each snapshot is the result of the ``telemetry`` protocol command:
    pid / program / fork_generation identity, a clock anchor, a metrics
    snapshot, a span list and a ring-log excerpt.  *client_snapshot*
    optionally adds the client process's own telemetry under a
    synthetic "client" process.
    """
    events: List[Dict[str, Any]] = []
    all_snapshots = list(snapshots)
    if client_snapshot is not None:
        client_snapshot = dict(client_snapshot)
        client_snapshot.setdefault("program", "debug client")
        all_snapshots.append(client_snapshot)

    for snap in all_snapshots:
        pid = snap.get("pid") or (snap.get("metrics") or {}).get(
            "labels", {}).get("pid", 0)
        program = snap.get("program") or "debuggee"
        generation = snap.get("fork_generation")
        name = f"{program} (pid {pid}"
        if generation is not None:
            name += f", gen {generation}"
        name += ")"
        events.append({"name": "process_name", "ph": "M", "pid": pid,
                       "tid": 0, "args": {"name": name}})

        # Spans → complete ("X") events (+ flow edges for cross-process
        # causal links).
        for span in snap.get("spans") or []:
            span_pid = span.get("pid", pid)
            span_ts = _anchor_us(snap, span["mono"])
            event = {
                "name": span["name"],
                "cat": span.get("cat", "debug"),
                "ph": "X",
                "ts": span_ts,
                "dur": max(span.get("dur", 0.0), 0.0) * 1e6,
                "pid": span_pid,
                "tid": span.get("tid", 0),
            }
            args = dict(span.get("args") or {})
            for key, arg in (("id", "span_id"), ("parent", "parent_span_id"),
                             ("trace", "trace_id")):
                if span.get(key) is not None:
                    args[arg] = span[key]
            if args:
                event["args"] = args
            events.append(event)
            events.extend(_flow_events(span, span_ts, span_pid))

        # Ring-log records → instant ("i") events.
        for record in snap.get("ringlog") or []:
            events.append({
                "name": record.get("message", ""),
                "cat": record.get("category", "log"),
                "ph": "i",
                "s": "t",
                "ts": _anchor_us(snap, record["mono"]),
                "pid": record.get("pid", pid),
                "tid": record.get("tid", 0),
            })

        # Counters → one "C" sample at the snapshot instant.
        metrics = snap.get("metrics") or {}
        clock = snap.get("clock") or {}
        snap_ts = (clock.get("wall", 0.0)) * 1e6
        for key, value in sorted((metrics.get("counters") or {}).items()):
            events.append({"name": key, "ph": "C", "ts": snap_ts,
                           "pid": pid, "tid": 0,
                           "args": {"value": value}})

    # Normalise to a small time origin so viewers show offsets, not
    # epoch microseconds; guard against an empty trace.
    stamped = [e for e in events if "ts" in e]
    origin = 0.0
    if stamped:
        origin = min(e["ts"] for e in stamped)
        for event in stamped:
            event["ts"] = round(event["ts"] - origin, 3)

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "exporter": "repro.obs",
            "processes": sorted({s.get("pid", 0) for s in all_snapshots}),
            "origin_us": origin,
        },
    }


def write_chrome_trace(path: str, snapshots: Iterable[Dict[str, Any]],
                       client_snapshot: Optional[Dict[str, Any]] = None
                       ) -> Dict[str, Any]:
    """Export and write the trace JSON to *path*; returns the document."""
    document = chrome_trace(snapshots, client_snapshot=client_snapshot)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, separators=(",", ":"))
    return document


def validate_trace(document: Dict[str, Any]) -> List[str]:
    """Schema check for the exported document (used by tests and the
    CLI): returns a list of problems, empty when the trace is valid."""
    problems: List[str] = []
    if not isinstance(document, dict):
        return ["document is not an object"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i} is not an object")
            continue
        ph = event.get("ph")
        if ph not in _PHASES:
            problems.append(f"event {i}: unknown phase {ph!r}")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"event {i}: missing name")
        if ph != "M":
            if not isinstance(event.get("ts"), (int, float)):
                problems.append(f"event {i}: missing ts")
            if event.get("ts", 0) < 0:
                problems.append(f"event {i}: negative ts")
        if ph == "X" and not isinstance(event.get("dur"), (int, float)):
            problems.append(f"event {i}: X event without dur")
        if ph in _FLOW_PHASES and not isinstance(event.get("id"),
                                                 (str, int)):
            problems.append(f"event {i}: flow event without id")
        if not isinstance(event.get("pid"), int):
            problems.append(f"event {i}: missing pid")
    try:
        json.dumps(document)
    except (TypeError, ValueError) as exc:
        problems.append(f"document is not JSON-serializable: {exc}")
    return problems

"""Chaos tier: adversarial debuggees and the do-no-harm harness.

The resilience layer (repro.forkhooks.resilience, degraded mode, the
server watchdog) promises one hard invariant: **no debugger fault may
change the debuggee's output, its exit status, or its ability to
fork**.  This module is the harness that *measures* that promise
instead of asserting it piecewise:

every chaos scenario runs the same workload twice in fresh forked
processes —

* **bare**: the workload alone, no debugger anywhere near it;
* **debugged**: the workload under a full Dionea facade, with an
  adversary attached (a hung or raising third-party fork handler, an
  armed fault, a mid-fork SIGKILL);

— captures everything each run wrote to fd 1/2 plus its wait status,
and demands they be *byte-identical*.  Orderly debugged runs also ship
an evidence file (obs counters + ringlog lines) proving the resilience
machinery actually engaged: a pass where the adversary never fired
would be vacuous.

Scenario bodies are registered in ``SCENARIO_MATRIX`` next to the
stress tier's, and ``tests/chaos`` sweeps each across ≥10 seeds (the
seed perturbs round counts, payloads and kill points through
``ctx.rng``; both runs of a pair share the drawn values, so the
comparison stays exact).
"""

from __future__ import annotations

import json
import os
import signal
import sys
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..obs import metrics as obs_metrics
from ..util.ringlog import GLOBAL_LOG
from . import faults
from .scenarios import ScenarioContext, register_scenario

#: categories worth shipping back as evidence of resilience activity
_EVIDENCE_CATEGORIES = ("forkhooks", "dionea", "server")
#: counter prefixes worth shipping back
_EVIDENCE_PREFIXES = ("fork.", "dionea.", "server.")


def _emit(text: str) -> None:
    """Write workload output straight to fd 1 (never through the
    buffered ``sys.stdout``, which a test runner may have replaced)."""
    os.write(1, text.encode("utf-8"))


@dataclass
class RunOutcome:
    """One captured workload execution."""

    exit_code: Optional[int]      # waitstatus_to_exitcode; -N = signal N
    output: bytes                 # everything written to fd 1/2
    evidence: Dict[str, Any] = field(default_factory=dict)


def _write_evidence(path: str) -> None:
    """Dump the debugged process's resilience traces for the parent.

    Called in the *debugged harness child* right before an orderly
    exit; runs that die by signal or exec simply leave no file, and the
    scenario skips its evidence assertions for them.
    """
    snap = obs_metrics.REGISTRY.snapshot()
    counters = {key: value for key, value in snap["counters"].items()
                if key.startswith(_EVIDENCE_PREFIXES)}
    ringlog = [record.format() for record in GLOBAL_LOG.snapshot()
               if record.category in _EVIDENCE_CATEGORIES]
    payload = json.dumps({"counters": counters, "ringlog": ringlog})
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(payload)


def run_captured(ctx: ScenarioContext,
                 workload: Callable[[], Optional[int]],
                 *,
                 debugged: bool,
                 portfile_path: Optional[str] = None,
                 adversary: Optional[Callable[[Any], None]] = None,
                 arm: Optional[Callable[[], None]] = None,
                 env: Optional[Dict[str, str]] = None,
                 wait: float = 30.0) -> RunOutcome:
    """Fork, run *workload* with fd 1/2 redirected into a pipe, reap.

    In debugged mode the child builds a full Dionea facade first, then
    hands it to *adversary* (which registers the sick handler) and runs
    *arm* (which arms the child-local fault registry).  The workload's
    own forks go through the augmented ``os.fork`` — exactly the
    production bracket, adversary and all.
    """
    evidence_path = (f"{portfile_path}.evidence"
                     if debugged and portfile_path else None)
    read_end, write_end = os.pipe()
    pid = os.fork()
    if pid == 0:
        code = 70
        try:
            os.close(read_end)
            os.dup2(write_end, 1)
            os.dup2(write_end, 2)
            os.close(write_end)
            faults.registry().reset()
            for key, value in (env or {}).items():
                os.environ[key] = value
            debugger = None
            if debugged:
                from ..core import Dionea
                debugger = Dionea(program="chaos",
                                  portfile_path=portfile_path,
                                  park_timeout=10.0)
                debugger.start()
                if adversary is not None:
                    adversary(debugger)
                if arm is not None:
                    arm()
            code = workload() or 0
            if debugger is not None:
                if evidence_path is not None:
                    _write_evidence(evidence_path)
                if debugger.started:
                    debugger.stop()
                else:
                    # degraded mid-run: the facade already detached;
                    # just make sure the rendezvous file is gone.
                    try:
                        debugger.portfile.remove()
                    except OSError:
                        pass
        except BaseException:  # noqa: BLE001 - child must report and die
            os.write(2, traceback.format_exc().encode("utf-8"))
        finally:
            os._exit(code)
    os.close(write_end)
    ctx.track_child(pid)
    chunks: List[bytes] = []
    while True:
        chunk = os.read(read_end, 65536)
        if not chunk:
            break
        chunks.append(chunk)
    os.close(read_end)
    code = ctx.wait_child(pid, timeout=wait)
    evidence: Dict[str, Any] = {}
    if evidence_path is not None and os.path.exists(evidence_path):
        try:
            with open(evidence_path, encoding="utf-8") as fh:
                evidence = json.load(fh)
        finally:
            os.unlink(evidence_path)
    return RunOutcome(exit_code=code, output=b"".join(chunks),
                      evidence=evidence)


def do_no_harm(ctx: ScenarioContext,
               make_workload: Callable[[str], Callable[[], Optional[int]]],
               *,
               adversary: Optional[Callable[[Any], None]] = None,
               arm_debugged: Optional[Callable[[], None]] = None,
               env: Optional[Dict[str, str]] = None,
               check_evidence: Optional[
                   Callable[[Dict[str, Any]], None]] = None,
               wait: float = 30.0) -> RunOutcome:
    """The invariant, executed: bare vs debugged must be identical.

    *make_workload(mode)* builds the workload closure for ``"bare"`` or
    ``"debugged"`` (the two may differ only in how the adversarial
    event is produced — e.g. the bare run SIGKILLs itself where the
    debugged run takes the kill from an armed fault).  Output bytes and
    the wait status must match exactly; *check_evidence* then inspects
    the debugged run's resilience traces.
    """
    portfile = ctx.portfile()
    ctx.defer(portfile.remove)
    bare = run_captured(ctx, make_workload("bare"),
                        debugged=False, wait=wait)
    debugged = run_captured(ctx, make_workload("debugged"),
                            debugged=True, portfile_path=portfile.path,
                            adversary=adversary, arm=arm_debugged,
                            env=env, wait=wait)
    assert debugged.exit_code == bare.exit_code, (
        f"do-no-harm: exit status diverged — bare {bare.exit_code}, "
        f"debugged {debugged.exit_code}; debugged output:\n"
        f"{debugged.output.decode('utf-8', 'replace')}")
    assert debugged.output == bare.output, (
        f"do-no-harm: output diverged.\n--- bare ---\n"
        f"{bare.output.decode('utf-8', 'replace')}\n--- debugged ---\n"
        f"{debugged.output.decode('utf-8', 'replace')}")
    if check_evidence is not None:
        check_evidence(debugged.evidence)
    ctx.details["exit_code"] = bare.exit_code
    ctx.details["output_bytes"] = len(bare.output)
    ctx.details["evidence_counters"] = dict(
        debugged.evidence.get("counters", {}))
    return debugged


def _counter(evidence: Dict[str, Any], prefix: str) -> float:
    """Sum every evidence counter whose key starts with *prefix*
    (labels fold into the key as ``name{label=...}``)."""
    return sum(value for key, value in evidence.get("counters", {}).items()
               if key.startswith(prefix))


def _fork_rounds(label: str, rounds: int) -> int:
    """The canonical chaos workload: *rounds* sequential fork/reap
    cycles, each child emitting one line.  Strictly sequential, so the
    output byte stream is a pure function of (label, rounds)."""
    for i in range(rounds):
        _emit(f"{label} round {i} start\n")
        pid = os.fork()
        if pid == 0:
            _emit(f"{label} round {i} child {i * i}\n")
            os._exit(0)
        _, status = os.waitpid(pid, 0)
        if status != 0:
            _emit(f"{label} round {i} child failed {status}\n")
            return 1
        _emit(f"{label} round {i} done\n")
    return 0


# ---------------------------------------------------------------------------
# chaos_hung_prepare: a third-party prepare handler that never returns.
# The deadline abandons it, the bench keeps it from re-wedging every
# later fork, and the debuggee's forks all proceed.


@register_scenario("chaos_hung_prepare")
def chaos_hung_prepare(ctx: ScenarioContext) -> None:
    rounds = ctx.rng.randint(3, 5)

    def make_workload(mode: str):
        return lambda: _fork_rounds("hung", rounds)

    def adversary(debugger) -> None:
        debugger.fork_registry.register(
            "chaos-hung", prepare=lambda: time.sleep(120))

    def check(evidence) -> None:
        assert _counter(evidence, "fork.phase_timeouts") >= 1, evidence
        assert _counter(evidence, "fork.quarantined{label=chaos-hung") \
            >= 1, evidence
        assert _counter(evidence, "fork.quarantine_skips") >= 1, evidence

    do_no_harm(ctx, make_workload, adversary=adversary,
               env={"DIONEA_FORK_DEADLINE": "0.4",
                    "DIONEA_FORK_REINSTATE": "1000"},
               check_evidence=check)
    ctx.details["rounds"] = rounds


# ---------------------------------------------------------------------------
# chaos_raising_prepare: a prepare handler that raises on every call.
# Contained each time; with a short parole the scenario also crosses
# quarantine → reinstate → re-quarantine.


@register_scenario("chaos_raising_prepare")
def chaos_raising_prepare(ctx: ScenarioContext) -> None:
    rounds = ctx.rng.randint(4, 6)

    def make_workload(mode: str):
        return lambda: _fork_rounds("raising", rounds)

    def adversary(debugger) -> None:
        def sick_prepare() -> None:
            raise RuntimeError("chaos: prepare always fails")
        debugger.fork_registry.register(
            "chaos-raising", prepare=sick_prepare, parent=lambda: None)

    def check(evidence) -> None:
        assert _counter(evidence, "fork.prepare_contained") >= 1, evidence
        assert _counter(evidence, "fork.quarantined{label=chaos-raising") \
            >= 1, evidence
        assert _counter(evidence, "fork.reinstated") >= 1, evidence

    do_no_harm(ctx, make_workload, adversary=adversary,
               env={"DIONEA_FORK_REINSTATE": "2"},
               check_evidence=check)
    ctx.details["rounds"] = rounds


# ---------------------------------------------------------------------------
# chaos_fork_in_fork_handler: the adversarial handler itself calls
# fork() from inside the bracket.  The reentrancy guard hands it a bare
# fork instead of recursing into the bracket it is already inside.


@register_scenario("chaos_fork_in_fork_handler")
def chaos_fork_in_fork_handler(ctx: ScenarioContext) -> None:
    rounds = ctx.rng.randint(2, 4)

    def make_workload(mode: str):
        return lambda: _fork_rounds("forker", rounds)

    def adversary(debugger) -> None:
        def forking_prepare() -> None:
            inner = os.fork()      # the patched fork: must not recurse
            if inner == 0:
                os._exit(0)
            os.waitpid(inner, 0)
        debugger.fork_registry.register(
            "chaos-forker", prepare=forking_prepare)

    def check(evidence) -> None:
        assert _counter(evidence, "fork.reentrant") >= rounds, evidence
        # the handler behaves (merely misguided), so it is never benched
        assert _counter(evidence, "fork.quarantined") == 0, evidence

    do_no_harm(ctx, make_workload, adversary=adversary,
               check_evidence=check)
    ctx.details["rounds"] = rounds


# ---------------------------------------------------------------------------
# chaos_exec_after_fork: the forked child execs a fresh interpreter.
# The exec'd program must inherit a clean process — no debugger fds
# (close-on-exec), stdout it can write through — and the parent's
# debugger must shrug off the vanished child.


@register_scenario("chaos_exec_after_fork")
def chaos_exec_after_fork(ctx: ScenarioContext) -> None:
    token = f"exec-ok-{ctx.rng.randrange(1 << 20):05x}"

    def make_workload(mode: str):
        def body() -> int:
            _emit("exec start\n")
            pid = os.fork()
            if pid == 0:
                os.execv(sys.executable, [
                    sys.executable, "-c",
                    f"import os; os.write(1, b'{token}\\n')"])
            _, status = os.waitpid(pid, 0)
            if os.waitstatus_to_exitcode(status) != 0:
                return 1
            _emit("exec done\n")
            return 0
        return body

    do_no_harm(ctx, make_workload)
    ctx.details["token"] = token


# ---------------------------------------------------------------------------
# chaos_daemonize: classic double-fork.  The intermediate child dies at
# once, the orphaned grandchild (re-rendezvoused through two phase-C
# passes when debugged) does the work and reports through a file.


@register_scenario("chaos_daemonize")
def chaos_daemonize(ctx: ScenarioContext) -> None:
    answer = ctx.rng.randrange(1000)
    scratch = ctx.portfile()   # unused as a portfile; donates a tmp path
    ctx.defer(scratch.remove)

    def make_workload(mode: str):
        sentinel = f"{scratch.path}.{mode}.daemon"
        ctx.defer(lambda: os.path.exists(sentinel) and os.unlink(sentinel))

        def body() -> int:
            _emit("daemon spawn\n")
            mid = os.fork()
            if mid == 0:
                grand = os.fork()
                if grand == 0:
                    # the daemon: report via the filesystem, never via
                    # the (inherited) stdout, then vanish.
                    tmp = sentinel + ".tmp"
                    with open(tmp, "w", encoding="utf-8") as fh:
                        fh.write(str(answer))
                    os.rename(tmp, sentinel)
                    os._exit(0)
                os._exit(0)    # the intermediate parent dies immediately
            _, status = os.waitpid(mid, 0)
            if os.waitstatus_to_exitcode(status) != 0:
                return 1
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline:
                if os.path.exists(sentinel):
                    with open(sentinel, encoding="utf-8") as fh:
                        _emit(f"daemon said {fh.read()}\n")
                    _emit("daemon done\n")
                    return 0
                time.sleep(0.01)
            return 2           # daemon never reported
        return body

    do_no_harm(ctx, make_workload)
    ctx.details["answer"] = answer


# ---------------------------------------------------------------------------
# chaos_sigkill_mid_fork: the process dies by SIGKILL inside the fork
# bracket, between prepare and fork(2).  The bare run kills itself at
# the same round from outside any bracket; status and prior output must
# match — the bracket must not have published anything first.


@register_scenario("chaos_sigkill_mid_fork")
def chaos_sigkill_mid_fork(ctx: ScenarioContext) -> None:
    rounds = ctx.rng.randint(3, 5)
    kill_round = ctx.rng.randrange(1, rounds)

    def make_workload(mode: str):
        def body() -> int:
            for i in range(rounds):
                _emit(f"kill round {i} start\n")
                if mode == "bare" and i == kill_round:
                    os.kill(os.getpid(), signal.SIGKILL)
                pid = os.fork()  # debugged: fault fires inside the bracket
                if pid == 0:
                    _emit(f"kill round {i} child\n")
                    os._exit(0)
                os.waitpid(pid, 0)
                _emit(f"kill round {i} done\n")
            return 3           # unreachable: the kill always fires
        return body

    def arm() -> None:
        faults.registry().arm("fork.os_fork", faults.Fault.kill(),
                              faults.Schedule.on_hits(kill_round + 1))

    outcome = do_no_harm(ctx, make_workload, arm_debugged=arm)
    assert outcome.exit_code == -int(signal.SIGKILL), outcome.exit_code
    ctx.details["kill_round"] = kill_round


# ---------------------------------------------------------------------------
# chaos_deep_tree_churn: a 3-deep sequential fork tree while a flaky
# handler fails every other fork — quarantine and parole churn across
# three generations of processes, output still byte-exact.

_TREE_DEPTH = 3
#: every other fork fails — period 2 so even the root's short fork
#: sequence (the only process whose evidence survives) sees a failure
_FLAKY_PERIOD = 2


@register_scenario("chaos_deep_tree_churn")
def chaos_deep_tree_churn(ctx: ScenarioContext) -> None:
    branching = ctx.rng.choice([2, 3])

    def make_workload(mode: str):
        def node(label: str, depth: int) -> int:
            _emit(f"tree enter {label}\n")
            if depth < _TREE_DEPTH:
                for branch in range(branching):
                    child_label = f"{label}.{branch}"
                    pid = os.fork()
                    if pid == 0:
                        os._exit(node(child_label, depth + 1))
                    _, status = os.waitpid(pid, 0)
                    if os.waitstatus_to_exitcode(status) != 0:
                        _emit(f"tree child {child_label} failed\n")
                        return 1
            _emit(f"tree exit {label}\n")
            return 0

        return lambda: node("root", 0)

    def adversary(debugger) -> None:
        calls = {"n": 0}

        def flaky_prepare() -> None:
            calls["n"] += 1
            if calls["n"] % _FLAKY_PERIOD == 0:
                raise RuntimeError("chaos: flaky under churn")
        debugger.fork_registry.register(
            "chaos-flaky", prepare=flaky_prepare, parent=lambda: None)

    def check(evidence) -> None:
        assert _counter(evidence, "fork.prepare_contained") >= 1, evidence
        assert _counter(evidence, "fork.quarantined{label=chaos-flaky") \
            >= 1, evidence

    do_no_harm(ctx, make_workload, adversary=adversary,
               env={"DIONEA_FORK_REINSTATE": "1"},
               check_evidence=check, wait=40.0)
    ctx.details["branching"] = branching


# ---------------------------------------------------------------------------
# chaos_blackbox_postmortem: SIGKILL mid-fork with the black box on,
# then reconstruct the whole tree from the dump files ALONE.  This is
# the flight-recorder acceptance scenario: no process of the debugged
# run survives to answer telemetry, yet `dionea timeline` must name
# every pid, draw the fork flow edges, and report how each process
# ended (the SIGKILLed root's missing terminal marker IS the finding).

@register_scenario("chaos_blackbox_postmortem")
def chaos_blackbox_postmortem(ctx: ScenarioContext) -> None:
    import shutil
    import tempfile

    from ..obs import timeline
    from ..obs.blackbox import scan_dir
    from ..obs.export import validate_trace

    rounds = ctx.rng.randint(3, 5)
    kill_round = ctx.rng.randrange(1, rounds)
    bb_dir = tempfile.mkdtemp(prefix="dionea-chaos-bb-")
    ctx.defer(lambda: shutil.rmtree(bb_dir, ignore_errors=True))

    def make_workload(mode: str):
        def body() -> int:
            for i in range(rounds):
                _emit(f"bb round {i} start\n")
                if mode == "bare" and i == kill_round:
                    os.kill(os.getpid(), signal.SIGKILL)
                pid = os.fork()  # debugged: fault fires in the bracket
                if pid == 0:
                    _emit(f"bb round {i} child\n")
                    os._exit(0)
                os.waitpid(pid, 0)
                _emit(f"bb round {i} done\n")
            return 3           # unreachable: the kill always fires
        return body

    def arm() -> None:
        faults.registry().arm("fork.os_fork", faults.Fault.kill(),
                              faults.Schedule.on_hits(kill_round + 1))

    outcome = do_no_harm(ctx, make_workload, arm_debugged=arm,
                         env={"DIONEA_BLACKBOX_DIR": bb_dir})
    assert outcome.exit_code == -int(signal.SIGKILL), outcome.exit_code

    # Post-mortem: every process of the debugged run is dead.  The
    # dumps alone must reconstruct the tree.
    dumps = scan_dir(bb_dir)
    assert dumps, "no black-box dumps survived the kill"
    root_pids = [d.pid for d in dumps
                 if not any("parent_pid" in (r.get("labels") or {})
                            for r in d.records if r.get("kind") == "open")]
    assert len(root_pids) == 1, root_pids
    root_pid = root_pids[0]
    child_pids = sorted(d.pid for d in dumps if d.pid != root_pid)
    # Every round before the kill forked one child; each must speak.
    assert len(child_pids) == kill_round, (child_pids, kill_round)

    document = timeline.assemble_from_dir(bb_dir)
    assert validate_trace(document) == []
    other = document["otherData"]
    assert set(other["processes"]) >= {root_pid, *child_pids}
    assert other["holes"] == [], other["holes"]
    # Nobody got to write a terminal marker: unclean across the board —
    # for the root, that absence is the SIGKILL finding itself.
    assert other["terminals"][str(root_pid)] == timeline.UNCLEAN
    for pid in child_pids:
        assert other["terminals"][str(pid)] == timeline.UNCLEAN
    # The fork flow edges tie every child back to the root's brackets.
    flow_pids = {e["pid"] for e in document["traceEvents"]
                 if e.get("cat") == "flow" and e["ph"] == "f"}
    assert flow_pids >= set(child_pids), (flow_pids, child_pids)
    ctx.details["kill_round"] = kill_round
    ctx.details["dump_files"] = len(dumps)
    ctx.details["pids_reconstructed"] = len(other["processes"])


#: every chaos scenario name, for harnesses that sweep the whole tier
CHAOS_SCENARIOS = [
    "chaos_hung_prepare",
    "chaos_raising_prepare",
    "chaos_fork_in_fork_handler",
    "chaos_exec_after_fork",
    "chaos_daemonize",
    "chaos_sigkill_mid_fork",
    "chaos_deep_tree_churn",
    "chaos_blackbox_postmortem",
]

"""Fault-injection testkit and deterministic multi-process stress harness.

Two halves:

* :mod:`repro.testkit.faults` — named injection points wired into the
  hot paths (pipe I/O, socket framing, semaphore acquire, the augmented
  ``os.fork``), armed by tests with seeded deterministic schedules;
* :mod:`repro.testkit.scenarios` — a runner that executes real
  multi-process topologies under a wall-clock budget and sweeps the
  process-level invariants (no leaked children, no orphaned port files,
  no armed faults escaping).

The stress tier in ``tests/stress/`` drives both; docs/GUIDE.md
("Testing & fault injection") documents the point names and the seed
model.
"""

from .faults import (
    Fault,
    FaultInjectionError,
    FaultPlan,
    FaultRegistry,
    Schedule,
    armed,
    io_fault,
    maybe_fault,
    point_seed,
    registry,
)
from .scenarios import (
    DEFAULT_BUDGET,
    ScenarioContext,
    ScenarioResult,
    ScenarioRunner,
)

__all__ = [
    "DEFAULT_BUDGET",
    "Fault",
    "FaultInjectionError",
    "FaultPlan",
    "FaultRegistry",
    "ScenarioContext",
    "ScenarioResult",
    "ScenarioRunner",
    "Schedule",
    "armed",
    "io_fault",
    "maybe_fault",
    "point_seed",
    "registry",
]

"""Fault-injection registry: named injection points on the hot paths.

The debugger's robustness claims (survive ``fork``, blocked reads, dying
children) are only as good as the adversarial harness behind them.  This
module is the injection side of that harness: production code calls
:func:`io_fault` / :func:`maybe_fault` at *named injection points* — the
pipe write loop, the socket frame reader, the augmented ``os.fork`` — and
tests arm those points with :class:`Fault` actions driven by a seeded,
fully deterministic :class:`Schedule`.

Design constraints:

* **Near-zero cost when disarmed.**  Every hook is on a hot path (every
  queue ``put`` crosses ``mp.pipe.write``), so the disarmed fast path is
  a single module-global dict emptiness check.
* **Deterministic.**  A schedule decides from the point's *hit counter*
  whether a given hit fires.  Seeded schedules draw from
  ``random.Random(seed)``, so the same seed always yields the same fault
  sequence — the property the stress tier asserts.
* **Fork-transparent.**  The registry is ordinary process memory: a
  forked child inherits the armed plan (hit counters included), which is
  exactly what child-side injection (die mid-handshake, EINTR in the
  worker loop) needs.

Injection-point names are dotted strings owned by the instrumented
module (``mp.pipe.write``, ``net.frame.recv``, ``fork.os_fork``...); the
full list lives in docs/GUIDE.md, "Testing & fault injection".
"""

from __future__ import annotations

import contextlib
import errno
import os
import random
import signal as _signal
import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..util.errors import ReproError

__all__ = [
    "Fault", "FaultInjectionError", "FaultPlan", "FaultRegistry",
    "Schedule", "armed", "fire", "io_fault", "maybe_fault", "registry",
]


class FaultInjectionError(ReproError):
    """Misuse of the fault-injection API (not an *injected* fault)."""


# ---------------------------------------------------------------------------
# Fault actions


@dataclass(frozen=True)
class Fault:
    """One injectable failure.  Built via the class-method constructors.

    ``kind`` is one of:

    * ``raise``   — raise a fresh exception from ``make_exc``;
    * ``eintr``   — raise :class:`InterruptedError` (EINTR);
    * ``partial`` — clamp the current I/O operation to ``limit`` bytes
      (only meaningful at :func:`io_fault` sites);
    * ``delay``   — sleep ``seconds`` then proceed normally;
    * ``exit``    — ``os._exit(code)`` the calling process (a child dying
      at the worst possible moment);
    * ``kill``    — send ``signum`` to the calling process.
    """

    kind: str
    make_exc: Optional[Callable[[], BaseException]] = None
    limit: int = 1
    seconds: float = 0.0
    code: int = 1
    signum: int = int(_signal.SIGKILL)

    # -- constructors -------------------------------------------------------

    @classmethod
    def raises(cls, make_exc: Callable[[], BaseException]) -> "Fault":
        return cls(kind="raise", make_exc=make_exc)

    @classmethod
    def os_error(cls, err: int, message: str = "injected") -> "Fault":
        return cls.raises(lambda: OSError(err, message))

    @classmethod
    def eintr(cls) -> "Fault":
        return cls(kind="eintr")

    @classmethod
    def partial(cls, limit: int = 1) -> "Fault":
        if limit < 1:
            raise FaultInjectionError("partial I/O limit must be >= 1")
        return cls(kind="partial", limit=limit)

    @classmethod
    def delay(cls, seconds: float) -> "Fault":
        return cls(kind="delay", seconds=seconds)

    @classmethod
    def exit(cls, code: int = 1) -> "Fault":
        return cls(kind="exit", code=code)

    @classmethod
    def kill(cls, signum: int = int(_signal.SIGKILL)) -> "Fault":
        return cls(kind="kill", signum=signum)

    # -- application --------------------------------------------------------

    def apply(self) -> None:
        """Apply at a non-I/O site: raise, sleep, or kill the process."""
        if self.kind == "raise":
            raise self.make_exc()  # type: ignore[misc]
        if self.kind == "eintr":
            raise InterruptedError(errno.EINTR, "injected EINTR")
        if self.kind == "delay":
            time.sleep(self.seconds)
            return
        if self.kind == "exit":
            os._exit(self.code)
        if self.kind == "kill":
            os.kill(os.getpid(), self.signum)
            return
        # "partial" degrades to a no-op away from an I/O site.

    def apply_io(self, nbytes: int) -> int:
        """Apply at an I/O site: raise, or return the clamped byte budget
        the caller may move in this one syscall."""
        if self.kind == "partial":
            return max(1, min(nbytes, self.limit))
        self.apply()
        return nbytes


# ---------------------------------------------------------------------------
# Schedules: which hits fire


class Schedule:
    """Decides, from a point's 1-based hit index, whether that hit fires.

    All deciders are pure functions of the hit index (seeded ones
    pre-draw from a private :class:`random.Random`), so a schedule's
    answer sequence is reproducible and safely shared across threads.
    """

    def __init__(self, decide: Callable[[int], bool],
                 description: str = "custom"):
        self._decide = decide
        self.description = description

    def fires(self, hit_index: int) -> bool:
        return bool(self._decide(hit_index))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Schedule {self.description}>"

    # -- constructors -------------------------------------------------------

    @classmethod
    def always(cls, limit: Optional[int] = None) -> "Schedule":
        if limit is None:
            return cls(lambda i: True, "always")
        return cls(lambda i: i <= limit, f"first {limit}")

    @classmethod
    def never(cls) -> "Schedule":
        return cls(lambda i: False, "never")

    @classmethod
    def on_hits(cls, *indices: int) -> "Schedule":
        chosen = frozenset(indices)
        return cls(lambda i: i in chosen, f"hits {sorted(chosen)}")

    @classmethod
    def every(cls, k: int, limit: Optional[int] = None) -> "Schedule":
        if k < 1:
            raise FaultInjectionError("every-k period must be >= 1")

        def decide(i: int, _k: int = k, _limit=limit) -> bool:
            if _limit is not None and i > _limit * _k:
                return False
            return i % _k == 0

        return cls(decide, f"every {k}")

    @classmethod
    def seeded(cls, seed: int, rate: float,
               limit: Optional[int] = None) -> "Schedule":
        """Bernoulli(rate) per hit, deterministic in *seed*.

        Decisions are drawn lazily but cached by hit index, so the answer
        for hit *i* is identical no matter how many times or in what
        order hits are evaluated.
        """
        if not 0.0 <= rate <= 1.0:
            raise FaultInjectionError("rate must be within [0, 1]")
        rng = random.Random(seed)
        drawn: List[bool] = []
        lock = threading.Lock()

        def decide(i: int) -> bool:
            with lock:
                while len(drawn) < i:
                    drawn.append(rng.random() < rate)
                if limit is not None and sum(drawn[:i]) > limit:
                    return False
                return drawn[i - 1]

        return cls(decide, f"seeded({seed}, rate={rate})")


def point_seed(master_seed: int, point: str) -> int:
    """Stable per-point sub-seed: same master seed + point name → same
    schedule, independent of arming order (crc32 is version-stable,
    unlike ``hash``)."""
    return (master_seed ^ zlib.crc32(point.encode("utf-8"))) & 0x7FFFFFFF


# ---------------------------------------------------------------------------
# Registry


@dataclass
class _ArmedPoint:
    fault: Fault
    schedule: Schedule
    hits: int = 0
    fires: int = 0
    #: hit indices that fired, for determinism assertions in tests.
    fire_log: List[int] = field(default_factory=list)
    lock: threading.Lock = field(default_factory=threading.Lock)


class FaultRegistry:
    """Thread-safe map of armed injection points.

    Production code consults the module-level singleton through
    :func:`fire` / :func:`io_fault` / :func:`maybe_fault`; tests arm and
    disarm points, usually through the :func:`armed` context manager or a
    :class:`FaultPlan`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._points: Dict[str, _ArmedPoint] = {}

    # -- arming -------------------------------------------------------------

    def arm(self, point: str, fault: Fault,
            schedule: Optional[Schedule] = None) -> None:
        if not point:
            raise FaultInjectionError("injection point name is empty")
        entry = _ArmedPoint(fault=fault,
                            schedule=schedule or Schedule.always())
        with self._lock:
            if point in self._points:
                raise FaultInjectionError(
                    f"injection point {point!r} is already armed")
            self._points[point] = entry

    def disarm(self, point: str) -> None:
        with self._lock:
            self._points.pop(point, None)

    def reset(self) -> None:
        """Disarm everything (test teardown safety net)."""
        with self._lock:
            self._points.clear()

    @property
    def armed_points(self) -> List[str]:
        with self._lock:
            return sorted(self._points)

    # -- the hot-path check -------------------------------------------------

    def check(self, point: str) -> Optional[Fault]:
        """Record a hit at *point*; return the fault if this hit fires."""
        with self._lock:
            entry = self._points.get(point)
        if entry is None:
            return None
        with entry.lock:
            entry.hits += 1
            hit = entry.hits
            if not entry.schedule.fires(hit):
                return None
            entry.fires += 1
            entry.fire_log.append(hit)
            return entry.fault

    # -- introspection ------------------------------------------------------

    def stats(self, point: str) -> Tuple[int, int]:
        """(hits, fires) for *point*; (0, 0) if never armed."""
        with self._lock:
            entry = self._points.get(point)
        if entry is None:
            return (0, 0)
        with entry.lock:
            return (entry.hits, entry.fires)

    def fire_log(self, point: str) -> List[int]:
        with self._lock:
            entry = self._points.get(point)
        if entry is None:
            return []
        with entry.lock:
            return list(entry.fire_log)


_registry = FaultRegistry()


def registry() -> FaultRegistry:
    """The process-wide registry the production shims consult."""
    return _registry


# -- shim entry points (what instrumented modules call) ----------------------

def fire(point: str) -> Optional[Fault]:
    """Hot-path check: None when the point is disarmed (the common case)."""
    if not _registry._points:  # noqa: SLF001 - deliberate fast path
        return None
    return _registry.check(point)


def io_fault(point: str, nbytes: int) -> int:
    """Check *point* at an I/O site.

    Returns the byte budget for this one syscall (``nbytes`` when
    disarmed, a clamped value under a ``partial`` fault) or raises the
    injected error.  Call *inside* the retry loop's ``try`` so injected
    ``EINTR`` exercises the same handler a real signal would.
    """
    fault = fire(point)
    if fault is None:
        return nbytes
    return fault.apply_io(nbytes)


def maybe_fault(point: str) -> None:
    """Check *point* at a non-I/O site; raises/sleeps/kills when armed."""
    fault = fire(point)
    if fault is not None:
        fault.apply()


@contextlib.contextmanager
def armed(point: str, fault: Fault, schedule: Optional[Schedule] = None):
    """Arm one point for the duration of a ``with`` block."""
    _registry.arm(point, fault, schedule)
    try:
        yield _registry
    finally:
        _registry.disarm(point)


# ---------------------------------------------------------------------------
# Plans: several points armed from one master seed


class FaultPlan:
    """A reproducible set of armed points derived from one master seed.

    ``spec`` maps injection-point names to ``(fault, rate)`` pairs (rate
    in [0, 1]) or to explicit ``(fault, Schedule)`` pairs.  Each rated
    point gets its own :meth:`Schedule.seeded` keyed by
    :func:`point_seed`, so plans with the same seed inject the same
    fault sequence regardless of arming order.
    """

    def __init__(self, seed: int,
                 spec: Dict[str, Tuple[Fault, object]],
                 reg: Optional[FaultRegistry] = None):
        self.seed = seed
        self.registry = reg or _registry
        self._entries: List[Tuple[str, Fault, Schedule]] = []
        for point, (fault, how) in sorted(spec.items()):
            if isinstance(how, Schedule):
                schedule = how
            else:
                schedule = Schedule.seeded(point_seed(seed, point),
                                           rate=float(how))
            self._entries.append((point, fault, schedule))
        self._armed = False
        self._final_stats: Dict[str, Tuple[int, int]] = {}
        self._final_logs: Dict[str, List[int]] = {}

    @property
    def points(self) -> List[str]:
        return [point for point, _, _ in self._entries]

    def __enter__(self) -> "FaultPlan":
        if self._armed:
            raise FaultInjectionError("plan already armed")
        armed_so_far: List[str] = []
        try:
            for point, fault, schedule in self._entries:
                self.registry.arm(point, fault, schedule)
                armed_so_far.append(point)
        except BaseException:
            for point in armed_so_far:
                self.registry.disarm(point)
            raise
        self._armed = True
        return self

    def __exit__(self, *exc_info) -> None:
        # Snapshot counters before disarming so post-run assertions can
        # still see what fired.
        self._final_stats = {p: self.registry.stats(p) for p in self.points}
        self._final_logs = {p: self.registry.fire_log(p)
                            for p in self.points}
        for point, _, _ in self._entries:
            self.registry.disarm(point)
        self._armed = False

    def stats(self) -> Dict[str, Tuple[int, int]]:
        if not self._armed:
            return dict(self._final_stats)
        return {point: self.registry.stats(point) for point in self.points}

    def fire_logs(self) -> Dict[str, List[int]]:
        if not self._armed:
            return dict(self._final_logs)
        return {point: self.registry.fire_log(point)
                for point in self.points}

"""Deterministic multi-process stress scenarios and their runner.

A *scenario* is a plain function ``body(ctx)`` that builds a real
multi-process topology — fork chains, fan-out pools, client↔server
debug sessions — usually under an armed :class:`~repro.testkit.faults.
FaultPlan`.  The :class:`ScenarioRunner` executes it under a wall-clock
budget and then sweeps the process-level invariants the paper's whole
design hinges on:

* **no leaked children** — every pid the scenario forked is reaped (and
  anything still alive after the sweep is SIGKILLed and reported);
* **no orphaned port files** — every rendezvous file the scenario
  created is gone by the end;
* **fork registry consistent** — the handler registry holds the same
  labels after the run as before it (failed forks must unwind cleanly);
* **no armed faults escape** — the global fault registry is clean.

Scenarios record soft facts in ``ctx.details`` (participating pids,
fault stats, message counts); the runner records hard *violations*.  A
scenario passes iff the violation list is empty.

Every scenario takes its randomness from ``ctx.rng`` (seeded) and its
fault schedules from :func:`~repro.testkit.faults.point_seed`, so one
seed pins the entire run — the stress tier replays a scenario twice and
asserts the injected fault sequence is byte-identical.
"""

from __future__ import annotations

import os
import random
import signal
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..util.portfile import PortFile, default_portfile_path
from . import faults

#: Default wall-clock budget per scenario (the acceptance bar is 60 s;
#: leave headroom so a pass here is a comfortable pass there).
DEFAULT_BUDGET = 45.0


@dataclass
class ScenarioResult:
    """Outcome of one seeded scenario run."""

    name: str
    seed: int
    duration: float = 0.0
    violations: List[str] = field(default_factory=list)
    details: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "ok" if self.ok else f"VIOLATIONS={self.violations}"
        return (f"<ScenarioResult {self.name} seed={self.seed} "
                f"{self.duration:.2f}s {state}>")


class ScenarioContext:
    """Hands a scenario its seeded RNG plus tracked process/file helpers.

    Everything a scenario creates through the context is swept by the
    runner afterwards, which is what turns "the test passed" into "the
    test passed *and cleaned up after a fault fired mid-run*".
    """

    def __init__(self, seed: int):
        self.seed = seed
        self.rng = random.Random(seed)
        self.details: Dict[str, Any] = {}
        self._children: List[int] = []
        self._portfiles: List[str] = []
        self._cleanups: List[Callable[[], None]] = []
        self._lock = threading.Lock()

    # -- child processes ----------------------------------------------------

    def fork(self, child_body: Callable[[], Optional[int]]) -> int:
        """Fork; the child runs *child_body* and ``os._exit``\\ s with its
        return value (``None`` → 0, uncaught exception → 70).  Returns the
        child pid in the parent and tracks it for the leak sweep."""
        pid = os.fork()
        if pid == 0:
            code = 70
            try:
                code = child_body() or 0
            except BaseException:  # noqa: BLE001 - child must report and die
                traceback.print_exc()
            finally:
                os._exit(code)
        self.track_child(pid)
        return pid

    def track_child(self, pid: int) -> None:
        with self._lock:
            self._children.append(pid)

    @property
    def children(self) -> List[int]:
        with self._lock:
            return list(self._children)

    def wait_child(self, pid: int, timeout: float = 10.0) -> Optional[int]:
        """Reap one child; returns its exit code or None on timeout."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                done, status = os.waitpid(pid, os.WNOHANG)
            except ChildProcessError:
                return None  # reaped elsewhere
            if done == pid:
                with self._lock:
                    if pid in self._children:
                        self._children.remove(pid)
                return os.waitstatus_to_exitcode(status)
            time.sleep(0.005)
        return None

    # -- port files ---------------------------------------------------------

    def portfile(self) -> PortFile:
        """A tracked rendezvous file; must be gone by scenario end."""
        path = default_portfile_path(
            f"stress-{os.getpid()}-{self.rng.randrange(1 << 30):08x}")
        with self._lock:
            self._portfiles.append(path)
        return PortFile(path)

    @property
    def portfile_paths(self) -> List[str]:
        with self._lock:
            return list(self._portfiles)

    # -- arbitrary teardown -------------------------------------------------

    def defer(self, cleanup: Callable[[], None]) -> None:
        """Run *cleanup* during the runner's sweep (LIFO), fault-proof."""
        with self._lock:
            self._cleanups.append(cleanup)

    def run_cleanups(self) -> List[str]:
        problems = []
        with self._lock:
            cleanups, self._cleanups = list(self._cleanups), []
        for cleanup in reversed(cleanups):
            try:
                cleanup()
            except BaseException as exc:  # noqa: BLE001
                problems.append(f"cleanup {cleanup!r} raised {exc!r}")
        return problems


class ScenarioRunner:
    """Runs one scenario body under a budget, then sweeps invariants."""

    def __init__(self, budget: float = DEFAULT_BUDGET):
        self.budget = budget

    def run(self, name: str, body: Callable[[ScenarioContext], None],
            seed: int, budget: Optional[float] = None) -> ScenarioResult:
        budget = budget or self.budget
        ctx = ScenarioContext(seed)
        result = ScenarioResult(name=name, seed=seed)
        start = time.monotonic()
        failure: List[BaseException] = []

        def _invoke() -> None:
            try:
                body(ctx)
            except BaseException as exc:  # noqa: BLE001 - recorded below
                failure.append(exc)

        # The body runs in a worker thread so a wedged scenario cannot
        # wedge the whole tier: the runner regains control at the budget
        # and still sweeps/kills whatever the body leaked.
        worker = threading.Thread(target=_invoke,
                                  name=f"scenario-{name}", daemon=True)
        worker.start()
        worker.join(budget)
        if worker.is_alive():
            result.violations.append(
                f"budget exceeded: still running after {budget:.0f}s")
        if failure:
            result.violations.append(
                f"scenario body raised {type(failure[0]).__name__}: "
                f"{failure[0]}")

        self._sweep(ctx, result)
        result.duration = time.monotonic() - start
        result.details.update(ctx.details)
        return result

    # -- invariant sweep ----------------------------------------------------

    def _sweep(self, ctx: ScenarioContext, result: ScenarioResult) -> None:
        result.violations.extend(ctx.run_cleanups())

        # 1. No leaked children.
        leaked = []
        for pid in ctx.children:
            code = ctx.wait_child(pid, timeout=5.0)
            if code is None and _pid_alive(pid):
                leaked.append(pid)
                try:
                    os.kill(pid, signal.SIGKILL)
                except OSError:
                    pass
                ctx.wait_child(pid, timeout=2.0)
        if leaked:
            result.violations.append(f"leaked children killed: {leaked}")

        # 2. No orphaned port files.
        orphaned = [p for p in ctx.portfile_paths if os.path.exists(p)]
        for path in orphaned:
            try:
                os.unlink(path)
            except OSError:
                pass
        if orphaned:
            result.violations.append(f"orphaned port files: {orphaned}")

        # 3. No armed faults escape into later tests.
        still_armed = faults.registry().armed_points
        if still_armed:
            faults.registry().reset()
            result.violations.append(
                f"fault points left armed: {still_armed}")


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except OSError:
        return False
    return True


# ---------------------------------------------------------------------------
# The scenario matrix: named, seed-parametric bodies the stress tier
# iterates.  Test modules register their local bodies too, so one
# registry answers "what stress coverage exists?" in one place.

#: name -> body(ctx).  Populated by :func:`register_scenario`.
SCENARIO_MATRIX: Dict[str, Callable[[ScenarioContext], None]] = {}


def register_scenario(name: str,
                      body: Optional[Callable[[ScenarioContext], None]] = None):
    """Register *body* under *name*; usable as a decorator.

    Re-registration with the same function is idempotent (test modules
    re-import); a different function under a taken name is a bug.
    """
    def _register(fn):
        existing = SCENARIO_MATRIX.get(name)
        if existing is not None and existing is not fn:
            raise ValueError(f"scenario {name!r} already registered")
        SCENARIO_MATRIX[name] = fn
        return fn
    return _register(body) if body is not None else _register


# ---------------------------------------------------------------------------
# breakpoint_churn: seeded add/remove churn against a live 3-deep fork
# tree.  Exercises the LineTable invalidation path end-to-end: every
# set/clear must invalidate the per-code cache of the process it lands
# in, every fork must invalidate the child's inherited cache, and a
# demoted main thread must re-arm in time to honour a breakpoint set
# while it was running unhooked.


def _churn_loop(n):
    total = 0
    for _i in range(n):
        total += 2              # CHURN_BP_LINE — the client's breakpoint
    return total


CHURN_BP_LINE = _churn_loop.__code__.co_firstlineno + 3


def _churn_check_loop(n):
    acc = 0
    for _i in range(n):
        acc += 3                # CHURN_CHECK_LINE — debuggees self-set here
    return acc


CHURN_CHECK_LINE = _churn_check_loop.__code__.co_firstlineno + 3


def _churn_never_called():  # pragma: no cover - decoy anchor, never runs
    marker = 0
    marker += 1                 # CHURN_DECOY_LINE — decoys land here
    return marker


CHURN_DECOY_LINE = _churn_never_called.__code__.co_firstlineno + 2
_CHURN_SRC = os.path.abspath(__file__)

CHURN_DEPTH = 3
CHURN_ITERS = 3
CHURN_SELF_HITS = 2


def _alias_spellings() -> List[str]:
    """Path-alias spellings of this file — all canonicalise identically,
    so a breakpoint set through any of them must behave like the plain
    absolute path (the property suite proves this for the LineTable;
    here it runs against live sessions)."""
    directory, name = os.path.split(_CHURN_SRC)
    parent = os.path.basename(directory)
    return [
        _CHURN_SRC,
        os.path.join(directory, ".", name),
        os.path.join(directory, "..", parent, name),
        os.path.join(os.path.dirname(directory), parent, "..", parent, name),
    ]


def _wait_for_file(path: str, timeout: float = 20.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if os.path.exists(path):
            return True
        time.sleep(0.01)
    return False


def _reap(pid: int, timeout: float = 20.0) -> Optional[int]:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        done, status = os.waitpid(pid, os.WNOHANG)
        if done == pid:
            return os.waitstatus_to_exitcode(status)
        time.sleep(0.01)
    return None


@register_scenario("breakpoint_churn")
def breakpoint_churn(ctx: ScenarioContext) -> None:
    """Seeded breakpoint add/remove schedule against a 3-deep fork tree.

    Topology: one forked debuggee runs a Dionea facade and builds a
    root → child → grandchild chain; each level gates on its own go-file,
    runs the breakpointed loop (the client must observe exactly
    ``CHURN_ITERS`` stops), then self-sets a private breakpoint on a
    second loop, verifies its ``hit_count``, removes it, and forks the
    next level.  Meanwhile the client churns: per level it clears every
    inherited breakpoint, adds/removes a seeded batch of decoys (alias
    spellings at a never-executed line, plus nonexistent files), and sets
    the real breakpoint through a seeded alias spelling.
    """
    from ..client import DebugClient
    from ..core import Dionea

    portfile = ctx.portfile()
    ctx.defer(portfile.remove)

    def go_path(level: int) -> str:
        return f"{portfile.path}.go{level}"

    def ack_path(level: int) -> str:
        return f"{portfile.path}.ack{level}"

    for level in range(1, CHURN_DEPTH + 1):
        for path in (go_path(level), ack_path(level)):
            ctx.defer(lambda p=path: os.path.exists(p) and os.unlink(p))

    def debuggee() -> int:
        faults.registry().reset()
        debugger = Dionea(program="stress-churn", portfile_path=portfile.path,
                          park_timeout=30.0)
        debugger.start()

        def run_level(level: int) -> int:
            if not _wait_for_file(go_path(level)):
                return 10 + level
            if _churn_loop(CHURN_ITERS) != 2 * CHURN_ITERS:
                return 20 + level
            # Post-churn self-check: a breakpoint added by the debuggee
            # itself (after the client's add/remove storm and, below
            # level 1, after a fork) must still stop and count hits —
            # i.e. the LineTable rebuilt and the main thread re-armed.
            engine = debugger.server.engine
            bp = engine.breakpoints.add(_CHURN_SRC, CHURN_CHECK_LINE)
            check = _churn_check_loop(CHURN_SELF_HITS)
            engine.breakpoints.remove(bp.id)
            if check != 3 * CHURN_SELF_HITS or bp.hit_count != CHURN_SELF_HITS:
                return 30 + level
            # Hold this level's server open until the client has read its
            # breakpoint table — exiting on the heels of the last resume
            # would race the verification step.
            if not _wait_for_file(ack_path(level)):
                return 50 + level
            if level < CHURN_DEPTH:
                pid = os.fork()
                if pid == 0:
                    os._exit(run_level(level + 1))
                code = _reap(pid)
                if code != 0:
                    return 40 + level
            return 0

        code = run_level(1)
        debugger.stop()
        return code

    root = ctx.fork(debuggee)

    stops: Dict[Any, int] = {}
    stop_lock = threading.Lock()

    def auto_continue(view) -> None:
        capture = view.capture
        line = capture.top.line if capture and capture.top else None
        with stop_lock:
            key = (view.ue.pid, line)
            stops[key] = stops.get(key, 0) + 1
        # Release from a fresh thread: on_stop runs on the client's
        # event thread, which must stay free to process the resume reply.
        threading.Thread(target=view.cont, daemon=True).start()

    def stop_count(pid: int, line: int) -> int:
        with stop_lock:
            return stops.get((pid, line), 0)

    def wait_stops(pid: int, line: int, want: int, timeout: float = 20.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if stop_count(pid, line) >= want:
                return
            time.sleep(0.01)
        raise AssertionError(
            f"pid {pid} produced {stop_count(pid, line)}/{want} stops "
            f"at line {line}; all stops: {dict(stops)}")

    def wait_descendant(parent_pid: int, timeout: float = 20.0) -> int:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            for rec in portfile.read_all():
                if rec.parent_pid == parent_pid:
                    return rec.pid
            time.sleep(0.02)
        raise AssertionError(f"no descendant of {parent_pid} announced")

    client = DebugClient(on_stop=auto_continue)
    ctx.defer(client.close)
    client.watch_portfile(portfile)

    aliases = _alias_spellings()
    churn_log = []
    pid = root
    for level in range(1, CHURN_DEPTH + 1):
        if level > 1:
            pid = wait_descendant(pid)
        session = client.session_for_pid(pid, timeout=20.0)
        # Start from a clean slate: clear whatever this level inherited
        # (each clear_break must invalidate the child's LineTable too).
        for row in session.request("breaks"):
            session.request("clear_break", {"id": row["id"]})
        # Seeded decoy churn: aliases at a line that never executes plus
        # files that do not exist — invalidation traffic, zero stops.
        decoys = []
        for _ in range(ctx.rng.randint(2, 4)):
            if ctx.rng.random() < 0.5:
                target = {"file": ctx.rng.choice(aliases),
                          "line": CHURN_DECOY_LINE}
            else:
                target = {"file": f"/dionea/stress/none_"
                                  f"{ctx.rng.randrange(1 << 20):05x}.py",
                          "line": 1}
            decoys.append(session.request("set_break", target)["id"])
        ctx.rng.shuffle(decoys)
        for bp_id in decoys[:ctx.rng.randint(0, len(decoys))]:
            session.request("clear_break", {"id": bp_id})
        # The real breakpoint, through a seeded alias spelling.
        real = session.request("set_break",
                               {"file": ctx.rng.choice(aliases),
                                "line": CHURN_BP_LINE})
        with open(go_path(level), "w", encoding="utf-8") as fh:
            fh.write("go")
        wait_stops(pid, CHURN_BP_LINE, CHURN_ITERS)
        wait_stops(pid, CHURN_CHECK_LINE, CHURN_SELF_HITS)
        table = {row["id"]: row for row in session.request("breaks")}
        assert table[real["id"]]["hit_count"] == CHURN_ITERS, \
            f"level {level}: real breakpoint hit_count wrong: {table}"
        churn_log.append({"level": level, "pid": pid,
                          "decoys": len(decoys),
                          "hits": table[real["id"]]["hit_count"]})
        with open(ack_path(level), "w", encoding="utf-8") as fh:
            fh.write("ack")

    code = ctx.wait_child(root, timeout=25.0)
    assert code == 0, f"debuggee tree exited {code} (see level encoding)"
    ctx.details["churn_log"] = churn_log
    ctx.details["stops"] = {f"{p}:{ln}": n
                            for (p, ln), n in sorted(stops.items())}


# ---------------------------------------------------------------------------
# prefork_fleet: gunicorn-style master + N workers, one debug client
# multiplexing every session on one reactor.  The fleet-scale claims the
# client makes in unit/integration tests are re-proven here against real
# processes: auto-attach to the whole tree, O(1) client threads however
# many workers attach, and scatter-gather sweeps that cover every pid.

#: worker count knob — the stress tier default stays small so one seed
#: run fits the budget; the fleet benchmark raises it into the hundreds.
FLEET_WORKERS_ENV = "DIONEA_FLEET_WORKERS"
FLEET_DEFAULT_WORKERS = 8


def _fleet_traffic(n: int) -> int:
    total = 0
    for i in range(n):
        total += i % 7          # synthetic request handling, traceable
    return total


@register_scenario("prefork_fleet")
def prefork_fleet(ctx: ScenarioContext) -> None:
    """Master forks N workers; the client debugs the whole fleet at once.

    Topology mirrors a prefork WSGI server: a master under a Dionea
    facade forks ``DIONEA_FLEET_WORKERS`` children (each inheriting a
    debug server via the fork handlers), every worker serves synthetic
    traffic until a stop file appears, and the master reaps them all.
    The client auto-attaches via the rendezvous file and must observe:

    * a session per process (master + N workers) — attach keeps up with
      the fork storm;
    * a constant number of client-side threads (the single-reactor
      property, measured while the fleet is live);
    * cluster sweeps (``status`` fan-out + ``cluster_telemetry``) that
      cover every pid with zero holes while all workers are healthy.
    """
    from ..client import DebugClient
    from ..core import Dionea

    workers = int(os.environ.get(FLEET_WORKERS_ENV, FLEET_DEFAULT_WORKERS))
    portfile = ctx.portfile()
    ctx.defer(portfile.remove)
    stop_path = f"{portfile.path}.stop"
    ctx.defer(lambda: os.path.exists(stop_path) and os.unlink(stop_path))

    def master() -> int:
        faults.registry().reset()
        debugger = Dionea(program="fleet-master",
                          portfile_path=portfile.path, park_timeout=30.0)
        debugger.start()

        def worker() -> int:
            while not os.path.exists(stop_path):
                _fleet_traffic(50)
                time.sleep(0.01)
            return 0

        children = []
        for _ in range(workers):
            pid = os.fork()
            if pid == 0:
                code = 70
                try:
                    code = worker()
                finally:
                    os._exit(code)
            children.append(pid)
        bad = sum(1 for pid in children if _reap(pid, timeout=40.0) != 0)
        debugger.stop()
        return bad

    root = ctx.fork(master)

    client = DebugClient()
    ctx.defer(client.close)
    client.watch_portfile(portfile)

    want = workers + 1  # master announces too
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline and len(client.sessions()) < want:
        time.sleep(0.05)
    attached = len(client.sessions())
    assert attached == want, \
        f"only {attached}/{want} sessions attached within 30s"

    # The single-reactor property, measured against a LIVE fleet: the
    # client's thread bill is the loop + the dispatcher, not O(workers).
    fleet_threads = [t.name for t in threading.enumerate()
                     if t.name.startswith("dionea-")]
    assert len(fleet_threads) <= 2, \
        f"client thread count grew with the fleet: {fleet_threads}"

    sweep_log = []
    for _sweep in range(3):
        started = time.monotonic()
        results, errors = client.cluster_request("status", timeout=15.0)
        elapsed = time.monotonic() - started
        assert errors == {}, f"healthy fleet produced holes: {errors}"
        assert len(results) == want, \
            f"sweep covered {len(results)}/{want} pids"
        sweep_log.append(round(elapsed, 4))
    snapshot = client.cluster_telemetry(timeout=15.0, include_client=False)
    assert len(snapshot["processes"]) == want
    assert "errors" not in snapshot
    assert snapshot["fleet"]["sessions"] == want

    with open(stop_path, "w", encoding="utf-8") as fh:
        fh.write("stop")
    code = ctx.wait_child(root, timeout=40.0)
    assert code == 0, f"master reported {code} failed workers"
    ctx.details["workers"] = workers
    ctx.details["client_threads"] = fleet_threads
    ctx.details["sweep_seconds"] = sweep_log

"""Deterministic multi-process stress scenarios and their runner.

A *scenario* is a plain function ``body(ctx)`` that builds a real
multi-process topology — fork chains, fan-out pools, client↔server
debug sessions — usually under an armed :class:`~repro.testkit.faults.
FaultPlan`.  The :class:`ScenarioRunner` executes it under a wall-clock
budget and then sweeps the process-level invariants the paper's whole
design hinges on:

* **no leaked children** — every pid the scenario forked is reaped (and
  anything still alive after the sweep is SIGKILLed and reported);
* **no orphaned port files** — every rendezvous file the scenario
  created is gone by the end;
* **fork registry consistent** — the handler registry holds the same
  labels after the run as before it (failed forks must unwind cleanly);
* **no armed faults escape** — the global fault registry is clean.

Scenarios record soft facts in ``ctx.details`` (participating pids,
fault stats, message counts); the runner records hard *violations*.  A
scenario passes iff the violation list is empty.

Every scenario takes its randomness from ``ctx.rng`` (seeded) and its
fault schedules from :func:`~repro.testkit.faults.point_seed`, so one
seed pins the entire run — the stress tier replays a scenario twice and
asserts the injected fault sequence is byte-identical.
"""

from __future__ import annotations

import os
import random
import signal
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..util.portfile import PortFile, default_portfile_path
from . import faults

#: Default wall-clock budget per scenario (the acceptance bar is 60 s;
#: leave headroom so a pass here is a comfortable pass there).
DEFAULT_BUDGET = 45.0


@dataclass
class ScenarioResult:
    """Outcome of one seeded scenario run."""

    name: str
    seed: int
    duration: float = 0.0
    violations: List[str] = field(default_factory=list)
    details: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "ok" if self.ok else f"VIOLATIONS={self.violations}"
        return (f"<ScenarioResult {self.name} seed={self.seed} "
                f"{self.duration:.2f}s {state}>")


class ScenarioContext:
    """Hands a scenario its seeded RNG plus tracked process/file helpers.

    Everything a scenario creates through the context is swept by the
    runner afterwards, which is what turns "the test passed" into "the
    test passed *and cleaned up after a fault fired mid-run*".
    """

    def __init__(self, seed: int):
        self.seed = seed
        self.rng = random.Random(seed)
        self.details: Dict[str, Any] = {}
        self._children: List[int] = []
        self._portfiles: List[str] = []
        self._cleanups: List[Callable[[], None]] = []
        self._lock = threading.Lock()

    # -- child processes ----------------------------------------------------

    def fork(self, child_body: Callable[[], Optional[int]]) -> int:
        """Fork; the child runs *child_body* and ``os._exit``\\ s with its
        return value (``None`` → 0, uncaught exception → 70).  Returns the
        child pid in the parent and tracks it for the leak sweep."""
        pid = os.fork()
        if pid == 0:
            code = 70
            try:
                code = child_body() or 0
            except BaseException:  # noqa: BLE001 - child must report and die
                traceback.print_exc()
            finally:
                os._exit(code)
        self.track_child(pid)
        return pid

    def track_child(self, pid: int) -> None:
        with self._lock:
            self._children.append(pid)

    @property
    def children(self) -> List[int]:
        with self._lock:
            return list(self._children)

    def wait_child(self, pid: int, timeout: float = 10.0) -> Optional[int]:
        """Reap one child; returns its exit code or None on timeout."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                done, status = os.waitpid(pid, os.WNOHANG)
            except ChildProcessError:
                return None  # reaped elsewhere
            if done == pid:
                with self._lock:
                    if pid in self._children:
                        self._children.remove(pid)
                return os.waitstatus_to_exitcode(status)
            time.sleep(0.005)
        return None

    # -- port files ---------------------------------------------------------

    def portfile(self) -> PortFile:
        """A tracked rendezvous file; must be gone by scenario end."""
        path = default_portfile_path(
            f"stress-{os.getpid()}-{self.rng.randrange(1 << 30):08x}")
        with self._lock:
            self._portfiles.append(path)
        return PortFile(path)

    @property
    def portfile_paths(self) -> List[str]:
        with self._lock:
            return list(self._portfiles)

    # -- arbitrary teardown -------------------------------------------------

    def defer(self, cleanup: Callable[[], None]) -> None:
        """Run *cleanup* during the runner's sweep (LIFO), fault-proof."""
        with self._lock:
            self._cleanups.append(cleanup)

    def run_cleanups(self) -> List[str]:
        problems = []
        with self._lock:
            cleanups, self._cleanups = list(self._cleanups), []
        for cleanup in reversed(cleanups):
            try:
                cleanup()
            except BaseException as exc:  # noqa: BLE001
                problems.append(f"cleanup {cleanup!r} raised {exc!r}")
        return problems


class ScenarioRunner:
    """Runs one scenario body under a budget, then sweeps invariants."""

    def __init__(self, budget: float = DEFAULT_BUDGET):
        self.budget = budget

    def run(self, name: str, body: Callable[[ScenarioContext], None],
            seed: int, budget: Optional[float] = None) -> ScenarioResult:
        budget = budget or self.budget
        ctx = ScenarioContext(seed)
        result = ScenarioResult(name=name, seed=seed)
        start = time.monotonic()
        failure: List[BaseException] = []

        def _invoke() -> None:
            try:
                body(ctx)
            except BaseException as exc:  # noqa: BLE001 - recorded below
                failure.append(exc)

        # The body runs in a worker thread so a wedged scenario cannot
        # wedge the whole tier: the runner regains control at the budget
        # and still sweeps/kills whatever the body leaked.
        worker = threading.Thread(target=_invoke,
                                  name=f"scenario-{name}", daemon=True)
        worker.start()
        worker.join(budget)
        if worker.is_alive():
            result.violations.append(
                f"budget exceeded: still running after {budget:.0f}s")
        if failure:
            result.violations.append(
                f"scenario body raised {type(failure[0]).__name__}: "
                f"{failure[0]}")

        self._sweep(ctx, result)
        result.duration = time.monotonic() - start
        result.details.update(ctx.details)
        return result

    # -- invariant sweep ----------------------------------------------------

    def _sweep(self, ctx: ScenarioContext, result: ScenarioResult) -> None:
        result.violations.extend(ctx.run_cleanups())

        # 1. No leaked children.
        leaked = []
        for pid in ctx.children:
            code = ctx.wait_child(pid, timeout=5.0)
            if code is None and _pid_alive(pid):
                leaked.append(pid)
                try:
                    os.kill(pid, signal.SIGKILL)
                except OSError:
                    pass
                ctx.wait_child(pid, timeout=2.0)
        if leaked:
            result.violations.append(f"leaked children killed: {leaked}")

        # 2. No orphaned port files.
        orphaned = [p for p in ctx.portfile_paths if os.path.exists(p)]
        for path in orphaned:
            try:
                os.unlink(path)
            except OSError:
                pass
        if orphaned:
            result.violations.append(f"orphaned port files: {orphaned}")

        # 3. No armed faults escape into later tests.
        still_armed = faults.registry().armed_points
        if still_armed:
            faults.registry().reset()
            result.violations.append(
                f"fault points left armed: {still_armed}")


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except OSError:
        return False
    return True

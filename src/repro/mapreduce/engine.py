"""The MapReduce engine of paper sections 6.3 and 7.

Runs a map function over inputs on N forked workers (shared input/output
queues, as Fig. 8 describes), shuffles by key, then reduces each bucket —
all on :mod:`repro.mp`, so every spawn goes through the (possibly
augmented) fork and every payload moves as pickle through
semaphore-and-pipe queues.  This is the program the §7 overhead
benchmarks time with and without an attached Dionea.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from ..mp.pool import Pool
from ..util.errors import PoolError


@dataclass(frozen=True)
class MapReduceJob:
    """A job is its two phase functions (top-level, picklable)."""

    map_func: Callable[[Any], Dict[str, Any]]
    reduce_func: Callable[[str, List[Any]], Any]
    name: str = "mapreduce"


@dataclass
class MapReduceStats:
    """Execution accounting the benchmarks report alongside timings."""

    inputs: int = 0
    map_tasks: int = 0
    reduce_tasks: int = 0
    distinct_keys: int = 0
    worker_pids: List[int] = field(default_factory=list)
    map_worker_spread: Dict[int, int] = field(default_factory=dict)


def _reduce_bucket(job_reduce: Callable, bucket: List[Tuple[str, List[Any]]]
                   ) -> Dict[str, Any]:
    """Top-level reducer-bucket runner (picklable)."""
    return {key: job_reduce(key, values) for key, values in bucket}


class MapReduceEngine:
    """Fork-based MapReduce over shared queues."""

    def __init__(self, n_workers: Optional[int] = None,
                 chunksize: int = 4,
                 n_partitions: Optional[int] = None):
        if n_workers is None:
            n_workers = os.cpu_count() or 4
        if n_workers < 1:
            raise PoolError("need at least one worker")
        self.n_workers = n_workers
        self.chunksize = max(1, chunksize)
        self.n_partitions = n_partitions or self.n_workers
        self.last_stats: Optional[MapReduceStats] = None

    def run(self, job: MapReduceJob,
            inputs: Iterable[Any],
            timeout: Optional[float] = None) -> Dict[str, Any]:
        """Execute *job* over *inputs*; returns the merged reduce output."""
        from .partition import shuffle  # local: keep import cycle-free

        items = list(inputs)
        stats = MapReduceStats(inputs=len(items))

        with Pool(self.n_workers) as pool:
            stats.worker_pids = pool.worker_pids()

            # Map phase: chunked fan-out over the shared task queue.
            chunks = [items[i:i + self.chunksize]
                      for i in range(0, len(items), self.chunksize)]
            stats.map_tasks = len(chunks)
            handles = [pool.apply_async(_map_chunk, (job.map_func, chunk))
                       for chunk in chunks]
            partials: List[Dict[str, Any]] = []
            for handle in handles:
                chunk_partials = handle.get(timeout)
                partials.extend(chunk_partials)
                pid = handle.worker_pid
                if pid is not None:
                    stats.map_worker_spread[pid] = (
                        stats.map_worker_spread.get(pid, 0) + 1)

            # Shuffle: deterministic key → bucket assignment.
            buckets = shuffle(partials, self.n_partitions)
            stats.reduce_tasks = sum(1 for b in buckets if b)

            # Reduce phase: one task per non-empty bucket.
            reduce_handles = [
                pool.apply_async(_reduce_bucket, (job.reduce_func, bucket))
                for bucket in buckets if bucket
            ]
            merged: Dict[str, Any] = {}
            for handle in reduce_handles:
                merged.update(handle.get(timeout))

        stats.distinct_keys = len(merged)
        self.last_stats = stats
        return merged


def _map_chunk(map_func: Callable, chunk: List[Any]) -> List[Dict[str, Any]]:
    """Top-level mapper-chunk runner (picklable)."""
    return [map_func(item) for item in chunk]


def run_wordcount(documents: Iterable[Tuple[str, str]],
                  n_workers: int = 4,
                  chunksize: int = 4,
                  timeout: Optional[float] = None) -> Dict[str, int]:
    """Convenience wrapper: the paper's word-count job end to end."""
    from .wordcount import map_wordcount, reduce_wordcount
    engine = MapReduceEngine(n_workers=n_workers, chunksize=chunksize)
    job = MapReduceJob(map_func=map_wordcount,
                       reduce_func=reduce_wordcount,
                       name="wordcount")
    return engine.run(job, documents, timeout=timeout)

"""Shuffle-phase partitioning: stable key → reducer-bucket assignment.

``hash()`` is randomized per process (PYTHONHASHSEED), and the map and
reduce phases may run in *different* processes — so the partitioner must
be a deterministic content hash, not the builtin.  CRC-32 over the UTF-8
key bytes is stable everywhere and runs in C, which matters twice: the
shuffle touches every distinct key once per mapper output, and under the
debugger every *Python*-level loop runs in the interpreter's de-optimised
tracing mode.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple, TypeVar
from zlib import crc32

V = TypeVar("V")


def stable_hash(key: str) -> int:
    """Deterministic 32-bit hash of the key (CRC-32 of its UTF-8 bytes)."""
    return crc32(key.encode("utf-8"))


def partition_for(key: str, n_partitions: int) -> int:
    if n_partitions < 1:
        raise ValueError("n_partitions must be >= 1")
    return crc32(key.encode("utf-8")) % n_partitions


def shuffle(partials: Iterable[Dict[str, V]], n_partitions: int
            ) -> List[List[Tuple[str, List[V]]]]:
    """Group mapped values by key into *n_partitions* reducer inputs.

    Returns one bucket per partition; each bucket is a list of
    ``(key, [values...])`` pairs sorted by key, so reducers see
    deterministic input regardless of mapper completion order.

    The inner loop is deliberately lean (locals only, C hashing): it runs
    once per (mapper, key) pair and sits on the §7 benchmark's traced
    path in the parent process.
    """
    if n_partitions < 1:
        raise ValueError("n_partitions must be >= 1")
    grouped: List[Dict[str, List[V]]] = [dict() for _ in range(n_partitions)]
    _crc32 = crc32
    for partial in partials:
        for key, value in partial.items():
            bucket = grouped[_crc32(key.encode("utf-8")) % n_partitions]
            values = bucket.get(key)
            if values is None:
                bucket[key] = [value]
            else:
                values.append(value)
    return [sorted(bucket.items()) for bucket in grouped]

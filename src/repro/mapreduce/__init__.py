"""MapReduce on forked workers (paper sections 6.3 and 7)."""

from .engine import MapReduceEngine, MapReduceJob, MapReduceStats, run_wordcount
from .partition import partition_for, shuffle, stable_hash
from .wordcount import (
    map_wordcount,
    merge_counts,
    reduce_wordcount,
    tokenize,
    top_words,
)

__all__ = [
    "MapReduceEngine", "MapReduceJob", "MapReduceStats", "run_wordcount",
    "partition_for", "shuffle", "stable_hash",
    "map_wordcount", "merge_counts", "reduce_wordcount", "tokenize",
    "top_words",
]

"""The §6.3 / §7 word-count job.

*"This program maps words that contain only letters and are not reserved
words, then the program reduces the values obtained in the map phase to
calculate the frequency of each word."*

Pure functions, top-level so they pickle across the task queue.
"""

from __future__ import annotations

import re
from collections import Counter
from itertools import filterfalse
from typing import Dict, Iterable, List, Tuple

from ..corpus.reserved import RESERVED_WORDS

#: Letter runs — automatically "only letters"; the reserved filter is a
#: set lookup on top.
_WORD_RE = re.compile(r"[A-Za-z]+")

#: C-level building blocks: ``frozenset.__contains__`` fed to
#: ``itertools.filterfalse`` filters an entire token stream without a
#: Python-level loop, which matters under the debugger — CPython runs
#: every *Python* loop in de-optimised tracing mode while a trace
#: function is installed, but C loops are unaffected.
_is_reserved = RESERVED_WORDS.__contains__


def tokenize(text: str) -> List[str]:
    """Countable words of *text*: letter-only tokens minus reserved words."""
    return list(filterfalse(_is_reserved, _WORD_RE.findall(text)))


def map_wordcount(document: Tuple[str, str]) -> Dict[str, int]:
    """Map phase: (path, text) → partial frequency table.

    The per-document body is deliberately C-level end to end (regex scan,
    frozenset filter, Counter): under CPython's tracing mode any Python
    inner loop runs de-optimised (~2x), which would swamp the debugger
    overhead the §7 benchmarks isolate.  The remaining traced Python in
    the workload is the process/queue machinery itself — the same layer
    Fig. 8 shows Dionea stepping through.
    """
    _path, text = document
    return dict(Counter(filterfalse(_is_reserved,
                                    _WORD_RE.findall(text))))


def reduce_wordcount(key: str, values: Iterable[int]) -> int:
    """Reduce phase: merge per-document counts for one word."""
    return sum(values)


def merge_counts(partials: Iterable[Dict[str, int]]) -> Dict[str, int]:
    """Serial reference combiner (used by tests as the ground truth)."""
    total: Counter = Counter()
    for partial in partials:
        total.update(partial)
    return dict(total)


def top_words(frequencies: Dict[str, int], n: int = 10
              ) -> List[Tuple[str, int]]:
    """Most frequent words, ties broken alphabetically (deterministic)."""
    return sorted(frequencies.items(), key=lambda kv: (-kv[1], kv[0]))[:n]

"""repro — reproduction of "Debugging parallel programs using fork handlers".

A Dionea-style low-intrusive debugger for multi-process Python programs,
plus the substrates its evaluation runs on.  See DESIGN.md for the system
inventory and EXPERIMENTS.md for the paper-vs-measured record.

Public API highlights
---------------------

* :class:`repro.core.Dionea` — facade: start a debug server in-process,
  patch fork, rendezvous children with the client.
* :class:`repro.client.DebugClient` — 1-client : N-servers session manager.
* :mod:`repro.mp` — process-based "threading" substrate (Process, Queue,
  Lock, Pool, ...).
* :mod:`repro.mapreduce` — the paper's MapReduce word-count workload.
* :mod:`repro.workerpool` — the parallel-gem analogue with the §6.4 bug.
* :mod:`repro.corpus` — deterministic corpora for the §7 benchmarks.
"""

from ._version import __version__

# Re-export the facade and client at the top level; heavyweight
# subpackages (mp, mapreduce, workerpool, corpus) are imported lazily by
# users who need them.
from .core.dionea import Dionea, current_dionea
from .client.client import DebugClient
from .client.shell import Shell

__all__ = ["__version__", "Dionea", "current_dionea", "DebugClient",
           "Shell"]

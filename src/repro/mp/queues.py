"""Queues: the paper's "semaphore and a pipe" (section 6.3).

*"the parent and the worker processes share the same input and output
queues.  The queue is implemented using a semaphore and a pipe.
Functions or methods to be executed by the child process are passed from
parent to child via queues encoded using pickle."*

:class:`Queue` is exactly that construction:

* a **pipe** carries pickled frames (:mod:`repro.mp.reduction`);
* an **items semaphore** counts readable frames, so ``get`` blocks on the
  semaphore — never on a half-frame;
* reader/writer **locks** (binary pipe semaphores) keep concurrent
  ``get``/``put`` calls from interleaving frames;
* an optional **slots semaphore** bounds capacity.

:class:`ThreadQueue` is the *inter-thread* queue of section 6.2's Listing
5 — a deliberately process-LOCAL object (like Ruby's ``Queue``) whose
misuse across ``fork`` is the paper's showcase deadlock.  It reports its
blocking waits to the deadlock detector so Dionea can display the exact
line of the hang (Fig. 7).
"""

from __future__ import annotations

import os
import queue as _stdlib_queue
import threading
from typing import Any, Optional

from ..obs import metrics as obs_metrics
from ..util.errors import QueueClosed
from ..util.ids import UEId
from . import reduction
from .synchronize import Lock, Semaphore, _deadlock_graph


class Queue:
    """Inter-process FIFO: pipe + semaphore, pickle-encoded."""

    _COUNTER = 0
    _COUNTER_LOCK = threading.Lock()

    def __init__(self, maxsize: int = 0, name: Optional[str] = None):
        with Queue._COUNTER_LOCK:
            Queue._COUNTER += 1
            seq = Queue._COUNTER
        self.name = name or f"queue-{os.getpid()}-{seq}"
        self._read_fd, self._write_fd = os.pipe()
        # The items semaphore is *fair*: without it, a consumer already
        # hot in its get-loop drains every token before a just-forked
        # sibling is even scheduled, and "N children share one queue"
        # degenerates to one child doing all the work.  (Audit note: the
        # locks themselves are pipe-token semaphores and therefore
        # fork-safe — the inherited-state bug is starvation, not a held
        # lock.)  See repro.mp.synchronize for the grace-window model.
        self._items = Semaphore(0, name=f"{self.name}.items", fair=True)
        self._slots = (Semaphore(maxsize, name=f"{self.name}.slots")
                       if maxsize > 0 else None)
        self._rlock = Lock(name=f"{self.name}.rlock")
        self._wlock = Lock(name=f"{self.name}.wlock")
        self.maxsize = maxsize
        self._closed = False
        #: cumulative bytes through the pipe; read by the benchmarks.
        self.bytes_sent = 0

    # -- producing ----------------------------------------------------------------

    def put(self, obj: Any, block: bool = True,
            timeout: Optional[float] = None) -> None:
        if self._closed:
            raise QueueClosed(f"{self.name} is closed")
        if self._slots is not None:
            if not self._slots.acquire(blocking=block, timeout=timeout):
                raise _stdlib_queue.Full(self.name)
        obs_metrics.inc("mp.queue.put_ops")
        payload = reduction.dumps(obj)
        with self._wlock:
            # Release the item token BEFORE writing the frame: a frame
            # larger than the kernel pipe buffer can only complete once a
            # reader starts draining, and readers gate on this semaphore.
            # The token therefore means "a frame is committed and being
            # written"; the pipe's own flow control does the rest.  A
            # failure mid-write tears the frame stream, so the queue is
            # poisoned (closed) rather than left misframed.
            self._items.release()
            try:
                self.bytes_sent += reduction.send_payload(
                    self._write_fd, payload)
            except BaseException:
                self._closed = True
                raise

    def put_nowait(self, obj: Any) -> None:
        self.put(obj, block=False)

    # -- consuming ----------------------------------------------------------------

    def get(self, block: bool = True,
            timeout: Optional[float] = None) -> Any:
        if self._closed:
            raise QueueClosed(f"{self.name} is closed")
        # Blocking happens on the items semaphore, which reports the wait
        # (with the user's source line) to the deadlock detector.
        if not self._items.acquire(blocking=block, timeout=timeout):
            raise _stdlib_queue.Empty(self.name)
        obs_metrics.inc("mp.queue.get_ops")
        try:
            with self._rlock:
                obj = reduction.recv_obj(self._read_fd)
        except BaseException:
            self._items.release()  # the frame is still in the pipe
            raise
        if self._slots is not None:
            self._slots.release()
        return obj

    def get_nowait(self) -> Any:
        return self.get(block=False)

    # -- introspection --------------------------------------------------------------

    def qsize(self) -> int:
        """Approximate item count (exact between operations)."""
        return self._items.value()

    def empty(self) -> bool:
        return self.qsize() == 0

    def full(self) -> bool:
        if self._slots is None:
            return False
        return self._slots.value() == 0

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for fd in (self._read_fd, self._write_fd):
            try:
                os.close(fd)
            except OSError:
                pass
        self._items.close()
        if self._slots is not None:
            self._slots.close()
        self._rlock.close()
        self._wlock.close()


class ThreadQueue:
    """Inter-thread queue with deadlock-detector instrumentation.

    Equivalent to Ruby's ``Queue`` in Listing 5 — the comment there reads
    *"Queue is inter-thread, not inter-process"*.  State lives in this
    process's memory: after a fork the child gets a frozen copy whose
    producers (other threads) do not exist, which is the paper's
    intentional-deadlock scenario (section 6.2).
    """

    _COUNTER = 0
    _COUNTER_LOCK = threading.Lock()

    def __init__(self, maxsize: int = 0, name: Optional[str] = None):
        with ThreadQueue._COUNTER_LOCK:
            ThreadQueue._COUNTER += 1
            seq = ThreadQueue._COUNTER
        self.name = name or f"tqueue-{os.getpid()}-{seq}"
        self._queue: "_stdlib_queue.Queue" = _stdlib_queue.Queue(maxsize)

    def put(self, obj: Any, block: bool = True,
            timeout: Optional[float] = None) -> None:
        if not block or not self._queue.full():
            self._queue.put(obj, block=block, timeout=timeout)
            return
        graph = _deadlock_graph()
        if graph is None:
            self._queue.put(obj, block=True, timeout=timeout)
            return
        ue = UEId.current()
        graph.add_wait(ue, self.name)
        try:
            self._queue.put(obj, block=True, timeout=timeout)
        finally:
            graph.clear_wait(ue)

    def get(self, block: bool = True,
            timeout: Optional[float] = None) -> Any:
        if not block or not self._queue.empty():
            return self._queue.get(block=block, timeout=timeout)
        graph = _deadlock_graph()
        if graph is None:
            return self._queue.get(block=True, timeout=timeout)
        ue = UEId.current()
        graph.add_wait(ue, self.name)
        try:
            return self._queue.get(block=True, timeout=timeout)
        finally:
            graph.clear_wait(ue)

    def qsize(self) -> int:
        return self._queue.qsize()

    def empty(self) -> bool:
        return self._queue.empty()

    def full(self) -> bool:
        return self._queue.full()

"""Binary framing and pickling for inter-process channels.

Paper section 6.3 on the multiprocessing queue: *"Functions or methods to
be executed by the child process are passed from parent to child via
queues encoded using pickle."*  This module is that encoding layer: a
4-byte big-endian length prefix followed by a pickle payload, written to
raw file descriptors with full EINTR handling.

This framing is intentionally identical in shape to the debugger's JSON
framing (:mod:`repro.util.framing`) but separate in implementation: the
debug channel must never unpickle (a debuggee could own the client),
whereas the data plane between cooperating worker processes is exactly
where pickle belongs.
"""

from __future__ import annotations

import errno
import io
import os
import pickle
import struct
from typing import Any, Optional

from ..testkit import faults
from ..util.errors import QueueClosed

HEADER = struct.Struct(">I")
#: Same ceiling as the debug protocol: a corrupt header must not OOM us.
MAX_PAYLOAD = 256 * 1024 * 1024


def dumps(obj: Any) -> bytes:
    """Pickle *obj* with the highest protocol (what multiprocessing uses)."""
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def loads(data: bytes) -> Any:
    return pickle.loads(data)


def write_all(fd: int, data: bytes) -> None:
    """Write every byte of *data* to *fd*, retrying on EINTR/short writes.

    Injection point ``mp.pipe.write``: raises inside the retry loop (so
    an injected EINTR exercises the same ``continue`` a real signal
    would) or clamps the per-syscall byte budget to force short writes.
    """
    view = memoryview(data)
    while view:
        try:
            budget = faults.io_fault("mp.pipe.write", len(view))
            written = os.write(fd, view[:budget])
        except InterruptedError:
            continue
        except OSError as exc:
            if exc.errno == errno.EPIPE:
                raise QueueClosed("peer closed the channel") from exc
            raise
        view = view[written:]


def read_exact(fd: int, n: int) -> Optional[bytes]:
    """Read exactly *n* bytes from *fd*.

    Returns None on clean EOF at a frame boundary; raises
    :class:`QueueClosed` on EOF mid-frame.
    """
    buf = bytearray()
    while len(buf) < n:
        try:
            budget = faults.io_fault("mp.pipe.read", n - len(buf))
            chunk = os.read(fd, budget)
        except InterruptedError:
            continue
        if not chunk:
            if not buf:
                return None
            raise QueueClosed(
                f"channel closed mid-frame ({len(buf)}/{n} bytes)")
        buf.extend(chunk)
    return bytes(buf)


def send_obj(fd: int, obj: Any) -> int:
    """Frame and write one object; returns bytes written (for benchmarks)."""
    return send_payload(fd, dumps(obj))


def send_payload(fd: int, payload: bytes) -> int:
    """Frame and write pre-pickled bytes (callers that pickle early to
    keep their critical sections short, e.g. Queue.put)."""
    if len(payload) > MAX_PAYLOAD:
        raise QueueClosed(f"payload too large: {len(payload)}")
    frame = HEADER.pack(len(payload)) + payload
    write_all(fd, frame)
    return len(frame)


def recv_obj(fd: int) -> Any:
    """Read and unpickle one framed object.

    Raises :class:`EOFError` on orderly end of stream (all writers
    closed), matching multiprocessing.Connection semantics.
    """
    header = read_exact(fd, HEADER.size)
    if header is None:
        raise EOFError("channel exhausted")
    (length,) = HEADER.unpack(header)
    if length > MAX_PAYLOAD:
        raise QueueClosed(f"incoming payload too large: {length}")
    payload = read_exact(fd, length) if length else b""
    if payload is None:
        raise QueueClosed("channel closed between header and payload")
    return loads(payload)


class ForgivingPickler:
    """Best-effort pickler used by error paths: wraps unpicklable results
    so a worker can always report *something* back to its parent."""

    @staticmethod
    def safe_dumps(obj: Any) -> bytes:
        try:
            return dumps(obj)
        except Exception:  # noqa: BLE001 - arbitrary user object
            try:
                return dumps(repr(obj))
            except Exception:  # noqa: BLE001
                return dumps("<unpicklable object>")

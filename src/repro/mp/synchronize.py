"""Inter-process synchronization primitives built on pipe tokens.

A POSIX pipe is the one kernel object every Unix gives us that (a) is
shared across ``fork`` and (b) blocks readers when empty — which makes it
a counting semaphore: the pipe holds one byte per available permit;
``acquire`` reads a byte (blocking while there are none), ``release``
writes one back.  ``Lock`` is the binary case; ``Event`` exploits the
fact that *readability* of a pipe can be observed without consuming, so
one written byte wakes every waiter (broadcast).

All primitives integrate with the debugger when one is active:

* their identity is reported to the **deadlock detector** around every
  blocking acquire, with the *user* source line that blocked — this is
  what lets Fig. 7 show "the exact place where the deadlock occurred";
* ``Semaphore``/``Lock`` register for the **pre-fork ownership sweep**
  only through their in-process mirrors where one exists; the pipe
  token itself is fork-safe by construction (the permit lives in the
  kernel buffer, not in either process's memory).
"""

from __future__ import annotations

import array
import errno
import fcntl
import os
import select
import sys
import termios
import threading
import time
from typing import Optional

from ..testkit import faults
from ..util.errors import SyncObjectError
from ..util.ids import UEId

# -- post-fork fairness -------------------------------------------------------
#
# A freshly forked consumer loses every race against a sibling that is
# already hot in its get-loop: the parent forks child 1, child 1 drains
# the whole queue in microseconds, and children 2..N are born into an
# empty pipe (the mp-layer "one pid did all the work" failures).  Fair
# semaphores therefore yield briefly after *uncontended* fast-path
# acquires, but only while the process is newly forked — a bounded
# budget inside a short grace window, so steady-state throughput pays
# nothing.

_FAIR_GRACE = 1.0       # seconds after birth during which we yield
_FAIR_BUDGET = 64       # max yields per fork generation
_FAIR_YIELD = 0.0005    # seconds ceded to newborn siblings per yield

_birth = time.monotonic()


def _reset_birth() -> None:
    global _birth
    _birth = time.monotonic()


os.register_at_fork(after_in_child=_reset_birth)


def _deadlock_graph():
    from ..core.dionea import current_dionea  # late import: cycle
    dionea = current_dionea()
    return dionea.deadlock.graph if dionea is not None else None


class _WaitScope:
    """Context manager reporting a blocking wait to the deadlock graph.

    Only the (UE, resource) pair is recorded — the blocked source line is
    resolved lazily at report time from the thread's live frame
    (repro.core.deadlock.resolve_wait_location), keeping this path cheap
    enough to sit on every blocking acquire.
    """

    def __init__(self, resource: str):
        self.resource = resource
        self.graph = _deadlock_graph()
        self.ue = UEId.current() if self.graph is not None else None

    def __enter__(self) -> "_WaitScope":
        if self.graph is not None:
            self.graph.add_wait(self.ue, self.resource)
        return self

    def __exit__(self, *exc_info) -> None:
        if self.graph is not None:
            self.graph.clear_wait(self.ue)


class Semaphore:
    """Counting semaphore whose permits are bytes in a shared pipe."""

    _COUNTER = 0
    _COUNTER_LOCK = threading.Lock()

    def __init__(self, value: int = 1, name: Optional[str] = None,
                 fair: bool = False):
        if value < 0:
            raise SyncObjectError("semaphore value must be >= 0")
        with Semaphore._COUNTER_LOCK:
            Semaphore._COUNTER += 1
            seq = Semaphore._COUNTER
        self.name = name or f"sem-{os.getpid()}-{seq}"
        self._read_fd, self._write_fd = os.pipe()
        os.set_blocking(self._read_fd, False)
        if value:
            os.write(self._write_fd, b"x" * value)
        #: fair semaphores yield to newly forked siblings (module
        #: docstring above): opt-in, used by Queue's items semaphore.
        self._fair = fair
        self._fair_used = 0
        self._fair_epoch = _birth
        self._closed = False

    # -- core protocol -----------------------------------------------------------

    def _fair_yield(self) -> None:
        """Cede the CPU briefly after an uncontended acquire while this
        process is newly forked, so sibling consumers born a moment later
        can reach the pipe before it is drained."""
        now = time.monotonic()
        if now - _birth >= _FAIR_GRACE:
            return
        if self._fair_epoch != _birth:  # new fork generation: fresh budget
            self._fair_epoch = _birth
            self._fair_used = 0
        if self._fair_used >= _FAIR_BUDGET:
            return
        self._fair_used += 1
        time.sleep(_FAIR_YIELD)

    def acquire(self, blocking: bool = True,
                timeout: Optional[float] = None) -> bool:
        """Take one permit.  Returns False on timeout/non-blocking miss."""
        if self._closed:
            raise SyncObjectError(f"{self.name} is closed")
        deadline = None if timeout is None else time.monotonic() + timeout
        reported = False
        blocked = False
        graph = None
        try:
            while True:
                try:
                    faults.maybe_fault("mp.sem.acquire")
                    data = os.read(self._read_fd, 1)
                    if data:
                        if self._fair and blocking and not blocked:
                            self._fair_yield()
                        return True
                    raise SyncObjectError(f"{self.name}: pipe closed")
                except BlockingIOError:
                    pass
                except InterruptedError:
                    continue
                if not blocking:
                    return False
                blocked = True
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                else:
                    remaining = None
                if not reported:
                    graph = _deadlock_graph()
                    if graph is not None:
                        graph.add_wait(UEId.current(), self.name)
                    reported = True
                select.select([self._read_fd], [], [],
                              remaining if remaining is not None
                              else 0.5)
        finally:
            if reported and graph is not None:
                graph.clear_wait(UEId.current())

    def release(self, n: int = 1) -> None:
        if self._closed:
            raise SyncObjectError(f"{self.name} is closed")
        if n < 1:
            raise SyncObjectError("release count must be >= 1")
        os.write(self._write_fd, b"x" * n)

    def __enter__(self) -> "Semaphore":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    # -- introspection -----------------------------------------------------------

    def value(self) -> int:
        """Current permit count (Linux FIONREAD on the pipe buffer)."""
        if self._closed:
            raise SyncObjectError(f"{self.name} is closed")
        buf = array.array("i", [0])
        fcntl.ioctl(self._read_fd, termios.FIONREAD, buf)
        return buf[0]

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for fd in (self._read_fd, self._write_fd):
            try:
                os.close(fd)
            except OSError:
                pass

    def reinit(self, value: int) -> None:
        """Rebuild with fresh pipes and *value* permits (child handler)."""
        self.close()
        self._read_fd, self._write_fd = os.pipe()
        os.set_blocking(self._read_fd, False)
        if value:
            os.write(self._write_fd, b"x" * value)
        self._closed = False


class BoundedSemaphore(Semaphore):
    """Semaphore that refuses to exceed its initial permit count."""

    def __init__(self, value: int = 1, name: Optional[str] = None):
        super().__init__(value, name=name)
        self._bound = value

    def release(self, n: int = 1) -> None:
        if self.value() + n > self._bound:
            raise SyncObjectError(
                f"{self.name}: released above initial value {self._bound}")
        super().release(n)


class Lock(Semaphore):
    """Binary semaphore with held/owner bookkeeping for diagnostics."""

    def __init__(self, name: Optional[str] = None):
        super().__init__(1, name=name or None)
        self._owner: Optional[UEId] = None

    def acquire(self, blocking: bool = True,
                timeout: Optional[float] = None) -> bool:
        got = super().acquire(blocking=blocking, timeout=timeout)
        if got:
            self._owner = UEId.current()
            graph = _deadlock_graph()
            if graph is not None:
                graph.add_hold(self._owner, self.name)
        return got

    def release(self, n: int = 1) -> None:
        owner, self._owner = self._owner, None
        super().release(n)
        graph = _deadlock_graph()
        if graph is not None and owner is not None:
            graph.release_hold(owner, self.name)

    @property
    def locked_by(self) -> Optional[UEId]:
        """Last known owner — advisory only (cross-process state lags)."""
        return self._owner

    def __enter__(self) -> "Lock":
        self.acquire()
        return self


class Barrier:
    """Cross-process cyclic barrier built from pipe-token semaphores.

    Two-phase turnstile.  A single-gate barrier has a classic reuse
    race: a fast party that clears the gate can loop around, re-arrive,
    and steal a gate permit that still belongs to a slow party of the
    *previous* generation, which then times out.  The second turnstile
    closes that hole — nobody re-enters phase 1 until every party of the
    current generation has left phase 2.

    Works across ``fork`` for the same reason the semaphores do: all
    state lives in shared kernel pipe buffers, with
    :class:`SharedValue`-style counters replaced by token arithmetic:

    * **phase 1 (arrive)** — under the mutex, deposit one token into
      ``_arrivals``; the depositor of the N-th token opens ``_gate``
      with N permits.  Everyone takes one ``_gate`` permit.
    * **phase 2 (depart)** — under the mutex, drain one own token back
      out of ``_arrivals``; the drainer of the last token opens
      ``_gate2`` with N permits.  Everyone takes one ``_gate2`` permit
      and only then may re-arrive, so each generation's permits are
      fully consumed before the next generation can touch either gate.
    """

    def __init__(self, parties: int, name: Optional[str] = None):
        if parties < 1:
            raise SyncObjectError("barrier needs at least one party")
        self.parties = parties
        self.name = name or f"barrier-{os.getpid()}-{id(self) & 0xffff}"
        self._arrivals = Semaphore(0, name=f"{self.name}.arrivals")
        self._gate = Semaphore(0, name=f"{self.name}.gate")
        self._gate2 = Semaphore(0, name=f"{self.name}.gate2")
        self._mutex = Semaphore(1, name=f"{self.name}.mutex")

    @staticmethod
    def _remaining(deadline: Optional[float]) -> Optional[float]:
        if deadline is None:
            return None
        return max(0.0, deadline - time.monotonic())

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until *parties* UEs have arrived; True on release,
        False on timeout (the barrier is then broken for this cycle)."""
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        with _WaitScope(self.name):
            # Phase 1: arrive.  The mutex makes deposit+count atomic, so
            # exactly one party observes the full complement.
            if not self._mutex.acquire(timeout=self._remaining(deadline)):
                return False
            try:
                self._arrivals.release()
                if self._arrivals.value() >= self.parties:
                    self._gate.release(self.parties)
            finally:
                self._mutex.release()
            if not self._gate.acquire(timeout=self._remaining(deadline)):
                return False
            # Phase 2: depart.  Drain the token deposited above (one is
            # guaranteed: gate permits only exist while arrival tokens
            # do); the last one out opens the exit turnstile.
            if not self._mutex.acquire(timeout=self._remaining(deadline)):
                return False
            try:
                self._arrivals.acquire(blocking=False)
                if self._arrivals.value() == 0:
                    self._gate2.release(self.parties)
            finally:
                self._mutex.release()
            return self._gate2.acquire(timeout=self._remaining(deadline))

    def close(self) -> None:
        self._arrivals.close()
        self._gate.close()
        self._gate2.close()
        self._mutex.close()


class Event:
    """Broadcast flag: one byte in a pipe wakes every selector.

    ``wait`` observes readability without consuming, so any number of
    waiters (in any process sharing the pipe) see a single ``set``.
    """

    _COUNTER = 0
    _COUNTER_LOCK = threading.Lock()

    def __init__(self, name: Optional[str] = None):
        with Event._COUNTER_LOCK:
            Event._COUNTER += 1
            seq = Event._COUNTER
        self.name = name or f"event-{os.getpid()}-{seq}"
        self._read_fd, self._write_fd = os.pipe()
        os.set_blocking(self._read_fd, False)
        self._set_lock = threading.Lock()

    def is_set(self) -> bool:
        ready, _, _ = select.select([self._read_fd], [], [], 0)
        return bool(ready)

    def set(self) -> None:
        with self._set_lock:
            if not self.is_set():
                os.write(self._write_fd, b"x")

    def clear(self) -> None:
        while True:
            try:
                if not os.read(self._read_fd, 64):
                    return
            except BlockingIOError:
                return
            except InterruptedError:
                continue

    def wait(self, timeout: Optional[float] = None) -> bool:
        if self.is_set():
            return True
        with _WaitScope(self.name):
            ready, _, _ = select.select([self._read_fd], [], [], timeout)
        return bool(ready)

    def close(self) -> None:
        for fd in (self._read_fd, self._write_fd):
            try:
                os.close(fd)
            except OSError:
                pass

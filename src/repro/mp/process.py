"""Process: the UE-spawning construct (paper sections 2 and 5.1).

A thin, honest ``fork``-based process object with the familiar
``multiprocessing.Process`` surface.  ``start`` calls ``os.fork`` *by
name*, which is exactly the interception point of the paper's Listing 4:
when a Dionea is active, its augmented fork wraps the spawn with handler
phases A/B/C, and the child announces its fresh debug server before the
target function runs a single line.

The child executes ``run()`` and leaves with ``os._exit`` — never
returning into the parent's stack, never running the parent's atexit
hooks (matching fork semantics, not emulating them).
"""

from __future__ import annotations

import itertools
import os
import signal
import sys
import time
import traceback
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..util.errors import PoolError

_process_counter = itertools.count(1)
_active_children: List["Process"] = []


def active_children() -> List["Process"]:
    """Started, not-yet-reaped children of the calling process."""
    _reap()
    return [p for p in _active_children if p.is_alive()]


def _reap() -> None:
    for proc in list(_active_children):
        if proc.exitcode is not None:
            _active_children.remove(proc)


class Process:
    """One forked unit of execution."""

    def __init__(self, target: Optional[Callable] = None,
                 args: Tuple = (), kwargs: Optional[Dict[str, Any]] = None,
                 name: Optional[str] = None):
        self._target = target
        self._args = tuple(args)
        self._kwargs = dict(kwargs or {})
        self.name = name or f"Process-{next(_process_counter)}"
        self.pid: Optional[int] = None
        self._exitcode: Optional[int] = None
        self._started = False

    # -- child body --------------------------------------------------------------

    def run(self) -> None:
        """Override point, like multiprocessing.Process.run."""
        if self._target is not None:
            self._target(*self._args, **self._kwargs)

    def _bootstrap(self) -> int:
        try:
            self.run()
            return 0
        except SystemExit as exc:
            code = exc.code
            if code is None:
                return 0
            return code if isinstance(code, int) else 1
        except BaseException:  # noqa: BLE001 - report and die
            traceback.print_exc()
            return 1

    # -- lifecycle ------------------------------------------------------------------

    def start(self) -> None:
        if self._started:
            raise PoolError(f"{self.name} already started")
        self._started = True
        pid = os.fork()  # the augmented fork, when a debugger is active
        if pid == 0:
            # Child.  Reset child bookkeeping that was inherited by copy.
            del _active_children[:]
            status = self._bootstrap()
            # Flush before _exit: _exit skips interpreter shutdown.
            try:
                sys.stdout.flush()
                sys.stderr.flush()
            except Exception:  # noqa: BLE001
                pass
            os._exit(status)
        self.pid = pid
        _active_children.append(self)

    def is_alive(self) -> bool:
        if not self._started or self.pid is None:
            return False
        if self._exitcode is not None:
            return False
        self._poll()
        return self._exitcode is None

    def _poll(self) -> None:
        if self.pid is None or self._exitcode is not None:
            return
        try:
            pid, status = os.waitpid(self.pid, os.WNOHANG)
        except ChildProcessError:
            self._exitcode = -1  # reaped elsewhere; exit status unknown
            return
        if pid == self.pid:
            self._exitcode = self._status_to_code(status)

    @staticmethod
    def _status_to_code(status: int) -> int:
        if os.WIFSIGNALED(status):
            return -os.WTERMSIG(status)
        return os.WEXITSTATUS(status)

    @property
    def exitcode(self) -> Optional[int]:
        self._poll()
        return self._exitcode

    def join(self, timeout: Optional[float] = None) -> None:
        """Wait for the child to exit (poll + sleep keeps signals simple)."""
        if not self._started:
            raise PoolError(f"{self.name} not started")
        deadline = None if timeout is None else time.monotonic() + timeout
        while self.exitcode is None:
            if deadline is not None and time.monotonic() >= deadline:
                return
            time.sleep(0.002)

    def terminate(self) -> None:
        self._signal(signal.SIGTERM)

    def kill(self) -> None:
        self._signal(signal.SIGKILL)

    def _signal(self, signum: int) -> None:
        if self.pid is None:
            raise PoolError(f"{self.name} not started")
        if self._exitcode is not None:
            return
        try:
            os.kill(self.pid, signum)
        except ProcessLookupError:
            pass

    def __repr__(self) -> str:  # pragma: no cover
        if not self._started:
            state = "initial"
        elif self.exitcode is not None:
            state = f"exited({self._exitcode})"
        else:
            state = f"started pid={self.pid}"
        return f"<Process {self.name} {state}>"

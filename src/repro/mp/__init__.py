"""repro.mp — process-based "threading" substrate (paper section 6.3).

The slice of ``multiprocessing`` the paper's programs rely on, built from
scratch on ``os.fork``, pipes and pipe-token semaphores so the debugger's
augmented fork sees every spawn.
"""

from .futures import Future, ProcessPoolExecutor, as_completed
from .pipes import Connection, Pipe, open_connections
from .pool import AsyncResult, Pool, RemoteError
from .process import Process, active_children
from .queues import Queue, ThreadQueue
from .sharedmem import (
    SharedArray,
    SharedCounter,
    SharedMemoryError,
    SharedValue,
)
from .synchronize import Barrier, BoundedSemaphore, Event, Lock, Semaphore

__all__ = [
    "Future", "ProcessPoolExecutor", "as_completed",
    "Connection", "Pipe", "open_connections",
    "AsyncResult", "Pool", "RemoteError",
    "Process", "active_children",
    "Queue", "ThreadQueue",
    "SharedArray", "SharedCounter", "SharedMemoryError", "SharedValue",
    "Barrier", "BoundedSemaphore", "Event", "Lock", "Semaphore",
]

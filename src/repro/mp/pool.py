"""Worker pool over forked processes and the §6.3 queues.

The shape the paper's MapReduce word count runs on: N forked workers
share one input queue and one output queue with the parent (Fig. 8
caption: *"the parent and the worker processes share the same input and
output queues"*).  Because workers block on ``Queue.get``, a worker
stopped at a breakpoint simply doesn't contend — *"we observe that an
available child process takes over the jobs"* — the work-stealing
behaviour the integration tests assert.

Tasks and results are pickled function calls; functions must therefore
be importable top-level callables, the same constraint multiprocessing
imposes.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
import traceback
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..util.errors import PoolError
from .process import Process
from .queues import Queue
from .synchronize import Semaphore

_STOP = "__pool_stop__"

#: How long Pool() waits for every worker to check in before accepting
#: work on faith.  Generous: a worker only misses this if it died (or a
#: debugger parked it) during startup.
_READY_TIMEOUT = 5.0


class RemoteError(PoolError):
    """A task raised in the worker; carries the remote traceback text."""

    def __init__(self, kind: str, message: str, remote_traceback: str):
        super().__init__(f"{kind}: {message}")
        self.kind = kind
        self.remote_traceback = remote_traceback


def _pool_worker(task_queue: Queue, result_queue: Queue, ready: Semaphore,
                 initializer: Optional[Callable], initargs: Tuple) -> None:
    """Worker main loop: run in the forked child until the stop sentinel."""
    if initializer is not None:
        initializer(*initargs)
    # Check in only once genuinely ready to consume: the parent holds
    # Pool() open until every worker reaches this line, so the first
    # map() finds all N workers blocked on the task queue instead of
    # racing one early-born worker against siblings still mid-fork.
    ready.release()
    while True:
        task = task_queue.get()
        if task == _STOP:
            break
        task_id, func, args, kwargs = task
        try:
            value = func(*args, **(kwargs or {}))
            result_queue.put((task_id, True, value, os.getpid()))
        except BaseException as exc:  # noqa: BLE001 - ship it to the parent
            result_queue.put((
                task_id, False,
                (type(exc).__name__, str(exc), traceback.format_exc()),
                os.getpid()))


class AsyncResult:
    """Handle for one submitted task."""

    def __init__(self, task_id: int):
        self.task_id = task_id
        self._event = threading.Event()
        self._success = False
        self._value: Any = None
        self.worker_pid: Optional[int] = None

    def _resolve(self, success: bool, value: Any, worker_pid: int) -> None:
        self._success = success
        self._value = value
        self.worker_pid = worker_pid
        self._event.set()

    def ready(self) -> bool:
        return self._event.is_set()

    def successful(self) -> bool:
        if not self._event.is_set():
            raise PoolError("result not ready")
        return self._success

    def get(self, timeout: Optional[float] = None) -> Any:
        if not self._event.wait(timeout):
            raise PoolError(f"task {self.task_id} not done "
                            f"within {timeout}s")
        if self._success:
            return self._value
        kind, message, remote_tb = self._value
        raise RemoteError(kind, message, remote_tb)


class Pool:
    """N forked workers fed by one task queue."""

    def __init__(self, processes: Optional[int] = None,
                 initializer: Optional[Callable] = None,
                 initargs: Tuple = ()):
        self.processes = processes or (os.cpu_count() or 2)
        if self.processes < 1:
            raise PoolError("pool needs at least one process")
        self.task_queue = Queue(name="pool.tasks")
        self.result_queue = Queue(name="pool.results")
        self._ready = Semaphore(0, name="pool.ready")
        self._task_ids = itertools.count(1)
        self._pending: Dict[int, AsyncResult] = {}
        self._pending_lock = threading.Lock()
        self._closed = False
        self._workers: List[Process] = []
        for i in range(self.processes):
            worker = Process(
                target=_pool_worker,
                args=(self.task_queue, self.result_queue, self._ready,
                      initializer, initargs),
                name=f"pool-worker-{i}")
            worker.start()
            self._workers.append(worker)
        self._collector = threading.Thread(
            target=self._collect, name="pool-collector", daemon=True)
        self._collector.start()
        self._await_workers_ready()

    def _await_workers_ready(self) -> None:
        """Block until every worker has checked in (bounded wait).

        A worker that dies during startup must not wedge pool creation,
        so a missed check-in degrades to a warning-by-behaviour: the
        pool still works on whatever workers made it up.
        """
        deadline = time.monotonic() + _READY_TIMEOUT
        for _ in self._workers:
            if not self._ready.acquire(
                    timeout=max(0.0, deadline - time.monotonic())):
                break

    # -- result collection ----------------------------------------------------------

    def _collect(self) -> None:
        remaining_stops = None
        while True:
            item = self.result_queue.get()
            if item == _STOP:
                break
            task_id, success, value, worker_pid = item
            with self._pending_lock:
                result = self._pending.pop(task_id, None)
            if result is not None:
                result._resolve(success, value, worker_pid)  # noqa: SLF001

    # -- submission --------------------------------------------------------------------

    def apply_async(self, func: Callable, args: Sequence = (),
                    kwds: Optional[dict] = None) -> AsyncResult:
        if self._closed:
            raise PoolError("pool is closed")
        task_id = next(self._task_ids)
        result = AsyncResult(task_id)
        with self._pending_lock:
            self._pending[task_id] = result
        self.task_queue.put((task_id, func, tuple(args), kwds))
        return result

    def apply(self, func: Callable, args: Sequence = (),
              kwds: Optional[dict] = None,
              timeout: Optional[float] = None) -> Any:
        return self.apply_async(func, args, kwds).get(timeout)

    def map(self, func: Callable, iterable: Iterable,
            chunksize: int = 1,
            timeout: Optional[float] = None) -> List[Any]:
        """Parallel map preserving input order."""
        if chunksize < 1:
            raise PoolError("chunksize must be >= 1")
        items = list(iterable)
        chunks = [items[i:i + chunksize]
                  for i in range(0, len(items), chunksize)]
        handles = [self.apply_async(_run_chunk, (func, chunk))
                   for chunk in chunks]
        out: List[Any] = []
        for handle in handles:
            out.extend(handle.get(timeout))
        return out

    # -- lifecycle -----------------------------------------------------------------------

    def close(self) -> None:
        """No more tasks; workers exit after draining the queue."""
        if self._closed:
            return
        self._closed = True
        for _ in self._workers:
            self.task_queue.put(_STOP)

    def join(self, timeout: Optional[float] = None) -> None:
        if not self._closed:
            raise PoolError("join before close")
        for worker in self._workers:
            worker.join(timeout)
        self.result_queue.put(_STOP)
        self._collector.join(timeout or 5.0)
        self._ready.close()

    def terminate(self) -> None:
        self._closed = True
        for worker in self._workers:
            if worker.is_alive():
                worker.terminate()
        for worker in self._workers:
            worker.join(1.0)
        try:
            self.result_queue.put(_STOP)
        except Exception:  # noqa: BLE001 - queue may already be closed
            pass
        self._ready.close()

    def worker_pids(self) -> List[int]:
        return [w.pid for w in self._workers if w.pid is not None]

    def __enter__(self) -> "Pool":
        return self

    def __exit__(self, *exc_info) -> None:
        if not self._closed:
            self.close()
            self.join(10.0)


def _run_chunk(func: Callable, chunk: List[Any]) -> List[Any]:
    """Top-level (picklable) chunk runner for :meth:`Pool.map`."""
    return [func(item) for item in chunk]

"""Executor-style facade over the fork-based pool.

The `concurrent.futures` surface is how modern Python code consumes
process pools; providing it over :class:`repro.mp.pool.Pool` means any
such program runs on this substrate — and therefore under the debugger,
fork-followed — without modification beyond the import.

Scope: the synchronous core of the Executor contract (submit/map/
shutdown, Future with result/exception/done/callbacks).  Cancellation
of already-queued work is not supported (the task queue is a shared
pipe; un-sending a frame is not a thing), matching the paper's own
substrate, where a submitted job always reaches a worker.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterable, Iterator, List, Optional

from ..util.errors import PoolError
from .pool import AsyncResult, Pool, RemoteError


class Future:
    """concurrent.futures-flavoured handle over an AsyncResult."""

    def __init__(self, async_result: AsyncResult):
        self._async_result = async_result
        self._callbacks: List[Callable[["Future"], None]] = []
        self._callback_lock = threading.Lock()
        self._watcher: Optional[threading.Thread] = None

    # -- state ---------------------------------------------------------------

    def done(self) -> bool:
        return self._async_result.ready()

    def running(self) -> bool:
        return not self.done()

    def cancel(self) -> bool:
        """Always False: queued frames cannot be unsent (documented)."""
        return False

    def cancelled(self) -> bool:
        return False

    # -- results ----------------------------------------------------------------

    def result(self, timeout: Optional[float] = None) -> Any:
        return self._async_result.get(timeout)

    def exception(self, timeout: Optional[float] = None
                  ) -> Optional[BaseException]:
        try:
            self._async_result.get(timeout)
            return None
        except RemoteError as exc:
            return exc

    @property
    def worker_pid(self) -> Optional[int]:
        return self._async_result.worker_pid

    # -- callbacks ----------------------------------------------------------------

    def add_done_callback(self, fn: Callable[["Future"], None]) -> None:
        """Run *fn(self)* when the future completes (immediately if it
        already has)."""
        run_now = False
        with self._callback_lock:
            if self.done():
                run_now = True
            else:
                self._callbacks.append(fn)
                if self._watcher is None:
                    self._watcher = threading.Thread(
                        target=self._watch, name="future-callbacks",
                        daemon=True)
                    self._watcher.start()
        if run_now:
            self._invoke(fn)

    def _watch(self) -> None:
        try:
            self._async_result.get(timeout=None)
        except RemoteError:
            pass
        with self._callback_lock:
            callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            self._invoke(fn)

    def _invoke(self, fn) -> None:
        try:
            fn(self)
        except Exception:  # noqa: BLE001 - callback bugs are the user's
            pass


class ProcessPoolExecutor:
    """Drop-in-shaped executor over forked workers."""

    def __init__(self, max_workers: Optional[int] = None,
                 initializer: Optional[Callable] = None,
                 initargs: tuple = ()):
        self._pool = Pool(processes=max_workers,
                          initializer=initializer, initargs=initargs)
        self._shutdown = False
        self._lock = threading.Lock()

    @property
    def max_workers(self) -> int:
        return self._pool.processes

    def submit(self, fn: Callable, /, *args, **kwargs) -> Future:
        with self._lock:
            if self._shutdown:
                raise PoolError("cannot submit after shutdown")
            return Future(self._pool.apply_async(fn, args, kwargs or None))

    def map(self, fn: Callable, *iterables: Iterable,
            timeout: Optional[float] = None,
            chunksize: int = 1) -> Iterator:
        """Like Executor.map: lazy iterator over ordered results."""
        futures = [self.submit(fn, *args) for args in zip(*iterables)]

        def results() -> Iterator:
            for future in futures:
                yield future.result(timeout)

        return results()

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
        self._pool.close()
        if wait:
            self._pool.join(60.0)

    def __enter__(self) -> "ProcessPoolExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(wait=True)


def as_completed(futures: Iterable[Future],
                 timeout: Optional[float] = None) -> Iterator[Future]:
    """Yield futures in completion order (poll-based, coarse)."""
    import time
    pending = list(futures)
    deadline = None if timeout is None else time.monotonic() + timeout
    while pending:
        progressed = False
        for future in list(pending):
            if future.done():
                pending.remove(future)
                progressed = True
                yield future
        if not pending:
            return
        if deadline is not None and time.monotonic() > deadline:
            raise PoolError(f"{len(pending)} futures unfinished "
                            f"after {timeout}s")
        if not progressed:
            time.sleep(0.005)

"""Shared memory primitives: mmap-backed values and arrays.

Rounds out the process substrate with the other standard IPC channel
parallel Python programs use (``multiprocessing.Value``/``Array``): a
page of anonymous shared memory (``mmap.MAP_SHARED | MAP_ANONYMOUS``)
survives ``fork`` as the *same* physical memory in parent and children,
so writes are visible both ways — unlike every ordinary Python object,
which fork copies.

These are the bytes the §6.2 lesson is about, inverted: an inter-thread
``Queue`` silently *copies* across fork and deadlocks; a
:class:`SharedValue` genuinely *shares*.  The unit tests pin both
behaviours side by side.

Atomicity: plain loads/stores of one slot are torn-free (single struct
pack into a fixed offset) but read-modify-write is not atomic; a
:class:`SharedCounter` composes a slot with a
:class:`~repro.mp.synchronize.Lock` for cross-process increments.
"""

from __future__ import annotations

import mmap
import struct
import threading
from typing import Iterable, Iterator, List, Optional

from ..util.errors import ReproError
from .synchronize import Lock

#: supported typecodes → struct format (a deliberate, documented subset)
_FORMATS = {
    "q": "<q",   # signed 64-bit
    "d": "<d",   # float64
    "i": "<i",   # signed 32-bit
    "B": "<B",   # unsigned byte
}


class SharedMemoryError(ReproError):
    """Bad typecode, out-of-range index, or use after close."""


class SharedValue:
    """One typed slot in fork-shared memory."""

    def __init__(self, typecode: str = "q", initial=0):
        fmt = _FORMATS.get(typecode)
        if fmt is None:
            raise SharedMemoryError(
                f"unsupported typecode {typecode!r}; "
                f"choose from {sorted(_FORMATS)}")
        self._struct = struct.Struct(fmt)
        self._mmap = mmap.mmap(-1, max(self._struct.size, 1))
        self._closed = False
        self.typecode = typecode
        self.set(initial)

    def get(self):
        if self._closed:
            raise SharedMemoryError("shared value is closed")
        return self._struct.unpack_from(self._mmap, 0)[0]

    def set(self, value) -> None:
        if self._closed:
            raise SharedMemoryError("shared value is closed")
        try:
            self._struct.pack_into(self._mmap, 0, value)
        except struct.error as exc:
            raise SharedMemoryError(
                f"value {value!r} does not fit typecode "
                f"{self.typecode!r}") from exc

    value = property(lambda self: self.get(),
                     lambda self, v: self.set(v))

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._mmap.close()


class SharedArray:
    """A fixed-length typed array in fork-shared memory."""

    def __init__(self, typecode: str, size_or_init):
        fmt = _FORMATS.get(typecode)
        if fmt is None:
            raise SharedMemoryError(
                f"unsupported typecode {typecode!r}; "
                f"choose from {sorted(_FORMATS)}")
        self._struct = struct.Struct(fmt)
        if isinstance(size_or_init, int):
            length = size_or_init
            initial: Optional[Iterable] = None
        else:
            initial = list(size_or_init)
            length = len(initial)
        if length <= 0:
            raise SharedMemoryError("array length must be positive")
        self.typecode = typecode
        self._length = length
        self._mmap = mmap.mmap(-1, self._struct.size * length)
        self._closed = False
        if initial is not None:
            for i, value in enumerate(initial):
                self[i] = value

    def _offset(self, index: int) -> int:
        if not isinstance(index, int):
            raise SharedMemoryError("indices must be integers")
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise SharedMemoryError(
                f"index {index} out of range [0, {self._length})")
        return index * self._struct.size

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, index: int):
        if self._closed:
            raise SharedMemoryError("shared array is closed")
        return self._struct.unpack_from(self._mmap,
                                        self._offset(index))[0]

    def __setitem__(self, index: int, value) -> None:
        if self._closed:
            raise SharedMemoryError("shared array is closed")
        try:
            self._struct.pack_into(self._mmap, self._offset(index), value)
        except struct.error as exc:
            raise SharedMemoryError(
                f"value {value!r} does not fit typecode "
                f"{self.typecode!r}") from exc

    def __iter__(self) -> Iterator:
        return (self[i] for i in range(self._length))

    def tolist(self) -> List:
        return list(self)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._mmap.close()


class SharedCounter:
    """Cross-process atomic counter: shared slot + pipe-token lock."""

    def __init__(self, initial: int = 0, name: Optional[str] = None):
        self._value = SharedValue("q", initial)
        self._lock = Lock(name=name or "shared-counter")

    def increment(self, amount: int = 1) -> int:
        """Atomically add *amount*; returns the new value."""
        with self._lock:
            new = self._value.get() + amount
            self._value.set(new)
            return new

    def get(self) -> int:
        return self._value.get()

    def set(self, value: int) -> None:
        with self._lock:
            self._value.set(value)

    def close(self) -> None:
        self._value.close()
        self._lock.close()

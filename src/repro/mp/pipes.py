"""Pipe-based connections: the transport under queues and worker pools.

``Pipe()`` returns a pair of :class:`Connection` objects like
``multiprocessing.Pipe`` — one-way by default (reader end, writer end),
or duplex with two underlying OS pipes.

Fork interaction is the whole point of this package (paper sections 5.1,
6.4): after a fork both processes hold descriptors for both ends.  The
§6.4 parallel-gem bug is precisely *"All the unnecessary pipes used for
each of the forked processes are copied"* into sibling children that
never close them, keeping the write end open and the reader blocked.
:meth:`Connection.close` and the FD-tracking registry below are what a
correct pool uses to drop copied-but-unused ends in each child.

Each connection's in-process send/recv guards are ``threading.Lock``
objects, registered with the active debugger's sync-object registry so
the pre-fork ownership sweep (§5.3 problem 1) covers them: without the
sweep, a thread holding a send lock at fork time leaves the child's copy
locked forever.
"""

from __future__ import annotations

import os
import select
import threading
import time
from typing import Any, List, Optional, Tuple

from ..obs import metrics as obs_metrics
from ..testkit import faults
from ..util.errors import QueueClosed
from . import reduction

#: Per-process registry of open connections, so tests and pool
#: implementations can reason about leaked descriptors (§6.4).
_open_connections: "set[Connection]" = set()
_open_lock = threading.Lock()


def open_connections() -> List["Connection"]:
    with _open_lock:
        return [c for c in _open_connections if not c.closed]


def _register_with_debugger(lock: threading.Lock, name: str,
                            owner: object) -> None:
    """Register an in-process guard lock for the pre-fork sweep.

    *owner* (the Connection) carries the weak reference, so the entry
    disappears with the connection instead of accumulating forever.
    """
    from ..core.dionea import current_dionea  # late: avoid cycle
    from ..forkhooks.syncobjects import manage_lock
    dionea = current_dionea()
    if dionea is not None:
        manage_lock(dionea.sync_registry, lock, name=name, owner=owner)


class Connection:
    """One end of a pipe; send and/or receive pickled objects."""

    def __init__(self, read_fd: Optional[int], write_fd: Optional[int],
                 label: str = "conn"):
        self._read_fd = read_fd
        self._write_fd = write_fd
        self.label = label
        self._send_lock = threading.Lock()
        self._recv_lock = threading.Lock()
        self._closed = False
        with _open_lock:
            _open_connections.add(self)
        _register_with_debugger(self._send_lock, f"{label}.send_lock", self)
        _register_with_debugger(self._recv_lock, f"{label}.recv_lock", self)

    # -- capabilities -----------------------------------------------------------

    @property
    def readable(self) -> bool:
        return self._read_fd is not None

    @property
    def writable(self) -> bool:
        return self._write_fd is not None

    @property
    def closed(self) -> bool:
        return self._closed

    def fileno(self) -> int:
        """The read descriptor if present, else the write descriptor."""
        fd = self._read_fd if self._read_fd is not None else self._write_fd
        if fd is None:
            raise QueueClosed(f"{self.label} is fully closed")
        return fd

    # -- data plane -------------------------------------------------------------

    def send(self, obj: Any) -> int:
        if self._closed or self._write_fd is None:
            raise QueueClosed(f"{self.label} is not writable")
        faults.maybe_fault("mp.conn.send")
        obs_metrics.inc("mp.pipe.send_ops")
        with self._send_lock:
            return reduction.send_obj(self._write_fd, obj)

    def recv(self) -> Any:
        if self._closed or self._read_fd is None:
            raise QueueClosed(f"{self.label} is not readable")
        faults.maybe_fault("mp.conn.recv")
        obs_metrics.inc("mp.pipe.recv_ops")
        with self._recv_lock:
            return reduction.recv_obj(self._read_fd)

    def poll(self, timeout: float = 0.0) -> bool:
        """True if a recv would not block (data buffered or EOF pending).

        Retries EINTR explicitly (injection point ``mp.conn.poll``): a
        signal landing mid-poll must shorten the wait, not break it.
        """
        if self._closed or self._read_fd is None:
            raise QueueClosed(f"{self.label} is not readable")
        deadline = time.monotonic() + max(0.0, timeout)
        while True:
            try:
                faults.maybe_fault("mp.conn.poll")
                remaining = max(0.0, deadline - time.monotonic())
                ready, _, _ = select.select([self._read_fd], [], [],
                                            remaining)
                return bool(ready)
            except InterruptedError:
                if time.monotonic() >= deadline:
                    return False

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        """Close both descriptors.  Idempotent.

        Closing copies in a forked child is the §6.4 fix: the sibling's
        reader sees EOF only when the *last* write descriptor closes.
        """
        if self._closed:
            return
        self._closed = True
        for fd in (self._read_fd, self._write_fd):
            if fd is not None:
                try:
                    os.close(fd)
                except OSError:
                    pass
        self._read_fd = None
        self._write_fd = None
        with _open_lock:
            _open_connections.discard(self)

    def close_reader(self) -> None:
        """Drop only the read end (a writer-role process after fork)."""
        if self._read_fd is not None:
            try:
                os.close(self._read_fd)
            except OSError:
                pass
            self._read_fd = None

    def close_writer(self) -> None:
        """Drop only the write end (a reader-role process after fork)."""
        if self._write_fd is not None:
            try:
                os.close(self._write_fd)
            except OSError:
                pass
            self._write_fd = None

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover
        state = "closed" if self._closed else (
            f"r={self._read_fd} w={self._write_fd}")
        return f"<Connection {self.label} {state}>"


def Pipe(duplex: bool = False,
         label: str = "pipe") -> Tuple[Connection, Connection]:
    """A connected pair of :class:`Connection` objects.

    Non-duplex (default, like the parallel gem's ``IO.pipe``): the first
    connection is read-only, the second write-only.  Duplex: both ends
    read and write over two OS pipes.
    """
    r1, w1 = os.pipe()
    if not duplex:
        return (Connection(r1, None, label=f"{label}.r"),
                Connection(None, w1, label=f"{label}.w"))
    r2, w2 = os.pipe()
    return (Connection(r1, w2, label=f"{label}.a"),
            Connection(r2, w1, label=f"{label}.b"))

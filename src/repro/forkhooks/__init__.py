"""Fork handlers: the paper's core mechanism (sections 5.2-5.4)."""

from .augment import ForkPatcher, active_patcher
from .registry import (
    ForkHandlerRegistry,
    HandlerFailure,
    HandlerSet,
    run_around_fork,
)
from .resilience import PhaseTimeout, Quarantine, ResiliencePolicy
from .syncobjects import (
    GLOBAL_SYNC_REGISTRY,
    ManagedSyncObject,
    SyncObjectRegistry,
    manage_lock,
)

__all__ = [
    "ForkPatcher", "active_patcher",
    "ForkHandlerRegistry", "HandlerFailure", "HandlerSet", "run_around_fork",
    "PhaseTimeout", "Quarantine", "ResiliencePolicy",
    "GLOBAL_SYNC_REGISTRY", "ManagedSyncObject", "SyncObjectRegistry",
    "manage_lock",
]

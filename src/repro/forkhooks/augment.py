"""Augmented fork functions: hooking the registry into ``os.fork``.

Paper Listing 4 shows Dionea's Python technique verbatim::

    __python_fork = os.fork
    os.fork = _dionea_fork

i.e. a *method alias*: the original fork is saved and a wrapper installed
that brackets it with the prepare/parent/child handlers (phases A/B/C of
section 5.4).  We reproduce that mechanism as :class:`ForkPatcher`, and —
because the reproduction targets modern CPython — also offer the
interpreter-native registration path ``os.register_at_fork`` (added in
3.7, long after the paper) as an alternative backend.

Both backends drive the same :class:`~repro.forkhooks.registry.
ForkHandlerRegistry`, so handler semantics are identical; only the
interception point differs:

* ``alias`` backend (the paper's): catches every call through the
  ``os.fork`` *name*.  Faithful, and additionally able to *abort* the fork
  when a prepare handler fails — something ``register_at_fork`` cannot do.
* ``atfork`` backend: catches forks the alias cannot see (extension
  modules calling ``fork(2)`` directly through the C API), but prepare
  failures can only be logged, not veto the fork.

Only one backend may be active at a time, otherwise every handler would
run twice around one fork.
"""

from __future__ import annotations

import os
import threading
from typing import Callable, Optional

from ..obs import causality
from ..obs import metrics as obs_metrics
from ..obs.blackbox import BLACKBOX
from ..obs.spans import SPANS
from ..testkit import faults
from ..util.errors import ForkHookError
from ..util.ringlog import debug_event
from . import resilience
from .registry import ForkHandlerRegistry

_install_lock = threading.Lock()
_active_patcher: Optional["ForkPatcher"] = None


class ForkPatcher:
    """Owns the patched ``os.fork`` and routes it through a registry."""

    def __init__(self, registry: ForkHandlerRegistry,
                 backend: str = "alias"):
        if backend not in ("alias", "atfork"):
            raise ForkHookError(f"unknown backend: {backend!r}")
        self.registry = registry
        self.backend = backend
        self._original_fork: Optional[Callable[[], int]] = None
        self._wrapper: Optional[Callable[[], int]] = None
        self._installed = False
        #: reentrancy guard: a fork handler that itself calls os.fork
        #: would recurse into the bracket and deadlock on the locks the
        #: outer prepare already holds — the inner call gets a bare fork.
        self._reentry = threading.local()
        #: Called in the parent with the child's pid after a successful
        #: fork (paper Listing 4 appends the pid to ``_processes``).
        #: Only available on the ``alias`` backend — ``register_at_fork``
        #: callbacks never see the pid.
        self.on_child_forked: Optional[Callable[[int], None]] = None

    # -- lifecycle ------------------------------------------------------------

    @property
    def installed(self) -> bool:
        return self._installed

    def install(self) -> None:
        global _active_patcher
        with _install_lock:
            if self._installed:
                raise ForkHookError("patcher already installed")
            if _active_patcher is not None:
                raise ForkHookError(
                    "another fork patcher is active; uninstall it first")
            if self.backend == "alias":
                self._original_fork = os.fork
                # Bind the wrapper once: attribute access on a method
                # creates a fresh bound object every time, and uninstall
                # must compare identities.
                self._wrapper = self._augmented_fork
                os.fork = self._wrapper  # type: ignore[assignment]
            else:
                # register_at_fork entries cannot be unregistered, so the
                # callbacks consult self._installed and become no-ops after
                # uninstall().  prepare/parent/child order matches POSIX.
                os.register_at_fork(
                    before=self._atfork_before,
                    after_in_parent=self._atfork_parent,
                    after_in_child=self._atfork_child,
                )
            self._installed = True
            _active_patcher = self
            debug_event("forkhooks", f"fork patcher installed ({self.backend})")

    def uninstall(self) -> None:
        global _active_patcher
        with _install_lock:
            if not self._installed:
                return
            if self.backend == "alias":
                if os.fork is not self._wrapper:
                    # Someone re-patched over us; restoring would clobber
                    # their wrapper.  Refuse loudly rather than corrupt.
                    raise ForkHookError(
                        "os.fork was re-patched by someone else; "
                        "cannot restore safely")
                os.fork = self._original_fork  # type: ignore[assignment]
                self._original_fork = None
            self._installed = False
            if _active_patcher is self:
                _active_patcher = None
            debug_event("forkhooks", "fork patcher uninstalled")

    def __enter__(self) -> "ForkPatcher":
        self.install()
        return self

    def __exit__(self, *exc_info) -> None:
        self.uninstall()

    # -- alias backend ----------------------------------------------------------

    def _augmented_fork(self) -> int:
        """The Dionea fork of Listing 4: A, fork, then B or C."""
        if getattr(self._reentry, "depth", 0) \
                or resilience.in_handler_context():
            # fork() called from inside a fork handler (directly, or by
            # code a handler invoked).  Re-entering the bracket would
            # re-run prepare while its locks are already held — certain
            # deadlock.  The ability to fork is the debuggee's, not
            # ours: hand out a bare fork and log the misbehaviour.
            obs_metrics.inc("fork.reentrant")
            debug_event("forkhooks",
                        "fork called from a fork handler; "
                        "bypassing bracket (bare fork)")
            return self._original_fork()
        self._reentry.depth = 1
        try:
            return self._bracketed_fork()
        finally:
            self._reentry.depth = 0

    def _bracketed_fork(self) -> int:
        registry = self.registry
        # One span for the whole parent-side bracket (A → fork(2) → B):
        # the window during which the debuggee is frozen by the fork
        # protocol.  The child's copy of the open token dies with the
        # obs fork reset, so only the parent records it.  The bracket
        # parents on the forking thread's context — or the control verb
        # that resumed this process — and its own context is *staged*
        # so the child's obs handler can root the child's trace under
        # it (the fork flow edge of the causal timeline).
        bracket = SPANS.begin("fork.bracket", cat="fork",
                              parent=causality.fork_parent_context())
        causality.stage_fork(bracket.context)
        try:
            registry.run_prepare()  # A — may raise, aborting the fork
        except BaseException:
            causality.clear_pending_fork()
            raise
        try:
            # Injection point fork.os_fork: a raised OSError (EAGAIN,
            # ENOMEM...) is fork(2) itself failing after prepare ran —
            # the unwind below must leave the parent exactly as found.
            faults.maybe_fault("fork.os_fork")
            pid = self._original_fork()
        except BaseException:
            causality.clear_pending_fork()
            registry.run_parent()  # undo A; we are still the parent
            obs_metrics.inc("fork.failures")
            raise
        if pid == 0:
            registry.run_child()  # C
            return 0
        causality.clear_pending_fork()
        registry.run_parent()  # B
        if bracket.args is None:
            bracket.args = {"child_pid": pid}
        else:
            bracket.args["child_pid"] = pid
        bracket.end()
        # Durable lineage: the bracket span carries child_pid, and a
        # parent SIGKILLed later must still name its subtree post
        # mortem.  No-op unless the black box is enabled.
        BLACKBOX.flush()
        obs_metrics.inc("fork.forks")
        registry.note_clean_fork()
        if self.on_child_forked is not None:
            try:
                self.on_child_forked(pid)
            except Exception:  # noqa: BLE001 - bookkeeping must not break fork
                debug_event("forkhooks", "on_child_forked callback failed")
        return pid

    # -- atfork backend ----------------------------------------------------------

    def _atfork_before(self) -> None:
        if not self._installed:
            return
        try:
            self.registry.run_prepare()
        except ForkHookError:
            # register_at_fork offers no way to veto the fork; the prepare
            # unwind already released what was acquired, so the child just
            # starts undebugged.  Record it.
            debug_event("forkhooks", "prepare failed under atfork backend; "
                                     "fork proceeds undebugged")

    def _atfork_parent(self) -> None:
        if self._installed:
            self.registry.run_parent()
            obs_metrics.inc("fork.forks")

    def _atfork_child(self) -> None:
        if self._installed:
            self.registry.run_child()


def active_patcher() -> Optional[ForkPatcher]:
    """The currently installed patcher, if any."""
    return _active_patcher

"""Do-no-harm resilience for fork handlers: deadlines and quarantine.

The paper sells a *low-intrusive* debugger, but the fork-handler bracket
is the one place the debugger stands directly in the debuggee's control
flow: a prepare handler that hangs freezes every future ``fork()``, and
a handler that raises can abort a fork the program needed.  This module
supplies the policy that keeps the bracket harmless:

* **Per-phase deadlines.**  Untrusted prepare handlers run on a
  sacrificial daemon thread and are abandoned after
  ``DIONEA_FORK_DEADLINE`` seconds — the fork proceeds; debugging of the
  new child may degrade, the debuggee's ability to fork never does.

* **Quarantine.**  A handler that times out or raises is skipped on
  subsequent forks (counted, logged) and auto-reinstated after
  ``DIONEA_FORK_REINSTATE`` clean forks — a transiently sick handler
  gets back in, a permanently sick one stays benched instead of
  re-breaking every fork.

Trusted handler sets (Dionea's own phases A/B/C) are exempt from the
sandbox: they run inline on the forking thread because they manipulate
thread-affine state (``RLock`` ownership, ``sys.settrace``) that cannot
move to another thread.  Their failures are handled one level up: a
trusted phase-C failure triggers degraded mode (the debugger detaches,
the debuggee runs on undebugged).

The sandbox is deliberately best-effort about cleanup: a handler
abandoned mid-``acquire`` may leave a lock held by a zombie thread.  The
quarantined handler's *parent* callback (the designated undo of prepare,
per POSIX practice) is run — also under a deadline — to release what can
be released.  What cannot be released belonged to the handler's own
objects, never the debuggee's: Dionea's sync-object sweep is trusted and
never sandboxed.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from ..obs import metrics as obs_metrics
from ..util.errors import ForkHookError
from ..util.ringlog import debug_event

Handler = Callable[[], None]

#: env knob: seconds an untrusted prepare/undo callback may run
DEADLINE_ENV = "DIONEA_FORK_DEADLINE"
#: env knob: clean forks before a quarantined handler is reinstated
REINSTATE_ENV = "DIONEA_FORK_REINSTATE"

_DEFAULT_DEADLINE = 5.0
_DEFAULT_REINSTATE = 3


class PhaseTimeout(ForkHookError):
    """An untrusted phase callback outlived its deadline."""


#: set on any thread currently executing a sandboxed phase callback, so
#: the fork patcher's reentrancy guard can see through the sandbox: a
#: handler that calls fork() gets a bare fork whether it runs inline on
#: the forking thread or on a sacrificial thread here.
_handler_context = threading.local()


def in_handler_context() -> bool:
    """True on a thread that is running a sandboxed phase callback."""
    return bool(getattr(_handler_context, "active", 0))


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    if not raw:
        return default
    try:
        value = float(raw)
    except ValueError:
        return default
    return value if value > 0 else default


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        return default
    return value if value > 0 else default


@dataclass(frozen=True)
class ResiliencePolicy:
    """Knobs for the do-no-harm bracket.

    ``prepare_deadline`` bounds each *untrusted* prepare (and undo)
    callback; ``reinstate_after`` is the clean-fork count that lifts a
    quarantine; ``contain_prepare`` turns prepare failures from
    fork-aborting (the legacy registry semantics, kept for registries
    with no policy) into contained: undo, quarantine, fork anyway.
    """

    prepare_deadline: float = _DEFAULT_DEADLINE
    reinstate_after: int = _DEFAULT_REINSTATE
    contain_prepare: bool = True

    @classmethod
    def from_env(cls) -> "ResiliencePolicy":
        return cls(
            prepare_deadline=_env_float(DEADLINE_ENV, _DEFAULT_DEADLINE),
            reinstate_after=_env_int(REINSTATE_ENV, _DEFAULT_REINSTATE),
        )


@dataclass
class QuarantineEntry:
    label: str
    reason: str
    #: clean forks still required before reinstatement
    remaining: int


class Quarantine:
    """Bench for misbehaving handler sets, with automatic parole.

    Thread-safe; consulted on every fork bracket.  A benched handler is
    *skipped* (all three phases — running parent/child for a handler
    whose prepare never ran would release locks it does not hold), each
    skip counted, and after ``reinstate_after`` completed forks the
    handler is quietly put back.
    """

    def __init__(self, policy: ResiliencePolicy):
        self.policy = policy
        self._lock = threading.Lock()
        self._benched: Dict[str, QuarantineEntry] = {}

    def record_failure(self, label: str, reason: str) -> None:
        with self._lock:
            self._benched[label] = QuarantineEntry(
                label=label, reason=reason,
                remaining=self.policy.reinstate_after)
        obs_metrics.inc("fork.quarantined", label=label)
        debug_event("forkhooks",
                    f"handler {label!r} quarantined: {reason}; "
                    f"reinstating after {self.policy.reinstate_after} "
                    f"clean forks")
        # Durable evidence: a quarantine is exactly the kind of "why did
        # debugging degrade" question the black box exists to answer.
        from ..obs.blackbox import BLACKBOX, REASON_QUARANTINE
        BLACKBOX.force_flush(f"{REASON_QUARANTINE}:{label}")

    def should_skip(self, label: str) -> bool:
        with self._lock:
            benched = label in self._benched
        if benched:
            obs_metrics.inc("fork.quarantine_skips", label=label)
        return benched

    def note_clean_fork(self) -> None:
        """One fork bracket completed; advance every bench clock."""
        reinstated = []
        with self._lock:
            for label, entry in list(self._benched.items()):
                entry.remaining -= 1
                if entry.remaining <= 0:
                    del self._benched[label]
                    reinstated.append(label)
        for label in reinstated:
            obs_metrics.inc("fork.reinstated", label=label)
            debug_event("forkhooks",
                        f"handler {label!r} reinstated after clean forks")

    def benched_labels(self):
        with self._lock:
            return sorted(self._benched)

    def clear(self) -> None:
        with self._lock:
            self._benched.clear()


def run_with_deadline(label: str, phase: str, handler: Handler,
                      deadline: float) -> None:
    """Run *handler* on a sacrificial thread; abandon it past *deadline*.

    Raises :class:`PhaseTimeout` if the handler outlives its budget (the
    thread is left to finish or hang as a daemon — it can never block
    process exit), and re-raises whatever the handler itself raised.

    This is only safe for *untrusted* handlers: the callback runs on a
    different thread than the one calling ``fork()``, so thread-affine
    state (RLock ownership, thread-locals) does not carry.  Dionea's own
    handlers are trusted and never routed through here.
    """
    box: dict = {}

    def _target() -> None:
        _handler_context.active = 1
        try:
            handler()
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            box["exc"] = exc
        finally:
            _handler_context.active = 0

    thread = threading.Thread(
        target=_target, name=f"dionea-sandbox-{label}-{phase}", daemon=True)
    thread.start()
    thread.join(deadline)
    if thread.is_alive():
        obs_metrics.inc("fork.phase_timeouts", label=label, phase=phase)
        raise PhaseTimeout(
            f"{phase} handler {label!r} exceeded {deadline:.1f}s deadline; "
            f"abandoned")
    exc = box.get("exc")
    if exc is not None:
        raise exc

"""Synchronization-object registry and the pre-fork ownership sweep.

Paper section 5.3, problem 1: *"Dionea takes ownership of the debuggee's
synchronization objects, e.g. mutex.lock before forking the process.
Taking ownership ... ensures that the thread that survives in the child
owns the synchronization objects, therefore this thread can later release
the synchronization objects, eliminating the possibility of deadlocks."*

Background: after ``fork`` only the forking thread exists in the child
(section 5.1).  Any mutex another thread held at the instant of fork is
copied into the child in the *locked* state with no owner left alive —
the first child thread that touches it deadlocks forever.  The classic
fix, encoded here, is:

* every debugger-visible sync object registers itself at construction;
* the **prepare** fork handler acquires all of them (in a single global
  order, so two concurrent forks cannot deadlock against each other);
* the **parent** handler releases them all;
* the **child** handler *reinitialises* them (fresh, unlocked state) —
  matching what MRI/YARV fork handlers do for the interpreter's own locks
  (paper Listings 1 and 2).

Objects register through weak references: the registry must never keep a
debuggee's lock alive, and a collected lock silently drops out of the
sweep.
"""

from __future__ import annotations

import itertools
import threading
import weakref
from typing import Callable, Dict, List, Optional

from ..util.errors import SyncObjectError
from ..util.ringlog import debug_event


class ManagedSyncObject:
    """Adapter the registry holds for one debuggee sync object.

    ``acquire``/``release`` bracket the fork; ``reinit`` rebuilds the
    object in the child.  Acquire honours *timeout* so a wedged debuggee
    lock turns into a diagnosable :class:`SyncObjectError` instead of
    hanging the fork forever.
    """

    def __init__(self, name: str,
                 acquire: Callable[[float], bool],
                 release: Callable[[], None],
                 reinit: Callable[[], None]):
        self.name = name
        self._acquire = acquire
        self._release = release
        self._reinit = reinit

    def acquire(self, timeout: float) -> bool:
        return self._acquire(timeout)

    def release(self) -> None:
        self._release()

    def reinit(self) -> None:
        self._reinit()


class SyncObjectRegistry:
    """Weak registry of managed sync objects plus the fork-time sweep."""

    def __init__(self, acquire_timeout: float = 5.0):
        self._lock = threading.RLock()
        #: token -> (alive_check, managed).  alive_check is a weakref to
        #: the owner when the owner supports weak references (the entry
        #: silently drops when the owner is collected), else a constant
        #: True (the caller must unregister explicitly — this covers
        #: ``_thread.lock``, which is not weak-referenceable).
        self._entries: Dict[int, tuple] = {}
        self._counter = itertools.count()
        self._held: List[ManagedSyncObject] = []
        self.acquire_timeout = acquire_timeout

    # -- registration --------------------------------------------------------

    def register(self, owner: object, managed: ManagedSyncObject) -> int:
        """Track *managed*, keyed by (and weakly bound to) *owner*.

        Returns the registration token (also the global lock-order rank).
        """
        with self._lock:
            token = next(self._counter)

            def _cleanup(_ref, token=token):
                with self._lock:
                    self._entries.pop(token, None)

            try:
                alive = weakref.ref(owner, _cleanup)
            except TypeError:
                alive = None  # owner not weak-referenceable: strong entry
            self._entries[token] = (alive, managed)
            return token

    def unregister(self, token: int) -> None:
        with self._lock:
            self._entries.pop(token, None)

    def live_objects(self) -> List[ManagedSyncObject]:
        """Currently-alive managed objects in global acquisition order."""
        with self._lock:
            live = []
            for token in sorted(self._entries):
                alive, managed = self._entries[token]
                if alive is None or alive() is not None:
                    live.append(managed)
            return live

    def __len__(self) -> int:
        with self._lock:
            return sum(1 for alive, _ in self._entries.values()
                       if alive is None or alive() is not None)

    # -- fork-time sweep ------------------------------------------------------

    def take_ownership(self) -> int:
        """Prepare phase: acquire every live object in global order.

        On any failure, everything acquired so far is released and the
        error propagates — the registry must leave the process exactly as
        it found it when the fork is aborted.
        """
        with self._lock:
            if self._held:
                raise SyncObjectError(
                    "take_ownership while a previous sweep is still held")
        acquired: List[ManagedSyncObject] = []
        for managed in self.live_objects():
            try:
                got = managed.acquire(self.acquire_timeout)
            except BaseException as exc:
                self._release_list(acquired)
                raise SyncObjectError(
                    f"acquiring {managed.name!r} raised {exc!r}") from exc
            if not got:
                self._release_list(acquired)
                raise SyncObjectError(
                    f"could not acquire {managed.name!r} within "
                    f"{self.acquire_timeout:.1f}s before fork")
            acquired.append(managed)
        with self._lock:
            self._held = acquired
        debug_event("syncobjects", f"took ownership of {len(acquired)} objects")
        return len(acquired)

    @staticmethod
    def _release_list(objects: List[ManagedSyncObject]) -> None:
        for managed in reversed(objects):
            try:
                managed.release()
            except BaseException:  # noqa: BLE001 - keep releasing the rest
                debug_event("syncobjects",
                            f"release of {managed.name!r} failed during unwind")

    def release_ownership(self) -> int:
        """Parent phase: release everything the sweep acquired."""
        with self._lock:
            held, self._held = self._held, []
        self._release_list(held)
        return len(held)

    def reinit_after_fork(self) -> int:
        """Child phase: rebuild every live object in a fresh unlocked state."""
        with self._lock:
            held, self._held = self._held, []
        count = 0
        for managed in self.live_objects():
            try:
                managed.reinit()
                count += 1
            except BaseException:  # noqa: BLE001
                debug_event("syncobjects",
                            f"reinit of {managed.name!r} failed in child")
        return count

    @property
    def holding(self) -> bool:
        with self._lock:
            return bool(self._held)


# -- adapters for the common stdlib primitives -------------------------------

def manage_lock(registry: SyncObjectRegistry, lock: threading.Lock,
                name: str = "lock", owner: object = None) -> int:
    """Register a ``threading.Lock``-like object (Lock, RLock, Semaphore).

    ``reinit`` force-releases the lock if the sweep left it held — in a
    real child the new lock state comes from the object's own owner
    (repro.mp primitives reinitialise their OS-level state instead).

    Pass *owner* (any weak-referenceable object whose lifetime matches the
    lock's) to get automatic deregistration; plain ``_thread.lock``
    objects cannot be weakly referenced, so without an owner the entry
    lives until :meth:`SyncObjectRegistry.unregister`.
    """
    def _acquire(timeout: float) -> bool:
        return lock.acquire(timeout=timeout)

    def _release() -> None:
        try:
            lock.release()
        except RuntimeError:
            pass  # already free: releasing twice must stay harmless

    return registry.register(owner if owner is not None else lock,
                             ManagedSyncObject(
                                 name=name, acquire=_acquire,
                                 release=_release, reinit=_release))


#: Process-global registry used by Dionea's own fork handlers.  repro.mp
#: primitives register here automatically when a debugger is active.
GLOBAL_SYNC_REGISTRY = SyncObjectRegistry()

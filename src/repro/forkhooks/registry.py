"""Ordered fork-handler registry.

Paper section 5.2: *"Fork handlers are functions hooked to the fork
function"*; section 5.4 splits Dionea's handlers into three phases that
mirror POSIX ``pthread_atfork``:

* **prepare** — runs in the parent *before* the fork (Dionea phase A:
  acquire sync objects, disable tracing);
* **parent**  — runs in the parent *after* the fork (phase B: release sync
  objects, re-enable tracing);
* **child**   — runs in the child *after* the fork (phase C: reinitialise
  sync objects, close inherited sockets, rebuild metadata, restart the
  listener thread, announce to the client, re-enable tracing).

Ordering follows POSIX: *prepare* handlers run in **reverse** registration
order (last registered, first run), *parent* and *child* handlers run in
registration order.  That discipline is what lets independently written
handlers nest lock acquisitions correctly — section 5.2 notes that "other
hooked fork handlers will be called along with our fork handlers", so the
registry must compose with handlers it does not own.

Handler exceptions are contained: a failing prepare handler aborts the
fork (its effects are unwound by running the parent handlers of everything
that already prepared); failing parent/child handlers are recorded and the
rest still run — half-configured debugging must not kill the debuggee.

With a :class:`~repro.forkhooks.resilience.ResiliencePolicy` attached
(what the Dionea facade does), the contract hardens into *do-no-harm*:
untrusted handlers run under per-phase deadlines on a sacrificial
thread, a handler that hangs or raises is undone, quarantined, and the
fork **proceeds**; a failure in a *trusted* set (Dionea's own phases)
flags the bracket so the child detaches the debugger cleanly instead of
running half-debugged.  Without a policy, the legacy abort semantics
above are preserved bit-for-bit.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from time import perf_counter as _perf_counter
from typing import Callable, List, Optional, Tuple

from ..obs import metrics as obs_metrics
from ..util.errors import ForkHookError
from ..util.ringlog import debug_event
from .resilience import Quarantine, ResiliencePolicy, run_with_deadline

Handler = Callable[[], None]


def _timed(phase: str, label: str, handler: Handler) -> None:
    """Run one phase callback, recording its duration per hook.

    Fork-handler latency is a first-class §7 quantity: every phase runs
    with the debuggee wholly or partly stopped (prepare holds every sync
    object), so a slow hook is invisible intrusion.  The histogram is
    per (phase, label) so a misbehaving registration is attributable.
    """
    t0 = _perf_counter()
    try:
        handler()
    finally:
        obs_metrics.observe(f"fork.{phase}_seconds",
                            _perf_counter() - t0, label=label)


@dataclass(frozen=True)
class HandlerSet:
    """One registration: up to three phase callbacks plus a label.

    ``trusted`` marks a set whose callbacks manipulate thread-affine
    state (RLock ownership, trace hooks) and therefore must run inline
    on the forking thread — never on the resilience sandbox thread, and
    never quarantined (a trusted failure degrades the child instead).
    Dionea's own phases A/B/C register trusted; everything else defaults
    to untrusted.
    """

    label: str
    prepare: Optional[Handler] = None
    parent: Optional[Handler] = None
    child: Optional[Handler] = None
    trusted: bool = False

    def __post_init__(self):
        if self.prepare is None and self.parent is None and self.child is None:
            raise ForkHookError(
                f"handler set {self.label!r} registers no callbacks")


@dataclass
class HandlerFailure:
    """A phase callback that raised; kept for post-mortem inspection."""

    label: str
    phase: str
    exception: BaseException


class ForkHandlerRegistry:
    """Thread-safe ordered registry of :class:`HandlerSet` objects.

    With *policy* set, the registry applies do-no-harm semantics (see
    module docstring); ``on_child_degrade`` is called in the child when
    a trusted phase failed and the debugger must detach rather than run
    half-configured.
    """

    def __init__(self, policy: Optional[ResiliencePolicy] = None) -> None:
        self._lock = threading.RLock()
        self._handlers: List[HandlerSet] = []
        self._failures: List[HandlerFailure] = []
        self.policy = policy
        self.quarantine = Quarantine(policy) if policy is not None else None
        #: child-side degrade hook (set by the Dionea facade)
        self.on_child_degrade: Optional[Callable[[str], None]] = None
        #: per-bracket state (skip set, degrade reason) — thread-local
        #: because the whole prepare→fork→parent/child bracket runs on
        #: the one thread that called fork()
        self._bracket = threading.local()

    # -- registration -------------------------------------------------------

    def register(self, label: str, prepare: Optional[Handler] = None,
                 parent: Optional[Handler] = None,
                 child: Optional[Handler] = None,
                 trusted: bool = False) -> HandlerSet:
        handler_set = HandlerSet(label=label, prepare=prepare,
                                 parent=parent, child=child,
                                 trusted=trusted)
        with self._lock:
            if any(existing.label == label for existing in self._handlers):
                raise ForkHookError(f"duplicate handler label: {label!r}")
            self._handlers.append(handler_set)
        return handler_set

    def unregister(self, label: str) -> None:
        with self._lock:
            for i, handler_set in enumerate(self._handlers):
                if handler_set.label == label:
                    del self._handlers[i]
                    return
        raise ForkHookError(f"unknown handler label: {label!r}")

    def clear(self) -> None:
        with self._lock:
            self._handlers.clear()
            self._failures.clear()

    @property
    def labels(self) -> List[str]:
        with self._lock:
            return [h.label for h in self._handlers]

    @property
    def failures(self) -> List[HandlerFailure]:
        with self._lock:
            return list(self._failures)

    def clear_failures(self) -> None:
        with self._lock:
            self._failures.clear()

    # -- phase execution -----------------------------------------------------

    def _snapshot(self) -> List[HandlerSet]:
        with self._lock:
            return list(self._handlers)

    # -- bracket-local state (do-no-harm mode) ------------------------------

    def _bracket_skips(self) -> set:
        skips = getattr(self._bracket, "skips", None)
        return skips if skips is not None else set()

    def _set_degrade(self, reason: str) -> None:
        if getattr(self._bracket, "degrade", None) is None:
            self._bracket.degrade = reason

    def _clear_bracket(self) -> None:
        self._bracket.skips = None
        self._bracket.degrade = None

    def note_clean_fork(self) -> None:
        """Parent side, after a completed fork: advance quarantine parole."""
        if self.quarantine is not None:
            self.quarantine.note_clean_fork()

    def _run_phase_callback(self, phase: str, handler_set: HandlerSet,
                            callback: Handler) -> None:
        """One phase callback, timed; untrusted ones under the deadline."""
        if self.policy is not None and not handler_set.trusted:
            deadline = self.policy.prepare_deadline
            _timed(phase, handler_set.label,
                   lambda: run_with_deadline(handler_set.label, phase,
                                             callback, deadline))
        else:
            _timed(phase, handler_set.label, callback)

    def _contain_prepare_failure(self, handler_set: HandlerSet,
                                 exc: BaseException) -> None:
        """Do-no-harm response to a failed/hung prepare: undo, bench, skip.

        The handler's own *parent* callback is its designated undo; it
        runs under the same deadline discipline so a hung undo cannot
        re-wedge the fork.  The whole set is skipped for the rest of
        this bracket (parent/child of a set whose prepare failed would
        release locks it does not hold), and untrusted sets are benched
        across brackets.  A trusted failure means Dionea itself is
        broken mid-fork: flag the bracket so the child detaches.
        """
        label = handler_set.label
        obs_metrics.inc("fork.prepare_contained", label=label)
        debug_event("forkhooks",
                    f"prepare handler {label!r} failed "
                    f"({type(exc).__name__}: {exc}); containing — "
                    f"fork proceeds")
        self._record_failure(label, "prepare", exc)
        if handler_set.parent is not None:
            try:
                self._run_phase_callback("undo", handler_set,
                                         handler_set.parent)
            except BaseException as undo_exc:  # noqa: BLE001
                self._record_failure(label, "undo", undo_exc)
        skips = getattr(self._bracket, "skips", None)
        if skips is not None:
            skips.add(label)
        if handler_set.trusted:
            self._set_degrade(
                f"trusted prepare {label!r} failed: {type(exc).__name__}")
        elif self.quarantine is not None:
            self.quarantine.record_failure(
                label, f"prepare failed: {type(exc).__name__}")

    def run_prepare(self) -> List[HandlerSet]:
        """Run prepare handlers (reverse order).

        Returns the list of handler sets whose prepare phase completed, so
        the caller can unwind exactly those if a later one fails.  On
        failure the already-prepared sets have their *parent* callbacks run
        (the parent phase is the designated "undo" of prepare, per POSIX
        practice) and :class:`ForkHookError` is raised — the fork must not
        proceed with half the locks held.

        Under a contain-mode policy the failure path changes: the sick
        handler alone is undone/benched and the fork proceeds — the
        debuggee's ability to fork is never hostage to a handler.
        """
        contain = self.policy is not None and self.policy.contain_prepare
        if contain:
            self._bracket.skips = set()
            self._bracket.degrade = None
        prepared: List[HandlerSet] = []
        for handler_set in reversed(self._snapshot()):
            if (contain and self.quarantine is not None
                    and not handler_set.trusted
                    and self.quarantine.should_skip(handler_set.label)):
                self._bracket.skips.add(handler_set.label)
                continue
            if handler_set.prepare is None:
                prepared.append(handler_set)
                continue
            try:
                self._run_phase_callback("prepare", handler_set,
                                         handler_set.prepare)
            except BaseException as exc:
                if contain:
                    self._contain_prepare_failure(handler_set, exc)
                    continue
                debug_event("forkhooks",
                            f"prepare handler {handler_set.label!r} raised "
                            f"{type(exc).__name__}; unwinding")
                self._unwind(prepared)
                raise ForkHookError(
                    f"prepare handler {handler_set.label!r} failed: {exc!r}"
                ) from exc
            prepared.append(handler_set)
        return prepared

    def _unwind(self, prepared: List[HandlerSet]) -> None:
        # prepared is in execution order (i.e. reverse registration order);
        # undo in the opposite order to keep lock nesting well-formed.
        for handler_set in reversed(prepared):
            if handler_set.parent is None:
                continue
            try:
                handler_set.parent()
            except BaseException as exc:  # noqa: BLE001
                self._record_failure(handler_set.label, "unwind", exc)

    def run_parent(self) -> None:
        """Run parent handlers in registration order; contain failures."""
        skips = self._bracket_skips()
        try:
            for handler_set in self._snapshot():
                if handler_set.parent is None \
                        or handler_set.label in skips:
                    continue
                try:
                    self._run_phase_callback("parent", handler_set,
                                             handler_set.parent)
                except BaseException as exc:  # noqa: BLE001
                    self._record_failure(handler_set.label, "parent", exc)
                    if (self.quarantine is not None
                            and not handler_set.trusted):
                        self.quarantine.record_failure(
                            handler_set.label,
                            f"parent failed: {type(exc).__name__}")
        finally:
            self._clear_bracket()

    def run_child(self) -> None:
        """Run child handlers in registration order; contain failures.

        In do-no-harm mode a *trusted* child failure (or a degrade flag
        set by a trusted prepare failure) means the child cannot be
        debugged safely: ``on_child_degrade`` fires so the facade can
        detach the debugger — the child runs on, undebugged, output and
        exit status untouched.
        """
        skips = self._bracket_skips()
        degrade = getattr(self._bracket, "degrade", None)
        try:
            for handler_set in self._snapshot():
                if handler_set.child is None \
                        or handler_set.label in skips:
                    continue
                try:
                    self._run_phase_callback("child", handler_set,
                                             handler_set.child)
                except BaseException as exc:  # noqa: BLE001
                    self._record_failure(handler_set.label, "child", exc)
                    if handler_set.trusted and degrade is None:
                        degrade = (f"trusted child {handler_set.label!r} "
                                   f"failed: {type(exc).__name__}")
                    elif (self.quarantine is not None
                            and not handler_set.trusted):
                        self.quarantine.record_failure(
                            handler_set.label,
                            f"child failed: {type(exc).__name__}")
        finally:
            self._clear_bracket()
        if degrade is not None and self.on_child_degrade is not None:
            obs_metrics.inc("fork.child_degrades")
            debug_event("forkhooks", f"child degrading: {degrade}")
            try:
                self.on_child_degrade(degrade)
            except Exception:  # noqa: BLE001 - degrade must not kill child
                debug_event("forkhooks", "on_child_degrade callback failed")

    def _record_failure(self, label: str, phase: str,
                        exc: BaseException) -> None:
        debug_event("forkhooks",
                    f"{phase} handler {label!r} raised {type(exc).__name__}")
        with self._lock:
            self._failures.append(HandlerFailure(label, phase, exc))


def run_around_fork(registry: ForkHandlerRegistry,
                    fork: Callable[[], int]) -> Tuple[int, bool]:
    """Execute *fork* bracketed by the registry's three phases.

    Returns ``(pid, is_child)``.  This is the skeleton both the augmented
    ``os.fork`` (repro.forkhooks.augment) and tests drive.  The
    ``fork.os_fork`` injection point fires between prepare and the fork
    call, standing in for ``fork(2)`` failing (EAGAIN/ENOMEM) at the
    worst moment.
    """
    from ..obs import causality
    from ..obs.spans import SPANS
    from ..testkit import faults
    # The whole parent-side bracket (prepare → fork(2) → parent phase)
    # is one span: it is the window during which the debuggee is frozen
    # by the fork protocol.  The child's copy of the open token dies
    # with the obs fork reset, so only the parent records it.  Staging
    # the bracket's context is what lets the child's obs handler root
    # its trace under this span (mirrors augment._bracketed_fork).
    bracket = SPANS.begin("fork.bracket", cat="fork",
                          parent=causality.fork_parent_context())
    causality.stage_fork(bracket.context)
    try:
        registry.run_prepare()
    except BaseException:
        causality.clear_pending_fork()
        raise
    try:
        faults.maybe_fault("fork.os_fork")
        pid = fork()
    except BaseException:
        # fork itself failed: the parent still holds everything prepare
        # acquired; release it as if we were the (only) surviving parent.
        causality.clear_pending_fork()
        registry.run_parent()
        obs_metrics.inc("fork.failures")
        raise
    if pid == 0:
        registry.run_child()
        return pid, True
    causality.clear_pending_fork()
    registry.run_parent()
    if bracket.args is None:
        bracket.args = {"child_pid": pid}
    else:
        bracket.args["child_pid"] = pid
    bracket.end()
    # Make the lineage durable now: if this parent is SIGKILLed later,
    # the bracket span (with its child_pid) is what lets the post-mortem
    # timeline name the subtree.  No-op unless the black box is enabled;
    # non-blocking when it is.
    from ..obs.blackbox import BLACKBOX
    BLACKBOX.flush()
    obs_metrics.inc("fork.forks")
    registry.note_clean_fork()
    return pid, False

"""Ordered fork-handler registry.

Paper section 5.2: *"Fork handlers are functions hooked to the fork
function"*; section 5.4 splits Dionea's handlers into three phases that
mirror POSIX ``pthread_atfork``:

* **prepare** — runs in the parent *before* the fork (Dionea phase A:
  acquire sync objects, disable tracing);
* **parent**  — runs in the parent *after* the fork (phase B: release sync
  objects, re-enable tracing);
* **child**   — runs in the child *after* the fork (phase C: reinitialise
  sync objects, close inherited sockets, rebuild metadata, restart the
  listener thread, announce to the client, re-enable tracing).

Ordering follows POSIX: *prepare* handlers run in **reverse** registration
order (last registered, first run), *parent* and *child* handlers run in
registration order.  That discipline is what lets independently written
handlers nest lock acquisitions correctly — section 5.2 notes that "other
hooked fork handlers will be called along with our fork handlers", so the
registry must compose with handlers it does not own.

Handler exceptions are contained: a failing prepare handler aborts the
fork (its effects are unwound by running the parent handlers of everything
that already prepared); failing parent/child handlers are recorded and the
rest still run — half-configured debugging must not kill the debuggee.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from time import perf_counter as _perf_counter
from typing import Callable, List, Optional, Tuple

from ..obs import metrics as obs_metrics
from ..util.errors import ForkHookError
from ..util.ringlog import debug_event

Handler = Callable[[], None]


def _timed(phase: str, label: str, handler: Handler) -> None:
    """Run one phase callback, recording its duration per hook.

    Fork-handler latency is a first-class §7 quantity: every phase runs
    with the debuggee wholly or partly stopped (prepare holds every sync
    object), so a slow hook is invisible intrusion.  The histogram is
    per (phase, label) so a misbehaving registration is attributable.
    """
    t0 = _perf_counter()
    try:
        handler()
    finally:
        obs_metrics.observe(f"fork.{phase}_seconds",
                            _perf_counter() - t0, label=label)


@dataclass(frozen=True)
class HandlerSet:
    """One registration: up to three phase callbacks plus a label."""

    label: str
    prepare: Optional[Handler] = None
    parent: Optional[Handler] = None
    child: Optional[Handler] = None

    def __post_init__(self):
        if self.prepare is None and self.parent is None and self.child is None:
            raise ForkHookError(
                f"handler set {self.label!r} registers no callbacks")


@dataclass
class HandlerFailure:
    """A phase callback that raised; kept for post-mortem inspection."""

    label: str
    phase: str
    exception: BaseException


class ForkHandlerRegistry:
    """Thread-safe ordered registry of :class:`HandlerSet` objects."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._handlers: List[HandlerSet] = []
        self._failures: List[HandlerFailure] = []

    # -- registration -------------------------------------------------------

    def register(self, label: str, prepare: Optional[Handler] = None,
                 parent: Optional[Handler] = None,
                 child: Optional[Handler] = None) -> HandlerSet:
        handler_set = HandlerSet(label=label, prepare=prepare,
                                 parent=parent, child=child)
        with self._lock:
            if any(existing.label == label for existing in self._handlers):
                raise ForkHookError(f"duplicate handler label: {label!r}")
            self._handlers.append(handler_set)
        return handler_set

    def unregister(self, label: str) -> None:
        with self._lock:
            for i, handler_set in enumerate(self._handlers):
                if handler_set.label == label:
                    del self._handlers[i]
                    return
        raise ForkHookError(f"unknown handler label: {label!r}")

    def clear(self) -> None:
        with self._lock:
            self._handlers.clear()
            self._failures.clear()

    @property
    def labels(self) -> List[str]:
        with self._lock:
            return [h.label for h in self._handlers]

    @property
    def failures(self) -> List[HandlerFailure]:
        with self._lock:
            return list(self._failures)

    def clear_failures(self) -> None:
        with self._lock:
            self._failures.clear()

    # -- phase execution -----------------------------------------------------

    def _snapshot(self) -> List[HandlerSet]:
        with self._lock:
            return list(self._handlers)

    def run_prepare(self) -> List[HandlerSet]:
        """Run prepare handlers (reverse order).

        Returns the list of handler sets whose prepare phase completed, so
        the caller can unwind exactly those if a later one fails.  On
        failure the already-prepared sets have their *parent* callbacks run
        (the parent phase is the designated "undo" of prepare, per POSIX
        practice) and :class:`ForkHookError` is raised — the fork must not
        proceed with half the locks held.
        """
        prepared: List[HandlerSet] = []
        for handler_set in reversed(self._snapshot()):
            if handler_set.prepare is None:
                prepared.append(handler_set)
                continue
            try:
                _timed("prepare", handler_set.label, handler_set.prepare)
            except BaseException as exc:
                debug_event("forkhooks",
                            f"prepare handler {handler_set.label!r} raised "
                            f"{type(exc).__name__}; unwinding")
                self._unwind(prepared)
                raise ForkHookError(
                    f"prepare handler {handler_set.label!r} failed: {exc!r}"
                ) from exc
            prepared.append(handler_set)
        return prepared

    def _unwind(self, prepared: List[HandlerSet]) -> None:
        # prepared is in execution order (i.e. reverse registration order);
        # undo in the opposite order to keep lock nesting well-formed.
        for handler_set in reversed(prepared):
            if handler_set.parent is None:
                continue
            try:
                handler_set.parent()
            except BaseException as exc:  # noqa: BLE001
                self._record_failure(handler_set.label, "unwind", exc)

    def run_parent(self) -> None:
        """Run parent handlers in registration order; contain failures."""
        for handler_set in self._snapshot():
            if handler_set.parent is None:
                continue
            try:
                _timed("parent", handler_set.label, handler_set.parent)
            except BaseException as exc:  # noqa: BLE001
                self._record_failure(handler_set.label, "parent", exc)

    def run_child(self) -> None:
        """Run child handlers in registration order; contain failures."""
        for handler_set in self._snapshot():
            if handler_set.child is None:
                continue
            try:
                _timed("child", handler_set.label, handler_set.child)
            except BaseException as exc:  # noqa: BLE001
                self._record_failure(handler_set.label, "child", exc)

    def _record_failure(self, label: str, phase: str,
                        exc: BaseException) -> None:
        debug_event("forkhooks",
                    f"{phase} handler {label!r} raised {type(exc).__name__}")
        with self._lock:
            self._failures.append(HandlerFailure(label, phase, exc))


def run_around_fork(registry: ForkHandlerRegistry,
                    fork: Callable[[], int]) -> Tuple[int, bool]:
    """Execute *fork* bracketed by the registry's three phases.

    Returns ``(pid, is_child)``.  This is the skeleton both the augmented
    ``os.fork`` (repro.forkhooks.augment) and tests drive.  The
    ``fork.os_fork`` injection point fires between prepare and the fork
    call, standing in for ``fork(2)`` failing (EAGAIN/ENOMEM) at the
    worst moment.
    """
    from ..obs.spans import SPANS
    from ..testkit import faults
    # The whole parent-side bracket (prepare → fork(2) → parent phase)
    # is one span: it is the window during which the debuggee is frozen
    # by the fork protocol.  The child's copy of the open token dies
    # with the obs fork reset, so only the parent records it.
    bracket = SPANS.begin("fork.bracket", cat="fork")
    registry.run_prepare()
    try:
        faults.maybe_fault("fork.os_fork")
        pid = fork()
    except BaseException:
        # fork itself failed: the parent still holds everything prepare
        # acquired; release it as if we were the (only) surviving parent.
        registry.run_parent()
        obs_metrics.inc("fork.failures")
        raise
    if pid == 0:
        registry.run_child()
        return pid, True
    registry.run_parent()
    bracket.end()
    obs_metrics.inc("fork.forks")
    return pid, False

"""Software TM + transaction-safe debugging (the paper's §9 extension)."""

from .debug import MONITOR, TransactionMonitor, TxProfile
from .engine import (
    STMError,
    Transaction,
    TVar,
    TxStats,
    atomically,
    current_transaction,
    thread_stats,
)

__all__ = [
    "MONITOR", "TransactionMonitor", "TxProfile",
    "STMError", "Transaction", "TVar", "TxStats", "atomically",
    "current_transaction", "thread_stats",
]

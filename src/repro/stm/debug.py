"""Debugger integration for transactional code (paper §9 + refs [7, 33]).

The HTM-debugging literature the paper cites observes that ordinary
breakpoints are useless inside transactions: the stop itself aborts the
transaction (an HTM capacity/interrupt abort; in our STM, a stop parks
the thread mid-attempt and guarantees validation failure).  The safe
protocol, implemented here:

* the trace engine never parks a UE while a transaction is running — the
  STM reports boundaries, and debugging actions are deferred to them;
* **abort storms are a debugger event**: when one thread's abort streak
  crosses a threshold, the monitor reports it (ring log + optional
  client event via the active Dionea) and can park the thread *at the
  boundary* — outside any transaction — where inspection is safe;
* every boundary is recorded, so the client can render a transaction
  profile per UE (commits, aborts, hottest conflicting TVar).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..util.ids import UEId
from ..util.ringlog import debug_event


@dataclass
class TxProfile:
    """Aggregated boundary events for one UE."""

    commits: int = 0
    aborts: int = 0
    max_streak: int = 0
    conflicts: Dict[str, int] = field(default_factory=dict)

    def to_wire(self) -> dict:
        return {"commits": self.commits, "aborts": self.aborts,
                "max_streak": self.max_streak,
                "conflicts": dict(self.conflicts)}


class TransactionMonitor:
    """Per-process observer of transaction boundaries."""

    def __init__(self, storm_threshold: int = 16,
                 park_on_storm: bool = False):
        self.storm_threshold = storm_threshold
        self.park_on_storm = park_on_storm
        self._lock = threading.Lock()
        self._profiles: Dict[UEId, TxProfile] = {}
        self._storms: List[dict] = []

    # -- boundary processing ------------------------------------------------

    def record(self, kind: str, stats, conflict) -> None:
        ue = UEId.current()
        with self._lock:
            profile = self._profiles.get(ue)
            if profile is None:
                profile = TxProfile()
                self._profiles[ue] = profile
            if kind == "commit":
                profile.commits += 1
            else:
                profile.aborts += 1
                profile.max_streak = max(profile.max_streak, stats.streak)
                if conflict is not None:
                    profile.conflicts[conflict.name] = \
                        profile.conflicts.get(conflict.name, 0) + 1
            storm = (kind == "abort"
                     and stats.streak == self.storm_threshold)
            if storm:
                self._storms.append({
                    "ue": str(ue),
                    "streak": stats.streak,
                    "conflict": stats.last_conflict,
                })
        if storm:
            debug_event("stm", f"abort storm: {ue} aborted "
                               f"{stats.streak}x in a row "
                               f"(last conflict: {stats.last_conflict})")
            self._notify_debugger(ue)

    def _notify_debugger(self, ue: UEId) -> None:
        """Tell the active Dionea; optionally park at this safe point."""
        from ..core.dionea import current_dionea
        dionea = current_dionea()
        if dionea is None:
            return
        dionea.server.emit_event("stm_abort_storm", {
            "ue": {"pid": ue.pid, "tid": ue.tid},
            "threshold": self.storm_threshold,
        })
        if self.park_on_storm:
            # The UE is AT a boundary (no live transaction): parking here
            # is transaction-safe.  It stops at its next trace event.
            dionea.server.engine.request_suspend(ue)

    # -- introspection -----------------------------------------------------------

    def profile_for(self, ue: Optional[UEId] = None) -> TxProfile:
        ue = ue or UEId.current()
        with self._lock:
            return self._profiles.get(ue, TxProfile())

    def report(self) -> dict:
        with self._lock:
            return {
                "profiles": {str(ue): p.to_wire()
                             for ue, p in self._profiles.items()},
                "storms": list(self._storms),
            }

    def reset(self) -> None:
        with self._lock:
            self._profiles.clear()
            self._storms.clear()


#: Process-global monitor; ``boundary_hook`` is called by the engine at
#: every commit/abort boundary.  Swap it (tests) or tune its threshold.
MONITOR = TransactionMonitor()


def boundary_hook(kind: str, stats, conflict) -> None:
    MONITOR.record(kind, stats, conflict)

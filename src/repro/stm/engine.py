"""Software transactional memory — the paper's §9 future-work direction.

Paper section 9: *"There is previous research on debugging programs that
use Hardware Transactional Memory ... and it has been proved that is
possible to eliminate the GVL of CRuby using HTM.  These facts suggest
that it would be possible to add support in Dionea for debugging
parallel Ruby programs that use HTM instead of GIL."*

This container has no HTM (and CPython no GIL-elision build), so per the
substitution rule the closest software equivalent is implemented: a
TL2-style **software** TM — global version clock, per-TVar versioned
locks, optimistic read sets validated at commit, buffered write sets —
which exhibits exactly the property that makes TM debugging hard and
that Dionea integration must handle (see :mod:`repro.stm.debug`):
**stopping inside a transaction invalidates it**, so the debugger must
stop at transaction *boundaries*.

Usage::

    from repro.stm import TVar, atomically

    balance_a, balance_b = TVar(100), TVar(0)

    def transfer(amount):
        def body(tx):
            a = tx.read(balance_a)
            if a < amount:
                return False
            tx.write(balance_a, a - amount)
            tx.write(balance_b, tx.read(balance_b) + amount)
            return True
        return atomically(body)
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, TypeVar

from ..util.errors import ReproError

T = TypeVar("T")


class STMError(ReproError):
    """Illegal STM usage (nested atomics, reads outside a transaction...)."""


class _Retry(Exception):
    """Internal control flow: the transaction must restart."""

    def __init__(self, tvar: Optional["TVar"] = None):
        self.tvar = tvar


#: Global version clock (TL2's "GV").  Incremented on every commit.
_clock_lock = threading.Lock()
_clock = 0


def _read_clock() -> int:
    return _clock


def _advance_clock() -> int:
    global _clock
    with _clock_lock:
        _clock += 1
        return _clock


_tvar_ids = itertools.count(1)


class TVar:
    """A transactional variable: versioned value + a short-held lock."""

    __slots__ = ("_id", "name", "_value", "_version", "_lock")

    def __init__(self, value: T = None, name: Optional[str] = None):
        self._id = next(_tvar_ids)
        self.name = name or f"tvar-{self._id}"
        self._value = value
        self._version = 0
        self._lock = threading.Lock()

    # -- unsynchronised peeks (tests, debugger Variables view) ---------------

    def peek(self) -> T:
        """Racy read outside any transaction (diagnostics only)."""
        return self._value

    @property
    def version(self) -> int:
        return self._version

    def __repr__(self) -> str:  # pragma: no cover
        return f"<TVar {self.name} v{self._version}>"


@dataclass
class TxStats:
    """Per-thread transaction accounting (read by repro.stm.debug)."""

    commits: int = 0
    aborts: int = 0
    #: aborts of the currently-running attempt streak
    streak: int = 0
    last_conflict: Optional[str] = None


class Transaction:
    """One attempt: optimistic read set + buffered write set."""

    def __init__(self, read_version: int):
        self._read_version = read_version
        self._reads: Dict[TVar, int] = {}
        self._writes: Dict[TVar, Any] = {}
        self.active = True

    # -- the API transaction bodies use ---------------------------------------

    def read(self, tvar: TVar) -> Any:
        if not self.active:
            raise STMError("read on a finished transaction")
        if tvar in self._writes:
            return self._writes[tvar]
        # TL2 read: value + version, consistent against the read stamp.
        while True:
            v0 = tvar._version
            value = tvar._value
            if tvar._lock.locked() or tvar._version != v0:
                continue  # torn read: someone is committing; spin briefly
            if v0 > self._read_version:
                raise _Retry(tvar)  # world moved on: restart
            self._reads[tvar] = v0
            return value

    def write(self, tvar: TVar, value: Any) -> None:
        if not self.active:
            raise STMError("write on a finished transaction")
        self._writes[tvar] = value

    def retry(self) -> None:
        """Explicit programmer-requested restart."""
        raise _Retry(None)

    # -- commit (engine-internal) ------------------------------------------------

    def _commit(self) -> bool:
        """Lock write set (in id order — no lock-order deadlocks),
        validate read set, publish, bump the clock."""
        self.active = False
        if not self._writes:
            # Read-only transaction: validate reads still current.
            for tvar, seen_version in self._reads.items():
                if tvar._version != seen_version or tvar._lock.locked():
                    return False
            return True

        locked: List[TVar] = []
        try:
            for tvar in sorted(self._writes, key=lambda t: t._id):
                if not tvar._lock.acquire(timeout=0.5):
                    return False
                locked.append(tvar)
            for tvar, seen_version in self._reads.items():
                if tvar._version != seen_version:
                    return False
                if tvar._lock.locked() and tvar not in self._writes:
                    return False
            write_version = _advance_clock()
            for tvar, value in self._writes.items():
                tvar._value = value
                tvar._version = write_version
            return True
        finally:
            for tvar in locked:
                tvar._lock.release()


_tls = threading.local()


def current_transaction() -> Optional[Transaction]:
    return getattr(_tls, "tx", None)


def thread_stats() -> TxStats:
    stats = getattr(_tls, "stats", None)
    if stats is None:
        stats = TxStats()
        _tls.stats = stats
    return stats


def atomically(body: Callable[[Transaction], T],
               max_attempts: int = 1_000_000) -> T:
    """Run *body* transactionally: retried until it commits.

    The debugger hook (:mod:`repro.stm.debug`) is consulted at every
    **boundary** — after an abort, before the retry — because that is
    the only safe stopping point for transactional code (a stop inside
    the attempt would abort it; the paper's §9 references [33, 7] make
    precisely this observation for HTM).
    """
    if current_transaction() is not None:
        raise STMError("nested atomically() is not supported; "
                       "compose inside one transaction body")
    from .debug import boundary_hook  # late: optional debugger glue

    stats = thread_stats()
    attempts = 0
    while attempts < max_attempts:
        attempts += 1
        tx = Transaction(_read_clock())
        _tls.tx = tx
        try:
            result = body(tx)
            if tx._commit():
                stats.commits += 1
                stats.streak = 0
                boundary_hook("commit", stats, None)
                return result
            conflict = None
        except _Retry as retry:
            conflict = retry.tvar
        finally:
            _tls.tx = None
            tx.active = False
        stats.aborts += 1
        stats.streak += 1
        stats.last_conflict = conflict.name if conflict is not None else None
        boundary_hook("abort", stats, conflict)
    raise STMError(f"transaction failed to commit in {max_attempts} "
                   f"attempts")

"""The Dionea facade: everything wired together.

This is the object the paper's ``python dioneas.py program.py`` entry
point builds: a debug server embedded in the debuggee process, augmented
fork functions, Dionea's fork handlers, disturb mode and the deadlock
detector — one :meth:`start` away from a debuggable process whose forked
children rendezvous with the client automatically.

Typical embedding (what the examples do)::

    from repro.core import Dionea

    with Dionea(program="wordcount") as dbg:
        ...   # run the parallel program; forks are followed

    # or, client side:
    client = DebugClient()
    client.watch_portfile(dbg.portfile)

Exactly one Dionea may be active per process (it owns ``os.fork`` and
the interpreter trace hook); :func:`current_dionea` is how the
instrumented :mod:`repro.mp` primitives find it.
"""

from __future__ import annotations

import json
import os
import threading
import uuid
from typing import Dict, Optional

from .. import obs
from ..forkhooks.augment import ForkPatcher
from ..forkhooks.registry import ForkHandlerRegistry
from ..forkhooks.resilience import ResiliencePolicy
from ..forkhooks.syncobjects import SyncObjectRegistry
from ..obs import causality
from ..obs import metrics as obs_metrics
from ..obs.blackbox import BLACKBOX, REASON_EXEC, REASON_STOP
from ..util.errors import ForkHookError
from ..server.debugserver import DebugServer
from ..util.errors import ReproError
from ..util.ids import UEId
from ..util.portfile import PortFile, default_portfile_path
from ..util.ringlog import debug_event
from .deadlock import DeadlockDetector
from .disturb import DisturbMode
from .handlers import install_dionea_handlers, uninstall_dionea_handlers

_current_lock = threading.Lock()
_current: Optional["Dionea"] = None

#: env slot carrying a ``TraceContext.to_wire`` JSON dict across exec:
#: the old image stages it via :func:`exec_handoff_env`, the new image's
#: :meth:`Dionea.start` consumes it and continues the trace.
EXEC_HANDOFF_ENV = "DIONEA_EXEC_HANDOFF"


def exec_handoff_env(env: Optional[Dict[str, str]] = None
                     ) -> Dict[str, str]:
    """Environment for an ``exec`` the post-exec debugger should continue.

    Call just before ``os.exec*``: flushes a terminal ``exec`` marker
    for this image's black box (the dump's story ends here on purpose)
    and returns a copy of *env* (default ``os.environ``) with the
    current trace root staged under ``DIONEA_EXEC_HANDOFF`` so the new
    image's :meth:`Dionea.start` can root its trace under ours.
    """
    BLACKBOX.force_flush(REASON_EXEC, terminal=True)
    staged = dict(os.environ if env is None else env)
    staged[EXEC_HANDOFF_ENV] = json.dumps(
        causality.process_root().to_wire())
    return staged


def current_dionea() -> Optional["Dionea"]:
    """The active debugger in this process, if any.

    The repro.mp primitives consult this to register their sync objects
    (fork-ownership sweep) and to report waits (deadlock detection).
    """
    return _current


class Dionea:
    """Debuggee-side facade.  One per process."""

    def __init__(self,
                 program: Optional[str] = None,
                 host: str = "127.0.0.1",
                 port: int = 0,
                 run_id: Optional[str] = None,
                 portfile_path: Optional[str] = None,
                 fork_backend: str = "alias",
                 park_timeout: Optional[float] = 60.0,
                 disturb: bool = False,
                 capture_io: bool = False,
                 install_tracing: bool = True,
                 client_loss_grace: float = 3.0):
        self.run_id = run_id or uuid.uuid4().hex[:12]
        self.program = program or "dionea"
        self.portfile = PortFile(
            portfile_path or default_portfile_path(self.run_id))
        self.disturb_mode = DisturbMode(enabled=disturb)
        self.deadlock = DeadlockDetector()
        self.sync_registry = SyncObjectRegistry()
        # Do-no-harm bracket: deadlines + quarantine for third-party
        # fork handlers, degraded mode for failures in our own.
        self.fork_registry = ForkHandlerRegistry(
            policy=ResiliencePolicy.from_env())
        self.fork_registry.on_child_degrade = self._degrade
        self.server = DebugServer(
            host=host, port=port,
            portfile=self.portfile,
            program=program,
            park_timeout=park_timeout,
            disturb=self.disturb_mode,
            disturb_setter=self.disturb_mode.set_enabled,
            deadlock_reporter=self.deadlock.report,
            capture_io=capture_io,
            client_loss_grace=client_loss_grace,
        )
        self.patcher = ForkPatcher(self.fork_registry, backend=fork_backend)
        self.patcher.on_child_forked = self._record_child
        self.server.on_detach = self._on_server_detach
        # A disturb toggle must invalidate the engine's fast-path flag.
        self.disturb_mode.on_change = self.server.engine.refresh_quiet
        self.server.engine.refresh_quiet()
        self._install_tracing = install_tracing
        self._started = False

    # -- lifecycle -------------------------------------------------------------

    @property
    def started(self) -> bool:
        return self._started

    @property
    def port(self) -> int:
        return self.server.port

    def start(self) -> "Dionea":
        global _current
        with _current_lock:
            if _current is not None:
                raise ReproError("another Dionea is already active "
                                 "in this process")
            _current = self
        try:
            # Exec survival: the previous image staged its trace root in
            # the environment; continue that trace and relabel/rotate
            # the obs state before anything records against it.
            handoff_raw = os.environ.pop(EXEC_HANDOFF_ENV, None)
            if handoff_raw is not None:
                try:
                    handoff = json.loads(handoff_raw)
                except ValueError:
                    handoff = None
                obs.reset_after_exec(self.program,
                                     labels={"run_id": self.run_id},
                                     handoff=handoff)
            obs.configure_blackbox(self.program,
                                   labels={"run_id": self.run_id})
            self.disturb_mode.mark_primary(UEId.current())
            self.server.start(install_tracing=self._install_tracing,
                              announce=True)
            install_dionea_handlers(
                self.fork_registry, self.server, self.sync_registry,
                disturb=self.disturb_mode, deadlock=self.deadlock)
            self.patcher.install()
            self._started = True
        except BaseException:
            with _current_lock:
                _current = None
            raise
        debug_event("dionea", f"started (run {self.run_id}, "
                              f"port {self.port})")
        return self

    def stop(self, remove_portfile: bool = True) -> None:
        global _current
        if not self._started:
            return
        self._started = False
        # Orderly shutdown is a terminal event too: without this marker
        # the timeline would report a clean exit as an unclean death.
        BLACKBOX.force_flush(REASON_STOP, terminal=True)
        if self.patcher.installed:
            self.patcher.uninstall()
        try:
            uninstall_dionea_handlers(self.fork_registry)
        except ReproError:
            pass
        self.server.close()
        if remove_portfile:
            try:
                self.portfile.remove()
            except OSError:
                pass
        with _current_lock:
            if _current is self:
                _current = None
        debug_event("dionea", "stopped")

    def __enter__(self) -> "Dionea":
        if not self._started:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- degraded mode ---------------------------------------------------------

    def _degrade(self, reason: str) -> None:
        """Do-no-harm bail-out: the debugger removes itself entirely.

        Fired by the fork registry when a *trusted* phase failed in the
        child (half-configured debugging is worse than none) — and
        usable from anywhere the debugger concludes it can no longer be
        harmless.  The debuggee keeps running, undebugged, output and
        exit status untouched.
        """
        obs_metrics.inc("dionea.degrades")
        debug_event("dionea", f"entering degraded mode: {reason}")
        # detach() tears the server half down, then calls
        # _on_server_detach for the debugger half.
        self.server.detach(reason)

    def _on_server_detach(self, reason: str) -> None:
        """Server half is down (detach); take down the debugger half."""
        global _current
        self._started = False
        if self.patcher.installed:
            try:
                self.patcher.uninstall()
            except ForkHookError:
                # Someone re-patched os.fork over us; restoring would
                # clobber their wrapper — leave it, our bracket is a
                # pass-through once the handlers are unregistered.
                pass
        try:
            uninstall_dionea_handlers(self.fork_registry)
        except ReproError:
            pass
        with _current_lock:
            if _current is self:
                _current = None
        debug_event("dionea", f"debugger detached: {reason}")

    # -- parent-side fork bookkeeping ---------------------------------------------

    def _record_child(self, pid: int) -> None:
        self.server.record_child(pid)

    # -- conveniences used by examples/tests ----------------------------------------

    def set_breakpoint(self, file: str, line: int, **kwargs) -> int:
        bp = self.server.engine.breakpoints.add(file, line, **kwargs)
        return bp.id

    def report_deadlocks(self) -> dict:
        return self.deadlock.report()

"""Deadlock detection: the wait-for graph behind paper section 6.2.

Figure 7's payoff is that *"Dionea shows the line number where the
deadlock has occurred"*, where the stock interpreter only prints a stack
trace in which "the exact place where the deadlock occurred may not be
present".  To do that the debugger needs to know, for every blocked UE,
*what* it waits on and *where* it blocked — which the instrumented
synchronization primitives of :mod:`repro.mp` report here.

Two failure shapes are detected:

* **cycles** — classic mutual waiting: UE₁ holds R₁ and wants R₂, UE₂
  holds R₂ and wants R₁;
* **orphaned waits** — the paper's Listing 5 scenario: a forked child
  blocks on a Queue that only a *parent* thread would ever push to; the
  would-be waker did not survive the fork, so the resource's holder set
  is empty (or dead) and the wait can never be satisfied.  This also
  covers Ruby's "all threads blocked" fatal-deadlock rule via
  :meth:`DeadlockDetector.all_blocked`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..util.ids import UEId
from ..util.ringlog import debug_event


@dataclass(frozen=True)
class WaitEdge:
    """One UE blocked on one resource.

    ``location`` ("file:line (function)") may be recorded eagerly by the
    caller, or left None and resolved lazily at *report* time from the
    blocked thread's live frame — the primitives' hot paths must not pay
    for a stack walk on every blocking acquire.
    """

    ue: UEId
    resource: str
    location: Optional[str] = None


class WaitForGraph:
    """Thread-safe wait-for/held-by bookkeeping with cycle search.

    Nodes are UEs and resource names; edges are ``UE → resource`` (wants)
    and ``resource → UE`` (held by).  Everything is plain data so the
    graph can be serialized into the client's ``deadlock_report``.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._waits: Dict[UEId, WaitEdge] = {}
        self._holds: Dict[str, Set[UEId]] = {}

    # -- mutation (called from instrumented primitives) -----------------------

    def add_wait(self, ue: UEId, resource: str,
                 location: Optional[str] = None) -> None:
        with self._lock:
            self._waits[ue] = WaitEdge(ue, resource, location)

    def clear_wait(self, ue: UEId) -> None:
        with self._lock:
            self._waits.pop(ue, None)

    def add_hold(self, ue: UEId, resource: str) -> None:
        with self._lock:
            self._holds.setdefault(resource, set()).add(ue)

    def release_hold(self, ue: UEId, resource: str) -> None:
        with self._lock:
            holders = self._holds.get(resource)
            if holders is not None:
                holders.discard(ue)
                if not holders:
                    self._holds.pop(resource, None)

    def reset(self) -> None:
        with self._lock:
            self._waits.clear()
            self._holds.clear()

    # -- queries ----------------------------------------------------------------

    def waits(self) -> List[WaitEdge]:
        with self._lock:
            return list(self._waits.values())

    def holders_of(self, resource: str) -> Set[UEId]:
        with self._lock:
            return set(self._holds.get(resource, ()))

    def snapshot(self) -> Tuple[Dict[UEId, WaitEdge], Dict[str, Set[UEId]]]:
        with self._lock:
            return dict(self._waits), {r: set(h)
                                       for r, h in self._holds.items()}

    # -- cycle detection -----------------------------------------------------------

    def find_cycles(self) -> List[List[str]]:
        """All wait-for cycles, as alternating ``ue:...``/resource chains.

        The graph UE→resource→UE is tiny (one wait edge per blocked UE),
        so an iterative DFS over UE nodes suffices.
        """
        waits, holds = self.snapshot()
        # successor UEs: ue waits on r; every holder of r is a successor.
        successors: Dict[UEId, Set[UEId]] = {}
        for ue, edge in waits.items():
            successors[ue] = set(holds.get(edge.resource, ()))

        cycles: List[List[str]] = []
        seen_cycles: Set[frozenset] = set()
        for start in waits:
            path: List[UEId] = []
            on_path: Set[UEId] = set()

            def dfs(node: UEId) -> None:
                if node in on_path:
                    idx = path.index(node)
                    cycle_ues = path[idx:]
                    key = frozenset(cycle_ues)
                    if key not in seen_cycles:
                        seen_cycles.add(key)
                        chain: List[str] = []
                        for ue in cycle_ues:
                            chain.append(str(ue))
                            chain.append(waits[ue].resource)
                        cycles.append(chain)
                    return
                if node not in waits:
                    return
                path.append(node)
                on_path.add(node)
                for succ in successors.get(node, ()):
                    dfs(succ)
                path.pop()
                on_path.discard(node)

            dfs(start)
        return cycles

    def orphaned_waits(self, live_ues: Iterable[UEId]) -> List[WaitEdge]:
        """Waits on resources whose *known* holders are all dead.

        After a fork only the forking thread survives (§5.1): a lock a
        parent thread held at fork time is copied into the child in the
        locked state with no live owner, so a child UE blocking on it can
        never be woken.  Resources with no ownership record at all (e.g.
        queues, which have producers rather than holders) are *not*
        flagged — for those the Listing 5 scenario is caught by the
        Ruby-style :meth:`DeadlockDetector.all_blocked` rule instead.
        """
        live = set(live_ues)
        waits, holds = self.snapshot()
        orphans = []
        for ue, edge in waits.items():
            if ue not in live:
                continue
            holders = holds.get(edge.resource)
            if holders and not (holders & live):
                orphans.append(edge)
        return orphans


def _stdlib_prefix() -> str:
    import sysconfig
    return sysconfig.get_paths().get("stdlib", "")


def resolve_wait_location(ue: UEId) -> Optional[str]:
    """The blocked UE's innermost *user* frame, resolved live.

    Walks the thread's current stack (stable: the thread is blocked)
    past debugger/substrate/stdlib frames to the first line of user
    code — "the exact place where the deadlock occurred" (Fig. 7).
    """
    import os
    import sys

    if ue.pid != os.getpid():
        return None
    frame = sys._current_frames().get(ue.tid)
    repro_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    stdlib = _stdlib_prefix()
    while frame is not None:
        filename = frame.f_code.co_filename
        if (not filename.startswith("<")
                and not filename.startswith(repro_root)
                and not (stdlib and filename.startswith(stdlib))):
            return (f"{filename}:{frame.f_lineno} "
                    f"({frame.f_code.co_name})")
        frame = frame.f_back
    return None


class DeadlockDetector:
    """Process-level detector the debug server exposes to the client."""

    def __init__(self, graph: Optional[WaitForGraph] = None):
        self.graph = graph or WaitForGraph()

    def _located(self, edge: WaitEdge) -> str:
        if edge.location is not None:
            return edge.location
        return resolve_wait_location(edge.ue) or "<unknown>"

    def live_ues(self) -> List[UEId]:
        """Every Python thread currently alive in this process."""
        import os
        pid = os.getpid()
        return [UEId(pid, t.ident) for t in threading.enumerate()
                if t.ident is not None]

    def all_blocked(self) -> bool:
        """Ruby's fatal-deadlock rule: every live UE is waiting.

        The listener/daemon threads of the debugger itself are excluded —
        they are infrastructure, not debuggee UEs.
        """
        waiting = {edge.ue for edge in self.graph.waits()}
        debuggee = [ue for ue in self.live_ues()
                    if not self._is_infrastructure(ue)]
        return bool(debuggee) and all(ue in waiting for ue in debuggee)

    @staticmethod
    def _is_infrastructure(ue: UEId) -> bool:
        for thread in threading.enumerate():
            if thread.ident == ue.tid:
                return thread.name.startswith("dionea-")
        return False

    def report(self) -> dict:
        """Wire-ready report for the ``deadlock_report`` command."""
        cycles_out = []
        for chain in self.graph.find_cycles():
            locations = {}
            for edge in self.graph.waits():
                if str(edge.ue) in chain:
                    locations[str(edge.ue)] = self._located(edge)
            cycles_out.append({"nodes": chain, "locations": locations})

        orphans = self.graph.orphaned_waits(self.live_ues())
        orphans_out = [{"ue": str(e.ue), "resource": e.resource,
                        "location": self._located(e)} for e in orphans]
        if cycles_out or orphans_out:
            debug_event("deadlock",
                        f"report: {len(cycles_out)} cycles, "
                        f"{len(orphans_out)} orphaned waits")
        return {
            "available": True,
            "cycles": cycles_out,
            "orphaned_waits": orphans_out,
            "all_blocked": self.all_blocked(),
            "waiting": [{"ue": str(e.ue), "resource": e.resource,
                         "location": self._located(e)}
                        for e in self.graph.waits()],
        }

    def reset_after_fork(self) -> None:
        """Child fork handler: inherited waits/holds describe parent
        threads that no longer exist."""
        self.graph.reset()

"""Disturb mode (paper section 6.4).

*"setting disturb mode in Dionea ... will cause to stop the execution of
every newly created process or thread; and then interleaving the
execution of the threads using Dionea's low intrusiveness"* — this is how
the parallel-gem pipe bug became deterministically reproducible.

The trace engine consults :attr:`DisturbMode.enabled` as a raw flag on
its hot path and only calls :meth:`check` while the mode is on; the mode
itself tracks which UEs it has already seen, so "newly created" means
*born after the most recent enable*: enabling snapshots every UE alive
at that moment as exempt.
"""

from __future__ import annotations

import os
import sys
import threading
from typing import List, Optional, Set

from ..util.ids import UEId
from ..util.ringlog import debug_event


class DisturbMode:
    """Stop-every-new-UE switch, togglable at runtime by the client."""

    def __init__(self, enabled: bool = False,
                 stop_new_threads: bool = True,
                 stop_new_processes: bool = True):
        self._lock = threading.Lock()
        #: read lock-free by the trace engine's fast path
        self.enabled = False
        self.stop_new_threads = stop_new_threads
        self.stop_new_processes = stop_new_processes
        self._disturbed: List[UEId] = []
        self._seen: Set[UEId] = set()
        #: The program's original main thread; disturbing it would stop
        #: the program before it creates anything, so it is exempt.
        self._primary: Optional[UEId] = None
        #: invoked after every toggle (the trace engine hooks this to
        #: recompute its fast-path quiet flag).
        self.on_change = None
        if enabled:
            self.set_enabled(True)

    def mark_primary(self, ue: UEId) -> None:
        """Exempt *ue* (the original main thread) from disturbance."""
        with self._lock:
            self._primary = ue
            self._seen.add(ue)

    def set_enabled(self, enabled: bool) -> None:
        with self._lock:
            if enabled and not self.enabled:
                # "newly created" is relative to this moment: every UE
                # alive right now is exempt.
                pid = os.getpid()
                for tid in sys._current_frames():
                    self._seen.add(UEId(pid, tid))
            self.enabled = enabled
        if self.on_change is not None:
            self.on_change()
        debug_event("disturb", f"disturb mode {'on' if enabled else 'off'}")

    def disturbed_ues(self) -> List[UEId]:
        with self._lock:
            return list(self._disturbed)

    def check(self, ue: UEId, frame) -> Optional[str]:
        """Engine hook (only called while enabled): park this UE?

        Returns the stop reason for a first-ever-seen UE, else None.  A
        UE in a different process than the primary is a freshly forked
        child (a new *process*); same pid means a new *thread*.
        """
        with self._lock:
            if ue in self._seen:
                return None
            self._seen.add(ue)
            if self._primary is None:
                self._primary = ue
                return None
            if not self.enabled or ue == self._primary:
                return None
            is_new_process = ue.pid != self._primary.pid
            if is_new_process and not self.stop_new_processes:
                return None
            if not is_new_process and not self.stop_new_threads:
                return None
            self._disturbed.append(ue)
        debug_event("disturb", f"disturbing {ue}")
        return "disturb"

    def reset_after_fork(self) -> None:
        """Child fork handler.

        The primary and seen set are deliberately KEPT: the paper's
        disturb mode stops *"every newly created process or thread"*,
        and the freshly forked child's surviving thread is exactly such
        a new UE — its pid differs from the (inherited) primary's, so
        its first traced event parks it until the client, which
        auto-attached through the port file, chooses to release it.
        Only the disturbed-UE list (parent bookkeeping) is cleared.
        """
        with self._lock:
            self._disturbed = []

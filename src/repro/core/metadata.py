"""Process-tree metadata: the client-facing inventory of Fig. 1.

The client's Processes-and-threads view (Fig. 2) needs the shape of the
whole debugged *program* — which processes exist, who forked whom, which
generation each belongs to.  Individual :class:`~repro.server.
sessionstate.SessionState` objects carry per-process truth; this module
aggregates the client's copies into one tree.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class ProcessNode:
    pid: int
    parent_pid: int
    program: Optional[str] = None
    fork_generation: int = 0
    alive: bool = True
    children: List["ProcessNode"] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "pid": self.pid,
            "parent_pid": self.parent_pid,
            "program": self.program,
            "fork_generation": self.fork_generation,
            "alive": self.alive,
            "children": [c.to_dict() for c in self.children],
        }


class ProcessTree:
    """Client-side aggregate over all attached sessions."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._nodes: Dict[int, ProcessNode] = {}

    def observe(self, pid: int, parent_pid: int,
                program: Optional[str] = None,
                fork_generation: int = 0) -> ProcessNode:
        """Record (or refresh) one process."""
        with self._lock:
            node = self._nodes.get(pid)
            if node is None:
                node = ProcessNode(pid=pid, parent_pid=parent_pid,
                                   program=program,
                                   fork_generation=fork_generation)
                self._nodes[pid] = node
            else:
                node.parent_pid = parent_pid
                node.alive = True
                if program is not None:
                    node.program = program
                node.fork_generation = fork_generation
            return node

    def mark_exited(self, pid: int) -> None:
        with self._lock:
            node = self._nodes.get(pid)
            if node is not None:
                node.alive = False

    def pids(self) -> List[int]:
        """Every pid ever observed, dead or alive (the timeline's
        expected-process set)."""
        with self._lock:
            return sorted(self._nodes)

    def roots(self) -> List[ProcessNode]:
        """Assemble the forest: children nested under known parents."""
        with self._lock:
            nodes = {pid: ProcessNode(pid=n.pid, parent_pid=n.parent_pid,
                                      program=n.program,
                                      fork_generation=n.fork_generation,
                                      alive=n.alive)
                     for pid, n in self._nodes.items()}
        roots = []
        for node in nodes.values():
            parent = nodes.get(node.parent_pid)
            if parent is not None and parent is not node:
                parent.children.append(node)
            else:
                roots.append(node)
        for node in nodes.values():
            node.children.sort(key=lambda n: n.pid)
        return sorted(roots, key=lambda n: n.pid)

    def render(self) -> str:
        """Indentation-based text rendering of the process tree."""
        lines: List[str] = []

        def walk(node: ProcessNode, depth: int) -> None:
            status = "" if node.alive else " (exited)"
            program = f" [{node.program}]" if node.program else ""
            lines.append(f"{'  ' * depth}process {node.pid}"
                         f"{program}{status}")
            for child in node.children:
                walk(child, depth + 1)

        for root in self.roots():
            walk(root, 0)
        return "\n".join(lines)

    def __len__(self) -> int:
        with self._lock:
            return len(self._nodes)

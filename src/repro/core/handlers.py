"""Dionea's fork handlers — phases A, B and C of paper section 5.4.

::

    A  Prepare fork.        Acquire control over synchronization objects.
                            Disable the tracing until the listener thread
                            is restarted, to avoid a deadlock in the child
                            process (therefore it is not possible to step
                            inside of the augmented fork).

    B  Handle parent.       Immediately after the fork, release control of
                            synchronization objects, and re-enable tracing.

    C  Handle child.        Initialize the synchronization objects, close
                            the inherited sockets, initialize the data
                            structures, create a listener thread, register
                            the thread that called fork as the main thread,
                            inform the client about the creation of a new
                            debuggee, and finally re-enable the tracing
                            that was disabled in A.

The handlers are assembled here as one :class:`~repro.forkhooks.registry.
HandlerSet` so their relative order with any other registered handlers
follows POSIX ``pthread_atfork`` discipline (section 5.2: other fork
handlers run along with ours).
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from .. import obs
from ..forkhooks.registry import ForkHandlerRegistry, HandlerSet
from ..util.errors import ForkHookError
from ..forkhooks.syncobjects import SyncObjectRegistry
from ..server.debugserver import DebugServer
from ..tracing.engine import TraceEngine
from ..util.ringlog import GLOBAL_LOG, debug_event

if TYPE_CHECKING:  # pragma: no cover
    from .deadlock import DeadlockDetector
    from .disturb import DisturbMode

DIONEA_HANDLER_LABEL = "dionea"
OBS_HANDLER_LABEL = "dionea-obs"


def install_dionea_handlers(
        registry: ForkHandlerRegistry,
        server: DebugServer,
        sync_registry: SyncObjectRegistry,
        disturb: Optional["DisturbMode"] = None,
        deadlock: Optional["DeadlockDetector"] = None) -> HandlerSet:
    """Register phases A/B/C on *registry*; returns the handler set."""

    engine: TraceEngine = server.engine

    def handle_child_obs() -> None:
        # Telemetry fork-awareness: the child inherits the parent's
        # metric shards and span ring, which describe threads that do
        # not exist here and a pid that is not ours — the telemetry
        # flavour of Fig. 4's stale metadata.  Drop them and re-label
        # with the child's identity.  Registered BEFORE the main dionea
        # set so it runs FIRST among child handlers: the dionea child
        # phase's own per-hook timings then land in the child's fresh
        # registry instead of being wiped.
        obs.reset_after_fork(labels={"program": server.session.program})

    try:  # a stale registration from an aborted install must not wedge us
        registry.unregister(OBS_HANDLER_LABEL)
    except ForkHookError:
        pass
    # trusted=True: Dionea's own sets run inline on the forking thread
    # (they own thread-affine state — RLocks, trace hooks) and are never
    # sandboxed or quarantined; their failures degrade the child instead.
    registry.register(OBS_HANDLER_LABEL, child=handle_child_obs,
                      trusted=True)

    def prepare_fork() -> None:
        # A — take ownership of the debuggee's sync objects so the one
        # thread that survives in the child owns (and can release) them
        # all, "eliminating the possibility of deadlocks" (§5.3 item 1).
        sync_registry.take_ownership()
        # A — disable tracing across the fork: a trace stop between fork
        # and the child's new listener thread would park a UE that no one
        # could ever release.  disable() routes through the engine's
        # TraceBackend seam (settrace: flag check; sys.monitoring: event
        # mask zeroed) so both backends go dark for the fork window.
        engine.disable()
        debug_event("handlers", "phase A complete (locks held, trace off)")

    def handle_parent_at_fork() -> None:
        # B — mirror image of A, in the parent.
        engine.enable()
        sync_registry.release_ownership()
        debug_event("handlers", "phase B complete (parent resumed)")

    def handle_child_at_fork() -> None:
        # C — in paper order:
        # "Initialize the synchronization objects,"
        sync_registry.reinit_after_fork()
        # "close the inherited sockets, initialize the data structures,
        #  create a listener thread, ... inform the client":
        GLOBAL_LOG.reset_after_fork()
        if deadlock is not None:
            deadlock.reset_after_fork()
        if disturb is not None:
            disturb.reset_after_fork()
        # "register the thread that called fork as the main thread":
        # reset_after_fork() drops inherited per-thread state AND the
        # LineTable verdicts, then re-installs event delivery through
        # the backend seam (TraceBackend.reinstall_after_fork) — the
        # forker becomes the main thread the re-arm signal targets.
        engine.reset_after_fork()
        server.reinit_after_fork()
        # "finally re-enable the tracing that was disabled in A."
        engine.enable()
        debug_event("handlers", "phase C complete (child re-established)")

    return registry.register(
        DIONEA_HANDLER_LABEL,
        prepare=prepare_fork,
        parent=handle_parent_at_fork,
        child=handle_child_at_fork,
        trusted=True,
    )


def uninstall_dionea_handlers(registry: ForkHandlerRegistry) -> None:
    registry.unregister(DIONEA_HANDLER_LABEL)
    try:
        registry.unregister(OBS_HANDLER_LABEL)
    except ForkHookError:
        pass

"""Dionea core: facade, fork handlers, disturb mode, deadlock detection."""

from .deadlock import DeadlockDetector, WaitEdge, WaitForGraph
from .dionea import Dionea, current_dionea
from .disturb import DisturbMode
from .handlers import (
    DIONEA_HANDLER_LABEL,
    install_dionea_handlers,
    uninstall_dionea_handlers,
)
from .metadata import ProcessNode, ProcessTree

__all__ = [
    "DeadlockDetector", "WaitEdge", "WaitForGraph",
    "Dionea", "current_dionea",
    "DisturbMode",
    "DIONEA_HANDLER_LABEL", "install_dionea_handlers",
    "uninstall_dionea_handlers",
    "ProcessNode", "ProcessTree",
]

"""Command-line entry points (paper section 6.1).

*"we start Dionea server issuing ... ``python dioneas.py
path/to/debuggee/python/program.py``; once Dionea server has been started
it waits until the client connects to it."*

Subcommands:

``dionea run PROGRAM [args...]``
    Run a Python program under a Dionea debug server in this process.
    Prints the port and rendezvous file, optionally waits for a client
    before executing the first line.

``dionea shell --portfile PATH | --connect HOST:PORT``
    Interactive client: attaches (and auto-attaches forked children via
    the port file), then reads shell commands from stdin.

``dionea corpus PROFILE --out DIR``
    Materialise one of the §7 benchmark corpora on disk.
"""

from __future__ import annotations

import argparse
import runpy
import sys
import time
from typing import List, Optional

from ._version import __version__
from .util.errors import CommandError, ReproError


def _cmd_run(args: argparse.Namespace) -> int:
    from .core.dionea import Dionea

    dionea = Dionea(program=args.program,
                    portfile_path=args.portfile,
                    disturb=args.disturb,
                    capture_io=args.capture_io,
                    park_timeout=args.park_timeout)
    dionea.start()
    print(f"dionea: serving pid {dionea.server.session.pid} "
          f"on port {dionea.port}", file=sys.stderr)
    print(f"dionea: port file {dionea.portfile.path}", file=sys.stderr)
    if args.wait_client:
        print("dionea: waiting for a client ...", file=sys.stderr)
        while dionea.server._listener.command_connection() is None:  # noqa: SLF001
            time.sleep(0.05)
    saved_argv = sys.argv
    sys.argv = [args.program] + list(args.args)
    try:
        runpy.run_path(args.program, run_name="__main__")
        return 0
    except SystemExit as exc:
        code = exc.code
        return code if isinstance(code, int) else (0 if code is None else 1)
    finally:
        sys.argv = saved_argv
        dionea.stop()


def _cmd_shell(args: argparse.Namespace) -> int:
    from .client import DebugClient, Shell
    from .util.portfile import PortFile

    client = DebugClient(
        on_stop=lambda view: print(f"* stopped: {view.ue} "
                                   f"({view.capture.reason})",
                                   file=sys.stderr))
    try:
        if args.portfile:
            client.watch_portfile(PortFile(args.portfile))
            # scripted (-c) runs fire immediately; give the watcher a
            # moment to dial the already-announced servers first.
            deadline = time.monotonic() + args.attach_timeout
            while (not client.sessions()
                   and time.monotonic() < deadline):
                time.sleep(0.05)
        if args.connect:
            host, _, port = args.connect.rpartition(":")
            client.attach(host or "127.0.0.1", int(port))
        shell = Shell(client)
        print("dionea shell — 'threads', 'break FILE:LINE', 'continue', "
              "... (EOF to quit)", file=sys.stderr)
        for line in _read_lines(args):
            try:
                output = shell.execute(line)
            except (CommandError, ReproError) as exc:
                output = f"error: {exc}"
            if output:
                print(output)
        return 0
    finally:
        client.close()


def _read_lines(args: argparse.Namespace):
    if args.command:
        yield from args.command
        return
    while True:
        try:
            yield input("(dionea) ")
        except EOFError:
            return


def _cmd_telemetry(args: argparse.Namespace) -> int:
    """Pull cluster-wide telemetry; print it or export a Chrome trace."""
    import json

    from .client import DebugClient, Shell
    from .obs.export import write_chrome_trace
    from .util.portfile import PortFile

    client = DebugClient()
    try:
        if args.portfile:
            client.watch_portfile(PortFile(args.portfile))
            deadline = time.monotonic() + args.attach_timeout
            while (not client.sessions()
                   and time.monotonic() < deadline):
                time.sleep(0.05)
        if args.connect:
            host, _, port = args.connect.rpartition(":")
            client.attach(host or "127.0.0.1", int(port))
        if not client.sessions():
            print("dionea: no debug servers found to poll",
                  file=sys.stderr)
            return 2
        sweep = client.cluster_telemetry(reset=args.reset)
        if args.export:
            document = write_chrome_trace(
                args.export,
                list(sweep["processes"].values()),
                client_snapshot=sweep.get("client"))
            print(f"dionea: wrote {len(document['traceEvents'])} trace "
                  f"events to {args.export} "
                  f"(load in about:tracing or ui.perfetto.dev)")
            return 0
        if args.json:
            print(json.dumps(sweep, indent=2, default=str))
            return 0
        shell = Shell(client)
        for pid, snap in sorted(sweep["processes"].items()):
            print(f"process {pid} ({snap.get('program') or '?'}, "
                  f"epoch {snap.get('epoch')})")
            print("\n".join(shell._render_metrics(snap, indent="  "))  # noqa: SLF001
                  or "  (no metrics)")
        for pid, err in sorted(sweep.get("errors", {}).items()):
            print(f"process {pid}: telemetry failed: {err}")
        return 0
    finally:
        client.close()


def _cmd_timeline(args: argparse.Namespace) -> int:
    """Assemble the whole-fork-tree timeline: live sessions + dumps.

    Unlike ``telemetry`` this works with ZERO live servers — the
    post-mortem case (every process SIGKILLed) is the design point: the
    black-box dumps under ``--blackbox-dir`` are enough.
    """
    import json
    import os

    from .client import DebugClient
    from .obs import timeline as obs_timeline
    from .obs.blackbox import BLACKBOX_DIR_ENV
    from .util.portfile import PortFile

    blackbox_dir = args.blackbox_dir or os.environ.get(BLACKBOX_DIR_ENV)
    want_live = bool(args.portfile or args.connect)

    if want_live:
        client = DebugClient()
        try:
            if args.portfile:
                client.watch_portfile(PortFile(args.portfile))
                deadline = time.monotonic() + args.attach_timeout
                while (not client.sessions()
                       and time.monotonic() < deadline):
                    time.sleep(0.05)
            if args.connect:
                host, _, port = args.connect.rpartition(":")
                client.attach(host or "127.0.0.1", int(port))
            document = client.cluster_timeline(
                blackbox_dir=blackbox_dir,
                ringlog_limit=args.ringlog_limit)
        finally:
            client.close()
    else:
        if not blackbox_dir:
            print("dionea timeline: no --blackbox-dir (or "
                  f"{BLACKBOX_DIR_ENV}) and no live server to poll",
                  file=sys.stderr)
            return 2
        document = obs_timeline.assemble_from_dir(blackbox_dir)

    other = document.get("otherData", {})
    pids = other.get("processes", [])
    holes = other.get("holes", [])
    terminals = other.get("terminals", {})
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(document, fh, indent=1)
        print(f"dionea: wrote {len(document['traceEvents'])} trace events "
              f"for {len(pids)} processes to {args.out} "
              f"(load in about:tracing or ui.perfetto.dev)")
    else:
        print(json.dumps(document, indent=1, default=str))
    for pid in sorted(int(p) for p in terminals):
        print(f"process {pid}: terminal {terminals[str(pid)]!r}",
              file=sys.stderr)
    for pid in holes:
        print(f"process {pid}: MISSING (no telemetry, no dump)",
              file=sys.stderr)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Run the §7 overhead pair for one corpus profile, print the row."""
    import importlib.util
    import os

    # benchmarks/ ships alongside the source tree, not inside the
    # package; locate it relative to the repo root when available.
    here = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    harness_path = os.path.join(here, "benchmarks", "harness.py")
    if not os.path.isfile(harness_path):
        print("benchmarks/harness.py not found; run from a source "
              "checkout or use pytest benchmarks/", file=sys.stderr)
        return 2
    spec = importlib.util.spec_from_file_location("bench_harness",
                                                  harness_path)
    harness = importlib.util.module_from_spec(spec)
    sys.modules["bench_harness"] = harness  # dataclasses needs this
    spec.loader.exec_module(harness)

    result = harness.overhead_pair(args.profile,
                                   n_workers=args.workers,
                                   repeats=args.repeats)
    print(result.render())
    return 0


def _cmd_corpus(args: argparse.Namespace) -> int:
    from .corpus import corpus_stats, get_profile, write_corpus

    profile = get_profile(args.profile)
    paths = write_corpus(profile, args.out)
    stats = corpus_stats(profile)
    print(f"wrote {len(paths)} files "
          f"({stats['bytes']} bytes, {stats['lines']} lines) "
          f"for profile {profile.name!r} "
          f"(stands in for {profile.stands_in_for})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dionea",
        description="Dionea-style multi-process debugger (PMAM '15 repro)")
    parser.add_argument("--version", action="version",
                        version=f"dionea/repro {__version__}")
    sub = parser.add_subparsers(dest="subcommand", required=True)

    run = sub.add_parser("run", help="run a program under the debug server")
    run.add_argument("program")
    run.add_argument("args", nargs=argparse.REMAINDER)
    run.add_argument("--portfile", default=None,
                     help="rendezvous file path (default: per-run temp file)")
    run.add_argument("--disturb", action="store_true",
                     help="stop every newly created process/thread (§6.4)")
    run.add_argument("--capture-io", action="store_true",
                     help="tee the debuggee's stdout/stderr to the client "
                          "(the Fig. 2 Output window)")
    run.add_argument("--wait-client", action="store_true",
                     help="block until a client connects before running")
    run.add_argument("--park-timeout", type=float, default=60.0,
                     help="seconds a stopped UE waits before auto-resuming")
    run.set_defaults(func=_cmd_run)

    shell = sub.add_parser("shell", help="interactive debug client")
    shell.add_argument("--portfile", default=None,
                       help="watch this rendezvous file and auto-attach")
    shell.add_argument("--connect", default=None, metavar="HOST:PORT",
                       help="attach to one debug server directly")
    shell.add_argument("-c", "--command", action="append", default=None,
                       help="run this shell command and exit "
                            "(repeatable, disables the prompt)")
    shell.add_argument("--attach-timeout", type=float, default=5.0,
                       help="seconds to wait for the first auto-attach "
                            "when watching a port file")
    shell.set_defaults(func=_cmd_shell)

    telemetry = sub.add_parser(
        "telemetry",
        help="pull cluster-wide telemetry; optionally export a Chrome trace")
    telemetry.add_argument("--portfile", default=None,
                           help="watch this rendezvous file and attach to "
                                "every announced server")
    telemetry.add_argument("--connect", default=None, metavar="HOST:PORT",
                           help="attach to one debug server directly")
    telemetry.add_argument("--export", default=None, metavar="PATH",
                           help="write a Chrome trace-event JSON file "
                                "(about:tracing / Perfetto) instead of text")
    telemetry.add_argument("--json", action="store_true",
                           help="print the raw snapshot sweep as JSON")
    telemetry.add_argument("--reset", action="store_true",
                           help="drain counters/histograms/spans as they "
                                "are read")
    telemetry.add_argument("--attach-timeout", type=float, default=5.0,
                           help="seconds to wait for the first auto-attach "
                                "when watching a port file")
    telemetry.set_defaults(func=_cmd_telemetry)

    timeline = sub.add_parser(
        "timeline",
        help="merge live telemetry + black-box dumps into one Chrome "
             "trace for the whole (possibly dead) fork tree")
    timeline.add_argument("--blackbox-dir", default=None,
                          help="directory of bb-*.jsonl dumps "
                               "(default: $DIONEA_BLACKBOX_DIR)")
    timeline.add_argument("--portfile", default=None,
                          help="also attach to live servers via this "
                               "rendezvous file")
    timeline.add_argument("--connect", default=None, metavar="HOST:PORT",
                          help="also attach to one live debug server")
    timeline.add_argument("--out", default=None, metavar="PATH",
                          help="write the trace JSON here instead of stdout")
    timeline.add_argument("--ringlog-limit", type=int, default=500,
                          help="ring-log tail length per live process")
    timeline.add_argument("--attach-timeout", type=float, default=5.0,
                          help="seconds to wait for the first auto-attach "
                               "when watching a port file")
    timeline.set_defaults(func=_cmd_timeline)

    corpus = sub.add_parser("corpus", help="materialise a benchmark corpus")
    corpus.add_argument("profile")
    corpus.add_argument("--out", required=True)
    corpus.set_defaults(func=_cmd_corpus)

    bench = sub.add_parser(
        "bench", help="run one §7 overhead pair (normal vs debugging)")
    bench.add_argument("profile", nargs="?", default="dionea")
    bench.add_argument("--workers", type=int, default=4)
    bench.add_argument("--repeats", type=int, default=3)
    bench.set_defaults(func=_cmd_bench)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

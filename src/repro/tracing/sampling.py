"""Low-intrusion sampling profiler.

Section 7 measures what *tracing* costs; this module is the
complementary tool built on the other interpreter facility the debugger
already uses, ``sys._current_frames()``: a sampler thread periodically
snapshots every UE's stack and aggregates where time is spent — without
installing any trace function, so the debuggee runs at full speed
(the Heisenberg concern of §3, minimised).

The output is per-UE and per-frame inclusive/self sample counts, in the
same UE vocabulary as the rest of the debugger, so a client can show
"where is this worker spending its time" next to "where is it stopped".
"""

from __future__ import annotations

import os
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..util.errors import TraceError
from ..util.ids import UEId

#: (file, line-of-function, function-name) — one profile node.
FrameKey = Tuple[str, int, str]


@dataclass
class UEProfile:
    """Aggregated samples for one UE."""

    samples: int = 0
    #: frame → times seen anywhere on the stack (inclusive)
    inclusive: Dict[FrameKey, int] = field(default_factory=dict)
    #: frame → times seen at the top of the stack (self time)
    self_counts: Dict[FrameKey, int] = field(default_factory=dict)

    def hottest(self, n: int = 10,
                by_self: bool = True) -> List[Tuple[FrameKey, int]]:
        counts = self.self_counts if by_self else self.inclusive
        return sorted(counts.items(), key=lambda kv: -kv[1])[:n]


class SamplingProfiler:
    """Samples all threads of this process at a fixed interval."""

    def __init__(self, interval: float = 0.005,
                 skip_debugger_threads: bool = True,
                 max_depth: int = 64):
        if interval <= 0:
            raise TraceError("sampling interval must be positive")
        self.interval = interval
        self.skip_debugger_threads = skip_debugger_threads
        self.max_depth = max_depth
        self._lock = threading.Lock()
        self._profiles: Dict[UEId, UEProfile] = {}
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        #: sweeps that recorded at least one UE.  Passes where every
        #: thread was skipped (all debugger infra) do NOT count here —
        #: they would inflate any rate/share arithmetic — and are
        #: tallied separately in :attr:`skipped_passes`.
        self.total_samples = 0
        self.skipped_passes = 0
        #: sampling-wall bookkeeping for the achieved-rate report
        self._started_mono: Optional[float] = None
        self._elapsed = 0.0

    # -- lifecycle -----------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        if self.running:
            raise TraceError("profiler already running")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="dionea-sampler", daemon=True)
        self._thread.start()

    def stop(self, timeout: float = 2.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    def __enter__(self) -> "SamplingProfiler":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- sampling ---------------------------------------------------------------

    def _debugger_tids(self) -> set:
        return {t.ident for t in threading.enumerate()
                if t.name.startswith("dionea-")}

    def _run(self) -> None:
        from ..util.ids import untrace_current_thread
        untrace_current_thread()
        my_tid = threading.get_ident()
        pid = os.getpid()
        # Schedule against a monotonic deadline, not "interval after each
        # pass": sleeping a full interval *after* a non-trivial sampling
        # pass makes the real period interval + pass-cost, so the
        # achieved rate silently drifts below the requested one.  With a
        # deadline, pass cost eats into the wait instead of extending it;
        # if a pass overruns whole periods, the missed slots are skipped
        # (never bunched) and the achieved-rate report shows the truth.
        start = time.monotonic()
        deadline = start + self.interval
        with self._lock:
            self._started_mono = start
        while not self._stop.is_set():
            skip = self._debugger_tids() if self.skip_debugger_threads \
                else set()
            skip.add(my_tid)
            frames = sys._current_frames()
            with self._lock:
                recorded = 0
                for tid, frame in frames.items():
                    if tid in skip:
                        continue
                    self._record(UEId(pid, tid), frame)
                    recorded += 1
                if recorded:
                    self.total_samples += 1
                else:
                    self.skipped_passes += 1
                self._elapsed = time.monotonic() - start
            now = time.monotonic()
            if deadline <= now:  # overran: jump past the missed slots
                missed = int((now - deadline) / self.interval) + 1
                deadline += missed * self.interval
            self._stop.wait(deadline - now)
            deadline += self.interval
        with self._lock:
            self._elapsed = time.monotonic() - start

    def _record(self, ue: UEId, frame) -> None:
        profile = self._profiles.get(ue)
        if profile is None:
            profile = UEProfile()
            self._profiles[ue] = profile
        profile.samples += 1
        seen = set()
        depth = 0
        top = True
        while frame is not None and depth < self.max_depth:
            code = frame.f_code
            key = (code.co_filename, code.co_firstlineno, code.co_name)
            if top:
                profile.self_counts[key] = \
                    profile.self_counts.get(key, 0) + 1
                top = False
            if key not in seen:  # recursion counts once per sample
                seen.add(key)
                profile.inclusive[key] = \
                    profile.inclusive.get(key, 0) + 1
            frame = frame.f_back
            depth += 1

    # -- results -------------------------------------------------------------------

    def profiles(self) -> Dict[UEId, UEProfile]:
        with self._lock:
            return dict(self._profiles)

    def profile_for(self, ue: UEId) -> UEProfile:
        with self._lock:
            return self._profiles.get(ue, UEProfile())

    @property
    def achieved_rate_hz(self) -> float:
        """Real sweeps/second over the sampling wall (vs. the requested
        ``1 / interval``); the drift the deadline scheduler bounds."""
        with self._lock:
            sweeps = self.total_samples + self.skipped_passes
            elapsed = self._elapsed
        if elapsed <= 0:
            return 0.0
        return sweeps / elapsed

    def reset(self) -> None:
        with self._lock:
            self._profiles.clear()
            self.total_samples = 0
            self.skipped_passes = 0
            self._elapsed = 0.0

    def render(self, top: int = 8) -> str:
        """Flat per-UE report, hottest self-time frames first."""
        lines: List[str] = []
        with self._lock:
            profiles = dict(self._profiles)
            total = self.total_samples
        lines.append(f"sampling profile: {total} sweeps, "
                     f"interval {self.interval * 1000:.1f} ms "
                     f"(requested {1.0 / self.interval:.1f} Hz, "
                     f"achieved {self.achieved_rate_hz:.1f} Hz)")
        for ue in sorted(profiles):
            profile = profiles[ue]
            lines.append(f"{ue}: {profile.samples} samples")
            for (file, _lineno, func), count in profile.hottest(top):
                share = 100.0 * count / max(1, profile.samples)
                lines.append(f"    {share:5.1f}%  {func} "
                             f"({os.path.basename(file)})")
        return "\n".join(lines)

    def to_wire(self, top: int = 20) -> dict:
        """JSON-ready summary for the `profile` debug command."""
        out = {}
        for ue, profile in self.profiles().items():
            out[str(ue)] = {
                "samples": profile.samples,
                "hottest": [
                    {"file": file, "function": func, "line": line,
                     "self": count,
                     "inclusive": profile.inclusive.get(
                         (file, line, func), 0)}
                    for (file, line, func), count in profile.hottest(top)
                ],
            }
        return {"total_sweeps": self.total_samples,
                "skipped_passes": self.skipped_passes,
                "interval_ms": self.interval * 1000,
                "requested_hz": 1.0 / self.interval,
                "achieved_hz": round(self.achieved_rate_hz, 2),
                "profiles": out}

"""Breakpoint model and store.

The client's command shell sets breakpoints (paper section 4: *"set break
point, continue"*); every debug server keeps its own store, which forked
children inherit as data and then re-own via the child fork handler
(paper Fig. 4 — the metadata block survives fork by design: a breakpoint
set on the parent keeps firing in the child, which is exactly what lets
Dionea stop freshly forked workers, cf. section 6.3).

The store is optimised for the trace callback's hot path: a per-file line
set answers "is anything at this (file, line)?" in two dict lookups before
any Breakpoint object is touched.
"""

from __future__ import annotations

import itertools
import os
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Set, Tuple

from ..util.errors import BreakpointError


def canonical_file(path: str) -> str:
    """Normalise a path the way the trace callback will see it."""
    return os.path.normcase(os.path.abspath(path))


@dataclass
class Breakpoint:
    """One breakpoint.

    ``condition`` is a Python expression evaluated in the debuggee frame;
    evaluation errors count as *hit* (matching pdb: a broken condition
    should reveal itself, not silently disable the breakpoint).

    ``temporary`` breakpoints delete themselves after the first hit
    (shell command ``tbreak``).  ``ignore_count`` skips that many hits
    before stopping.
    """

    id: int
    file: str
    line: int
    condition: Optional[str] = None
    temporary: bool = False
    enabled: bool = True
    ignore_count: int = 0
    hit_count: int = 0
    function: Optional[str] = None

    def location(self) -> Tuple[str, int]:
        return (self.file, self.line)

    def should_stop(self, frame_globals: Mapping[str, Any],
                    frame_locals: Mapping[str, Any]) -> bool:
        """Decide whether this (matched) breakpoint stops the UE.

        Mutates hit/ignore accounting, mirroring ``bdb.effective``.
        """
        if not self.enabled:
            return False
        if self.condition is not None:
            try:
                value = eval(self.condition, dict(frame_globals),  # noqa: S307
                             dict(frame_locals))
            except Exception:  # noqa: BLE001 - broken condition => stop
                value = True
            if not value:
                return False
        self.hit_count += 1
        if self.ignore_count > 0:
            self.ignore_count -= 1
            return False
        return True


class BreakpointStore:
    """Thread-safe container with a fast (file, line) membership test."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._ids = itertools.count(1)
        self._by_id: Dict[int, Breakpoint] = {}
        self._by_location: Dict[str, Dict[int, List[Breakpoint]]] = {}
        self._function_breaks: Dict[str, List[Breakpoint]] = {}
        #: invoked (with no arguments) after any mutation; the trace
        #: engine hooks this to recompute its fast-path quiet flag.
        self.on_change: Optional[callable] = None

    def _notify(self) -> None:
        if self.on_change is not None:
            self.on_change()

    # -- mutation ---------------------------------------------------------

    def add(self, file: str, line: int, condition: Optional[str] = None,
            temporary: bool = False, ignore_count: int = 0) -> Breakpoint:
        if line <= 0:
            raise BreakpointError(f"line must be positive, got {line}")
        path = canonical_file(file)
        bp = Breakpoint(id=next(self._ids), file=path, line=line,
                        condition=condition, temporary=temporary,
                        ignore_count=ignore_count)
        with self._lock:
            self._by_id[bp.id] = bp
            self._by_location.setdefault(path, {}).setdefault(
                line, []).append(bp)
        self._notify()
        return bp

    def add_function(self, function: str,
                     condition: Optional[str] = None,
                     temporary: bool = False) -> Breakpoint:
        """Break on entry to any function with this (qualified) name."""
        if not function:
            raise BreakpointError("function name must be non-empty")
        bp = Breakpoint(id=next(self._ids), file="", line=0,
                        condition=condition, temporary=temporary,
                        function=function)
        with self._lock:
            self._by_id[bp.id] = bp
            self._function_breaks.setdefault(function, []).append(bp)
        self._notify()
        return bp

    def remove(self, bp_id: int) -> Breakpoint:
        with self._lock:
            bp = self._by_id.pop(bp_id, None)
            if bp is None:
                raise BreakpointError(f"no breakpoint with id {bp_id}")
            if bp.function is not None:
                bucket = self._function_breaks.get(bp.function, [])
                if bp in bucket:
                    bucket.remove(bp)
                if not bucket:
                    self._function_breaks.pop(bp.function, None)
            else:
                lines = self._by_location.get(bp.file, {})
                bucket = lines.get(bp.line, [])
                if bp in bucket:
                    bucket.remove(bp)
                if not bucket:
                    lines.pop(bp.line, None)
                if not lines:
                    self._by_location.pop(bp.file, None)
        self._notify()
        return bp

    def set_enabled(self, bp_id: int, enabled: bool) -> None:
        with self._lock:
            bp = self._by_id.get(bp_id)
            if bp is None:
                raise BreakpointError(f"no breakpoint with id {bp_id}")
            bp.enabled = enabled

    def clear(self) -> None:
        with self._lock:
            self._by_id.clear()
            self._by_location.clear()
            self._function_breaks.clear()
        self._notify()

    # -- queries ------------------------------------------------------------

    def get(self, bp_id: int) -> Breakpoint:
        with self._lock:
            bp = self._by_id.get(bp_id)
            if bp is None:
                raise BreakpointError(f"no breakpoint with id {bp_id}")
            return bp

    def all(self) -> List[Breakpoint]:
        with self._lock:
            return sorted(self._by_id.values(), key=lambda b: b.id)

    def __len__(self) -> int:
        with self._lock:
            return len(self._by_id)

    @property
    def is_empty(self) -> bool:
        """Lock-free emptiness probe for the trace-callback fast path.

        Reads of dict sizes are GIL-atomic; a racing add is observed no
        later than the next event, which is exactly pdb-grade semantics
        for a breakpoint set while code is running.
        """
        return not self._by_id and not self._function_breaks

    def files_with_breakpoints(self) -> Set[str]:
        with self._lock:
            return set(self._by_location)

    def lines_for_file(self, file: str) -> frozenset:
        """Every line in *file* (canonical) carrying a breakpoint.

        Cold-path accessor for the LineTable: called once per code
        object per cache generation, never per event.
        """
        with self._lock:
            return frozenset(self._by_location.get(file, ()))

    def has_function_break(self, function: str) -> bool:
        """Lock-free: is any function breakpoint set on this name?

        Same consistency model as :attr:`is_empty` — a racing mutation
        is observed no later than the next cache invalidation.
        """
        return function in self._function_breaks

    def break_anywhere_in(self, file: str) -> bool:
        """Hot-path helper: does *file* contain any line breakpoint?

        ``file`` must already be canonical (the engine canonicalises once
        per code object, not once per line event).
        """
        return file in self._by_location

    def has_function_breaks(self) -> bool:
        return bool(self._function_breaks)

    def match_line(self, file: str, line: int) -> List[Breakpoint]:
        """All breakpoints at this canonical (file, line)."""
        with self._lock:
            return list(self._by_location.get(file, {}).get(line, ()))

    def match_function(self, function: str) -> List[Breakpoint]:
        with self._lock:
            return list(self._function_breaks.get(function, ()))

    # -- stop decision (shared by engine and tests) --------------------------

    def effective(self, file: str, line: int, frame_globals: Mapping[str, Any],
                  frame_locals: Mapping[str, Any],
                  function: Optional[str] = None) -> Optional[Breakpoint]:
        """First breakpoint at this site that decides to stop, if any.

        Temporary breakpoints that fire are removed before returning, so a
        ``tbreak`` can never stop twice.
        """
        candidates = self.match_line(file, line)
        if function is not None:
            candidates += self.match_function(function)
        for bp in candidates:
            if bp.should_stop(frame_globals, frame_locals):
                if bp.temporary:
                    try:
                        self.remove(bp.id)
                    except BreakpointError:
                        pass  # concurrently removed: stopping is still right
                return bp
        return None

    # -- fork support ----------------------------------------------------------

    def snapshot_state(self) -> List[dict]:
        """Plain-data dump (used for the client's breakpoint listing)."""
        return [
            {
                "id": bp.id, "file": bp.file, "line": bp.line,
                "condition": bp.condition, "temporary": bp.temporary,
                "enabled": bp.enabled, "hit_count": bp.hit_count,
                "ignore_count": bp.ignore_count, "function": bp.function,
            }
            for bp in self.all()
        ]

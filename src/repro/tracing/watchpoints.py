"""Watchpoints: stop when an expression's value changes.

An extension beyond the paper's explicit command list (set breakpoint,
continue, step, next, "and so on" — §4), in the spirit of the GDB `watch`
command the paper's related-work section compares against.  A watchpoint
is an expression evaluated in the debuggee's frames on every line event;
when its value differs from the last observed value in that UE, the UE
parks with reason ``watch``.

Cost model is explicit: while any watchpoint exists the engine cannot
stay on its quiet fast path — every frame is line-traced and every line
evaluates the expressions.  That is inherent to software watchpoints
(GDB pays the same without hardware debug registers); the store exists
so the cost is only paid while a watch is actually set.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..util.errors import BreakpointError
from ..util.ids import UEId
from ..util.serde import render_value


class _Unset:
    """Sentinel: no previous value observed yet."""

    def __repr__(self) -> str:  # pragma: no cover
        return "<unset>"


UNSET = _Unset()


@dataclass
class Watchpoint:
    id: int
    expression: str
    enabled: bool = True
    hit_count: int = 0
    #: last rendered value per UE (values are rendered immediately:
    #: holding live debuggee objects here would pin them forever).
    last_values: Dict[UEId, str] = field(default_factory=dict)


@dataclass(frozen=True)
class WatchHit:
    """One observed change, shipped to the client in the stop payload."""

    watch_id: int
    expression: str
    old_value: str
    new_value: str

    def to_wire(self) -> dict:
        return {"watch_id": self.watch_id, "expression": self.expression,
                "old_value": self.old_value, "new_value": self.new_value}


class WatchpointStore:
    """Thread-safe set of watch expressions + per-UE value memory."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._ids = itertools.count(1)
        self._watches: Dict[int, Watchpoint] = {}
        #: invoked after any add/remove (engine fast-path recompute).
        self.on_change = None

    def _notify(self) -> None:
        if self.on_change is not None:
            self.on_change()

    # -- mutation ---------------------------------------------------------------

    def add(self, expression: str) -> Watchpoint:
        if not expression or not expression.strip():
            raise BreakpointError("watch expression must be non-empty")
        compile(expression, "<watch>", "eval")  # fail fast on syntax
        watch = Watchpoint(id=next(self._ids),
                           expression=expression.strip())
        with self._lock:
            self._watches[watch.id] = watch
        self._notify()
        return watch

    def remove(self, watch_id: int) -> Watchpoint:
        with self._lock:
            watch = self._watches.pop(watch_id, None)
        if watch is None:
            raise BreakpointError(f"no watchpoint with id {watch_id}")
        self._notify()
        return watch

    def set_enabled(self, watch_id: int, enabled: bool) -> None:
        with self._lock:
            watch = self._watches.get(watch_id)
            if watch is None:
                raise BreakpointError(f"no watchpoint with id {watch_id}")
            watch.enabled = enabled

    def clear(self) -> None:
        with self._lock:
            self._watches.clear()
        self._notify()

    # -- queries ------------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return not self._watches

    def __len__(self) -> int:
        with self._lock:
            return len(self._watches)

    def all(self) -> List[Watchpoint]:
        with self._lock:
            return sorted(self._watches.values(), key=lambda w: w.id)

    def snapshot_state(self) -> List[dict]:
        return [{"id": w.id, "expression": w.expression,
                 "enabled": w.enabled, "hit_count": w.hit_count}
                for w in self.all()]

    # -- evaluation (trace-callback path) ----------------------------------------

    def evaluate(self, ue: UEId, frame) -> Optional[WatchHit]:
        """Evaluate every enabled watch in *frame*; first change wins.

        Expressions that raise (name not in scope in this frame) are
        treated as unobservable here — a watch on ``total`` must not
        fire in frames that have no ``total``.
        """
        with self._lock:
            watches = list(self._watches.values())
        for watch in watches:
            if not watch.enabled:
                continue
            try:
                value = eval(watch.expression,  # noqa: S307
                             frame.f_globals, frame.f_locals)
            except Exception:  # noqa: BLE001 - not observable here
                continue
            rendered = render_value(value)
            with self._lock:
                previous = watch.last_values.get(ue, UNSET)
                watch.last_values[ue] = rendered
                if previous is UNSET or previous == rendered:
                    continue
                watch.hit_count += 1
            return WatchHit(watch_id=watch.id,
                            expression=watch.expression,
                            old_value=previous,
                            new_value=rendered)
        return None

    def reset_after_fork(self) -> None:
        """Child handler: per-UE memories name parent threads."""
        with self._lock:
            for watch in self._watches.values():
                watch.last_values.clear()

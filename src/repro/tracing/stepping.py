"""Per-UE stepping state machines.

The shell commands of paper section 4 — *continue, step, next* (plus
*return* and *until*) — translate into a small state machine evaluated on
every trace event of the UE they target.  The machine is pure (no frames
retained beyond identity comparison, no engine coupling) so every
transition is unit-testable without ``sys.settrace``.

The algorithm is bdb's, restated:

* ``CONTINUE``    — never stop (breakpoints are checked separately);
* ``STEP``        — stop at the next line event in any frame, and at call
  events (entering a new frame counts as a step);
* ``NEXT``        — stop at the next line in the *current* frame, or when
  that frame returns;
* ``RETURN``      — stop when the current frame returns;
* ``UNTIL``       — like NEXT but only at a line strictly greater than the
  starting line (loop-escape semantics);
* ``SUSPEND``     — asynchronous stop request from the client (the
  low-intrusive "pause this one thread"): stop at the very next event.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class StepMode(enum.Enum):
    CONTINUE = "continue"
    STEP = "step"
    NEXT = "next"
    RETURN = "return"
    UNTIL = "until"
    SUSPEND = "suspend"


@dataclass
class StepState:
    """Stepping state for one UE (one thread of one debuggee process)."""

    mode: StepMode = StepMode.CONTINUE
    #: Frame the NEXT/RETURN/UNTIL command was issued in (identity only).
    stop_frame: Optional[object] = field(default=None, repr=False)
    #: For UNTIL: only stop past this line.
    until_line: int = 0

    # -- command entry points (called with the frame the UE is stopped in) --

    def set_continue(self) -> None:
        self.mode = StepMode.CONTINUE
        self.stop_frame = None
        self.until_line = 0

    def set_step(self) -> None:
        self.mode = StepMode.STEP
        self.stop_frame = None
        self.until_line = 0

    def set_next(self, frame) -> None:
        self.mode = StepMode.NEXT
        self.stop_frame = frame
        self.until_line = 0

    def set_return(self, frame) -> None:
        self.mode = StepMode.RETURN
        self.stop_frame = frame
        self.until_line = 0

    def set_until(self, frame, line: Optional[int] = None) -> None:
        self.mode = StepMode.UNTIL
        self.stop_frame = frame
        self.until_line = line if line is not None else frame.f_lineno

    def set_suspend(self) -> None:
        self.mode = StepMode.SUSPEND
        self.stop_frame = None
        self.until_line = 0

    # -- event evaluation -------------------------------------------------------

    def wants_call_tracing(self, frame) -> bool:
        """On a 'call' event: must the engine install a local trace func?

        CONTINUE answers False so un-broken code runs with only the cheap
        per-call check — the core of keeping no-breakpoint overhead in the
        10-20 % band of paper section 7 rather than orders of magnitude.
        """
        if self.mode is StepMode.CONTINUE:
            return False
        if self.mode in (StepMode.STEP, StepMode.SUSPEND):
            return True
        # NEXT/RETURN/UNTIL care about the stop frame and its callees'
        # returns; tracing the new callee is only needed so its 'return'
        # event can be seen when the callee IS below the stop frame.  bdb
        # traces everything in these modes; we do the same for simplicity
        # and correctness (the stop frame may be re-entered recursively).
        return True

    def should_stop_on_call(self, frame) -> bool:
        if self.mode is StepMode.STEP:
            return True
        if self.mode is StepMode.SUSPEND:
            return True
        return False

    def should_stop_on_line(self, frame) -> bool:
        if self.mode is StepMode.STEP:
            return True
        if self.mode is StepMode.SUSPEND:
            return True
        if self.mode is StepMode.NEXT:
            return frame is self.stop_frame
        if self.mode is StepMode.UNTIL:
            return frame is self.stop_frame and frame.f_lineno > self.until_line
        return False

    def should_stop_on_return(self, frame) -> bool:
        """Evaluated on 'return' events.

        STEP stops at returns (pdb's ``--Return--``).  NEXT and RETURN
        stop when *their* frame returns; bdb actually stops in the caller
        at the next line, which we emulate by converting the state: when
        the stop frame returns, degrade to STEP so the caller's next line
        event stops.
        """
        if self.mode in (StepMode.SUSPEND, StepMode.STEP):
            return True
        if self.mode in (StepMode.NEXT, StepMode.RETURN, StepMode.UNTIL):
            if frame is self.stop_frame:
                self.mode = StepMode.STEP
                self.stop_frame = None
        return False

    def notify_stopped(self) -> None:
        """The UE has stopped and reported; clear one-shot modes.

        After any stop the UE sits waiting for the next command, which
        will set a fresh mode; defaulting back to CONTINUE means a resume
        without an explicit mode runs freely.
        """
        self.set_continue()

    @property
    def is_running_free(self) -> bool:
        return self.mode is StepMode.CONTINUE

"""Per-code-object breakpoint relevance: the LineTable cache.

The old dispatch answered "could this frame ever hit a breakpoint?" by
canonicalising the frame's filename and probing the breakpoint store on
every call event.  This module precomputes the answer per *code object*:
the set of lines in ``code.co_lines()`` that carry a breakpoint in the
(canonicalised) file the code object was compiled from, plus a flag for
function breakpoints matching ``co_name``.  The engine's global-trace
fast path then pays exactly one dict probe per call for unbreakpointed
code — and zero per line, because it declines local tracing outright.

Consistency model (same as the store's ``is_empty``): the cache is read
lock-free under the GIL; any breakpoint mutation — and the child side of
a fork — calls :meth:`LineTable.invalidate`, which *rebinds* the cache
dict (never mutates it in place) and bumps :attr:`generation`.  A racing
reader may compute against the old store snapshot and write into the
abandoned dict; that write is garbage-collected with the dict, so the
next probe recomputes against fresh state.  A breakpoint set while code
runs is observed no later than the next call event — pdb-grade
semantics, identical to the pre-LineTable dispatch.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

from .breakpoints import BreakpointStore, canonical_file


class LineTable:
    """Maps code objects to their breakpoint-relevant line sets."""

    def __init__(self, breakpoints: BreakpointStore):
        self._breakpoints = breakpoints
        #: code object -> "can this code hit any breakpoint?".  Rebound
        #: (not cleared) on invalidation so hot-path readers never see a
        #: half-built dict.
        self._cache: Dict[object, bool] = {}
        #: raw co_filename -> canonical path memo; survives invalidation
        #: (paths do not change meaning when breakpoints do).
        self._canonical: Dict[str, str] = {}
        #: bumped on every invalidation; tests and the stress tier use it
        #: to prove stale caches cannot survive a mutation or a fork.
        self.generation = 0

    # -- hot path ---------------------------------------------------------

    def probe(self, code) -> bool:
        """True iff *code* could hit a line or function breakpoint.

        One dict lookup on the hot path; the miss path computes from
        ``co_lines()`` and the store, then publishes the verdict.
        """
        cache = self._cache
        hit = cache.get(code)
        if hit is None:
            hit = (bool(self.relevant_lines(code))
                   or self._breakpoints.has_function_break(code.co_name))
            # Writes into a cache dict that invalidate() has since
            # abandoned are dropped with it — see the module docstring.
            cache[code] = hit
        return hit

    # -- cold path --------------------------------------------------------

    def relevant_lines(self, code) -> FrozenSet[int]:
        """The exact lines of *code* carrying a line breakpoint.

        This is the precomputed equivalent of the old per-line check
        ``bool(store.match_line(canonical_file(co_filename), line))`` and
        the oracle the property tests compare against.  Function
        breakpoints are deliberately excluded (they fire on entry, not
        on a line — see :meth:`probe`).
        """
        co_lines = getattr(code, "co_lines", None)
        if co_lines is None:  # pre-3.10 interpreter: cannot prove absence
            return frozenset()
        bp_lines = self._breakpoints.lines_for_file(
            self._canonical_file(code.co_filename))
        if not bp_lines:
            return frozenset()
        hits = set()
        for _start, _end, line in co_lines():
            if line is not None and line in bp_lines:
                hits.add(line)
        return frozenset(hits)

    def _canonical_file(self, raw: str) -> str:
        cached = self._canonical.get(raw)
        if cached is None:
            cached = canonical_file(raw)
            self._canonical[raw] = cached
        return cached

    # -- invalidation -----------------------------------------------------

    def invalidate(self) -> None:
        """Drop every cached verdict (breakpoint mutation or post-fork)."""
        self.generation += 1
        self._cache = {}

    def __len__(self) -> int:
        return len(self._cache)

"""The trace engine: Dionea's debug-server core.

Paper section 4: *"The debug server traces debuggee's execution using
custom functions in conjunction with the tracing facilities provided by
the interpreters, i.e. ... sys.settrace for ... Python."*

Responsibilities:

* install/remove event delivery through a pluggable
  :mod:`~repro.tracing.backends` seam (``sys.settrace`` by default,
  PEP 669 ``sys.monitoring`` on 3.12+);
* on each event decide — cheaply — whether the frame needs a local trace
  function at all.  Two layers keep section 7's overhead down:

  - the **armed/disarmed hook lifecycle**: while nothing is being
    debugged the main thread physically drops its trace hook (on 3.11+
    any per-thread hook defeats the specializing interpreter, which
    costs far more than the dispatch itself) and is re-armed via a
    signal when a feature goes live;
  - the **per-code fast path**: while only breakpoints are live, a
    :class:`~repro.tracing.linetable.LineTable` probe answers "can this
    code object ever hit one?" in a single dict lookup, declining local
    tracing for everything else — one probe per call, zero per line;

* stop UEs at breakpoints, step targets, asynchronous suspend requests
  and disturb-mode birth events, parking only the stopping thread
  (low intrusion, footnote 1);
* expose ``disable``/``enable`` used by fork handler phases A and B/C
  (*"Disable the tracing until the listener thread is restarted, to avoid
  a deadlock in the child process"*, section 5.4) — both routed through
  the backend seam, as is the child's re-install in
  :meth:`reset_after_fork`.

Asynchronous suspend of an already-running thread works by injecting a
local trace function into that thread's live frames via
``sys._current_frames()`` — the same mechanism IDE debuggers use — so a
thread spinning in a long loop still honours a pause request at its next
line event.  The injected functions are removed again when the UE
continues, so a suspended-then-resumed thread returns to the fast path.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from threading import get_ident as _get_ident
from time import perf_counter as _perf_counter
from typing import Callable, Dict, Optional, Set, Tuple

from ..obs import metrics as obs_metrics
from ..obs.spans import SPANS
from ..util.errors import TraceError
from ..util.ids import UEId
from ..util.ringlog import debug_event
from .backends import TraceBackend, fastpath_enabled, select_backend
from .breakpoints import BreakpointStore, canonical_file
from .control import ResumeCommand, UEController
from .frames import StackCapture, capture_stack
from .linetable import LineTable
from .stepping import StepMode, StepState

#: Debugger-infrastructure packages whose frames are never traced; tracing
#: ourselves would recurse and inflate overhead.  The debuggee-level
#: substrates (repro.mp, repro.mapreduce, repro.workerpool, repro.corpus)
#: are deliberately NOT listed: the paper's Fig. 8 shows Dionea stepping
#: through multiprocessing queue internals.
_SELF_PACKAGES = ("tracing", "server", "client", "core", "util",
                  "forkhooks", "obs")


def _self_prefixes() -> Tuple[str, ...]:
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    return tuple(os.path.join(root, pkg) + os.sep for pkg in _SELF_PACKAGES)


class TraceEngine:
    """One per debuggee process (embedded in its debug server)."""

    def __init__(self,
                 breakpoints: Optional[BreakpointStore] = None,
                 controller: Optional[UEController] = None,
                 on_stop: Optional[Callable[[UEId, StackCapture], None]] = None,
                 on_resume: Optional[Callable[[UEId], None]] = None,
                 disturb: Optional[object] = None,
                 park_timeout: Optional[float] = 60.0,
                 backend: Optional[object] = None,
                 fastpath: Optional[bool] = None):
        self.breakpoints = breakpoints or BreakpointStore()
        self.controller = controller or UEController()
        self.on_stop = on_stop
        self.on_resume = on_resume
        #: duck-typed DisturbMode: an object with a raw-readable
        #: ``enabled`` attribute and a ``check(ue, frame)`` method.
        self.disturb = disturb
        self.park_timeout = park_timeout

        self._lock = threading.RLock()
        self._states: Dict[UEId, StepState] = {}
        self._paused_frames: Dict[UEId, object] = {}
        self._canonical: Dict[str, str] = {}
        self._skip_prefixes = _self_prefixes()
        #: per-filename skip decision cache: one dict lookup on the hot
        #: path instead of repeated startswith scans.
        self._skip_cache: Dict[str, bool] = {}
        #: UEs whose step state is not CONTINUE; non-empty disables the
        #: no-feature fast path.  Read lock-free on the hot path.
        self._active_steppers: Set[UEId] = set()
        self._installed = False
        self._enabled = True
        #: break-on-raise: when set, any 'exception' event parks the UE
        #: with the exception rendered into the capture (pdb's `catch`).
        #: Optionally filtered to exception type names.
        self._exception_breaks = False
        self._exception_filter: Optional[Set[str]] = None

        #: the event source (settrace or sys.monitoring); accepts a
        #: backend name, a ready-made backend object, or None/'auto'
        #: resolved via DIONEA_TRACE_BACKEND.
        if backend is None or isinstance(backend, str):
            self._backend: TraceBackend = select_backend(backend)
        else:
            self._backend = backend
        #: per-code fast path toggle (DIONEA_TRACE_FASTPATH; the parity
        #: matrix runs every suite with it off too).
        self._fastpath = fastpath_enabled(fastpath)

        #: pre-bound local dispatch: one bound-method object, so injected
        #: ``f_trace`` functions are identity-comparable (and strippable)
        self._local_fn = self._local_dispatch
        #: per-code-object breakpoint relevance (the fast path's probe)
        self.linetable = LineTable(self.breakpoints)
        self._lt_probe = self.linetable.probe

        #: armed/disarmed hook lifecycle state (settrace backend only):
        #: the main thread may drop its trace hook while quiet and is
        #: re-armed via REARM_SIGNAL (see repro.tracing.backends).
        self._main_ident = threading.main_thread().ident
        self._demotable = False
        self._main_demoted = False
        self._arm_epoch = 0

        #: precomputed "nothing is being debugged" flag: True while there
        #: are no breakpoints, no stepping UEs, no pending suspends and
        #: disturb mode is off.  Every feature toggle recomputes it so
        #: the per-event fast path is a single attribute read.
        self._quiet = True
        #: True while *only* breakpoints are live — the state in which a
        #: LineTable probe alone decides whether a frame needs tracing.
        self._code_fastpath_ok = False

        self.breakpoints.on_change = self._breakpoints_changed
        from .watchpoints import WatchpointStore
        self.watchpoints = WatchpointStore()
        self.watchpoints.on_change = self.refresh_quiet
        #: events the engine processed; read by the overhead benchmarks.
        self.event_count = 0
        #: armed-mode calls the LineTable probe declined (plain int, read
        #: via a callback gauge so the hot path never touches obs).
        self.fastpath_hits = 0
        #: local trace functions injected into live frames (suspend /
        #: step arming); a suspended-then-resumed thread must not keep
        #: growing this.
        self.local_installs = 0
        self.refresh_quiet()

    # -- lifecycle --------------------------------------------------------------

    @property
    def installed(self) -> bool:
        return self._installed

    @property
    def enabled(self) -> bool:
        return self._enabled

    @property
    def backend_name(self) -> str:
        return getattr(self._backend, "name", "custom")

    @property
    def fastpath(self) -> bool:
        return self._fastpath

    def install(self) -> None:
        """Install event delivery for this thread and all future threads."""
        with self._lock:
            if self._installed:
                raise TraceError("trace engine already installed")
            self._installed = True
        self._backend.install(self)
        # Expose the hot-path counters as callback gauges: the fast path
        # stays untouched (§7's overhead band); the registry reads the
        # plain ints only at snapshot time.
        obs_metrics.register_gauge("trace.events",
                                   lambda: self.event_count)
        obs_metrics.register_gauge("trace.fastpath_hits",
                                   lambda: self.fastpath_hits)
        obs_metrics.register_gauge("trace.local_installs",
                                   lambda: self.local_installs)
        debug_event("tracing",
                    f"engine installed (backend={self.backend_name}, "
                    f"fastpath={'on' if self._fastpath else 'off'})")

    def uninstall(self) -> None:
        with self._lock:
            if not self._installed:
                return
            self._installed = False
        self._backend.uninstall()
        for gauge in ("trace.events", "trace.fastpath_hits",
                      "trace.local_installs"):
            obs_metrics.REGISTRY.unregister_gauge(gauge)
        self.controller.release_all()
        debug_event("tracing", "engine uninstalled")

    def disable(self) -> None:
        """Fork phase A: make every dispatch a near-no-op."""
        self._enabled = False
        self._backend.sync()

    def enable(self) -> None:
        """Fork phases B/C: resume normal dispatch."""
        self._enabled = True
        self._backend.sync()

    def refresh_quiet(self) -> None:
        """Recompute the fast-path flags after any feature toggle."""
        disturb = self.disturb
        other_quiet = (self.watchpoints.is_empty
                       and not self._exception_breaks
                       and not self._active_steppers
                       and not self.controller.has_pending
                       and (disturb is None or not disturb.enabled))
        quiet = other_quiet and self.breakpoints.is_empty
        self._code_fastpath_ok = self._fastpath and other_quiet
        was_quiet = self._quiet
        self._quiet = quiet
        if was_quiet != quiet and self._installed:
            if not quiet:
                # Closes the demote-vs-arm race: a main thread caught
                # mid-demotion re-checks the epoch and restores itself.
                self._arm_epoch += 1
            self._backend.sync()

    def _breakpoints_changed(self) -> None:
        """Breakpoint mutation: invalidate per-code caches, then rearm.

        Forked children re-own the store as data (Fig. 4), so this same
        callback — plus :meth:`reset_after_fork` — is what PROTOCOL.md
        means by the invalidation broadcast: every process that mutates
        its copy of the store drops its own LineTable verdicts.
        """
        self.linetable.invalidate()
        self.refresh_quiet()
        if self._installed:
            self._backend.events_invalidated()

    def set_exception_breaks(self, enabled: bool,
                             only: Optional[list] = None) -> None:
        """Toggle break-on-raise; *only* optionally names exception types.

        Fires at the 'exception' trace event — i.e. at the *raise*, in
        the frame where it happened, before any handler runs — which is
        the point pdb's uncaught-exception post-mortem cannot reach.
        """
        self._exception_breaks = enabled
        self._exception_filter = set(only) if only else None
        self.refresh_quiet()

    @property
    def exception_breaks(self) -> bool:
        return self._exception_breaks

    # -- per-UE state -------------------------------------------------------------

    def state_for(self, ue: UEId) -> StepState:
        with self._lock:
            state = self._states.get(ue)
            if state is None:
                state = StepState()
                self._states[ue] = state
            return state

    def known_ues(self):
        with self._lock:
            return sorted(self._states)

    def paused_frame(self, ue: UEId):
        """The live frame a parked UE stopped in, or None.

        Safe to inspect from the listener thread: the owning thread is
        blocked on its gate for as long as the frame is registered.
        """
        with self._lock:
            return self._paused_frames.get(ue)

    # -- async suspend ---------------------------------------------------------------

    def request_suspend(self, ue: UEId) -> None:
        """Pause one running UE at its next line event."""
        self.controller.request_suspend(ue)
        self.refresh_quiet()
        self._inject_into_thread(ue.tid)

    def request_suspend_all(self) -> None:
        self.controller.request_suspend_all()
        self.refresh_quiet()
        for tid in list(sys._current_frames()):
            if tid != _get_ident():
                self._inject_into_thread(tid)

    def resume_all(self) -> int:
        """Clear every suspend request and release all parked UEs."""
        self.controller.clear_suspend_all()
        released = self.controller.release_all()
        self.refresh_quiet()
        return released

    def _inject_into_thread(self, tid: int) -> None:
        """Set local trace functions on a live thread's frames so its next
        line event reaches the engine even if its frames opted out."""
        if not self._backend.needs_frame_injection:
            return  # monitoring delivers lines globally while armed
        frame = sys._current_frames().get(tid)
        if frame is not None:
            self._inject_frames(frame)

    def _inject_frames(self, frame) -> None:
        """Arm *frame* and its callers with the local dispatch, skipping
        debugger-infrastructure frames (`_SELF_PACKAGES`)."""
        local_fn = self._local_fn
        current = frame
        while current is not None:
            if (current.f_trace is not local_fn
                    and not self._should_skip(current.f_code.co_filename)):
                current.f_trace = local_fn
                current.f_trace_lines = True
                self.local_installs += 1
            current = current.f_back

    def _strip_injected_frames(self, frame) -> None:
        """Remove injected local traces once their UE continues.

        Without this a suspended-then-resumed thread would pay per-line
        dispatch for the rest of every live frame's lifetime.  Only our
        own pre-bound function is removed, and only from frames the
        current feature set no longer needs (a frame whose code still
        carries a breakpoint keeps its local trace so mid-frame hits
        stay possible, exactly like the pre-fastpath engine).
        """
        local_fn = self._local_fn
        quiet = self._quiet
        fastpath_ok = self._code_fastpath_ok
        current = frame
        while current is not None:
            if current.f_trace is local_fn:
                if quiet or (fastpath_ok
                             and not self._lt_probe(current.f_code)):
                    current.f_trace = None
            current = current.f_back

    # -- dispatch ----------------------------------------------------------------

    def _canonical_file(self, raw: str) -> str:
        cached = self._canonical.get(raw)
        if cached is None:
            cached = canonical_file(raw)
            self._canonical[raw] = cached
        return cached

    def _should_skip(self, filename: str) -> bool:
        skip = self._skip_cache.get(filename)
        if skip is None:
            skip = (filename.startswith("<")  # <string>, <frozen ...>
                    or filename.startswith(self._skip_prefixes))
            self._skip_cache[filename] = skip
        return skip

    def _global_dispatch(self, frame, event, arg):
        """Installed via sys.settrace; called for 'call' events.

        The first half is the **no-breakpoint fast path** the §7
        overhead numbers depend on: when nothing is being debugged the
        only per-call cost is a couple of attribute reads and one dict
        lookup — no locks, no UEId construction — and on the settrace
        backend the quiet main thread then *demotes itself* (drops its
        hook entirely) so the specializing interpreter comes back.
        While only breakpoints are live, the LineTable probe declines
        local tracing per code object: one extra dict lookup per call,
        zero per line, for every frame that can never hit one.

        Hot-path discipline (enforced by tools/lint_hotpath.py): no
        ``obs_metrics`` attribute lookups here — the counters below are
        plain ints exported as callback gauges at install time.
        """
        if not self._enabled or not self._installed:
            return None
        filename = frame.f_code.co_filename
        skip = self._skip_cache.get(filename)
        if skip is None:
            skip = self._should_skip(filename)
        if skip:
            # Skipped frames never demote-gate the quiet check below, so
            # re-check here: a main thread that only executes debugger
            # infrastructure (or "<string>" code) after the engine goes
            # quiet must still drop its hook.
            if (self._quiet and self._demotable
                    and _get_ident() == self._main_ident):
                self._demote_main_thread()
            return None
        self.event_count += 1
        if self._quiet:
            if self._demotable and _get_ident() == self._main_ident:
                self._demote_main_thread()
            return None
        if self._code_fastpath_ok and not self._lt_probe(frame.f_code):
            self.fastpath_hits += 1
            return None
        return self._slow_dispatch(frame, event, arg)

    def _demote_main_thread(self) -> None:
        """Quiet main thread: physically drop this thread's trace hook.

        Runs inside the dispatch, in the main thread.  The backend's
        re-arm signal handler restores the hook when a feature goes
        live; the epoch re-check below closes the window where an arm
        raced the demotion (the arm bumped the epoch and may have
        signalled before ``_main_demoted`` was visible).
        """
        epoch = self._arm_epoch
        self._main_demoted = True
        sys.settrace(None)
        if not self._installed:
            self._main_demoted = False
            return
        if self._arm_epoch != epoch or not self._quiet:
            self._main_demoted = False
            sys.settrace(self._global_dispatch)

    def _slow_dispatch(self, frame, event, arg):
        """Some debugging feature is live: full per-UE processing."""
        obs_metrics.inc("trace.slow_events")
        filename = frame.f_code.co_filename
        ue = UEId(os.getpid(), threading.get_ident())
        state = self.state_for(ue)

        # Disturb mode: the mode tracks which UEs it has already seen.
        disturb = self.disturb
        if disturb is not None and disturb.enabled:
            reason = disturb.check(ue, frame)
            if reason:
                self._pause(ue, frame, reason=reason)
                return self._local_fn

        if event != "call":
            # Defensive: injected frames may route non-call events here.
            return self._local_dispatch(frame, event, arg)

        # Function breakpoints fire on entry.
        if self.breakpoints.has_function_breaks():
            bp = self.breakpoints.effective(
                self._canonical_file(filename), frame.f_lineno,
                frame.f_globals, frame.f_locals,
                function=frame.f_code.co_name)
            if bp is not None:
                self._pause(ue, frame, reason="breakpoint",
                            breakpoint_id=bp.id)
                return self._local_fn

        if state.should_stop_on_call(frame):
            self._pause(ue, frame, reason="step")
            return self._local_fn

        if self.controller.consume_suspend(ue):
            self._pause(ue, frame, reason="suspend")
            return self._local_fn

        # Trace this frame's lines at all?  Watchpoints and exception
        # breaks force local tracing everywhere (neither has a cheaper
        # software implementation; the cost exists only while one is
        # set).
        if (state.wants_call_tracing(frame)
                or not self.watchpoints.is_empty
                or self._exception_breaks
                or self.breakpoints.break_anywhere_in(
                    self._canonical_file(filename))):
            return self._local_fn
        return None

    def _local_dispatch(self, frame, event, arg):
        if not self._enabled or not self._installed:
            return None
        if self._should_skip(frame.f_code.co_filename):
            return None
        self.event_count += 1
        ue = UEId(os.getpid(), threading.get_ident())
        state = self.state_for(ue)

        if event == "line":
            if self.controller.consume_suspend(ue):
                self._pause(ue, frame, reason="suspend")
            elif state.should_stop_on_line(frame):
                self._pause(ue, frame, reason="step")
            elif (frame.f_trace is self._local_fn
                  and (self._quiet
                       or (self._code_fastpath_ok
                           and not self._lt_probe(frame.f_code)))):
                # Same condition as _strip_injected_frames.  An async
                # suspend injects from ANOTHER thread, so its walk can
                # finish after the target already consumed the suspend,
                # resumed and stripped — leaving this frame armed with
                # nothing to stop on.  Shed the stale trace here rather
                # than paying per-line dispatch for the frame's lifetime.
                frame.f_trace = None
                return None
            else:
                t0 = _perf_counter()
                bp = self.breakpoints.effective(
                    self._canonical_file(frame.f_code.co_filename),
                    frame.f_lineno, frame.f_globals, frame.f_locals)
                # Per-line dispatch latency while features are live (the
                # no-feature fast path never reaches here, so the §7
                # band pays nothing for this observe).
                obs_metrics.observe("trace.line_dispatch_seconds",
                                    _perf_counter() - t0)
                if bp is not None:
                    self._pause(ue, frame, reason="breakpoint",
                                breakpoint_id=bp.id)
                elif not self.watchpoints.is_empty:
                    hit = self.watchpoints.evaluate(ue, frame)
                    if hit is not None:
                        self._pause(ue, frame, reason="watch",
                                    watch=hit.to_wire())
        elif event == "return":
            was_suspend = state.mode is StepMode.SUSPEND
            if state.should_stop_on_return(frame):
                self._pause(ue, frame,
                            reason="suspend" if was_suspend else "return")
        elif event == "call":
            return self._global_dispatch(frame, event, arg)
        elif event == "exception" and self._exception_breaks:
            exc_type, exc_value, _tb = arg
            name = getattr(exc_type, "__name__", str(exc_type))
            if (self._exception_filter is None
                    or name in self._exception_filter):
                # StopIteration/GeneratorExit are control flow, not
                # bugs; raises inside the stdlib or this library's own
                # substrate are implementation noise (e.g. the pipe
                # semaphore's BlockingIOError poll loop) — exception
                # breaks target the *user's* raise sites.
                if (name not in ("StopIteration", "GeneratorExit")
                        and self._is_user_frame(frame)):
                    self._pause(ue, frame, reason="exception",
                                watch={"exception": name,
                                       "message": str(exc_value)})
        return self._local_fn

    _stdlib_prefix_cache: Optional[str] = None

    def _is_user_frame(self, frame) -> bool:
        if TraceEngine._stdlib_prefix_cache is None:
            import sysconfig
            TraceEngine._stdlib_prefix_cache = \
                sysconfig.get_paths().get("stdlib", "\0none")
        filename = frame.f_code.co_filename
        if filename.startswith(TraceEngine._stdlib_prefix_cache):
            return False
        repro_root = os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))
        return not filename.startswith(repro_root)

    # -- stopping ------------------------------------------------------------------

    def _pause(self, ue: UEId, frame, reason: str,
               breakpoint_id: Optional[int] = None,
               watch: Optional[dict] = None) -> None:
        """Park the calling UE and apply the client's resume command."""
        state = self.state_for(ue)
        state.notify_stopped()
        capture = capture_stack(frame, reason=reason,
                                breakpoint_id=breakpoint_id, watch=watch)
        # Arm the gate BEFORE announcing the stop: a fast client may send
        # the resume command the instant it hears about the stop, and that
        # release must not be lost (see repro.tracing.control).
        gate = self.controller.gate_for(ue)
        gate.arm()
        with self._lock:
            self._paused_frames[ue] = frame
        if self.on_stop is not None:
            try:
                self.on_stop(ue, capture)
            except Exception:  # noqa: BLE001 - client glue must not kill UE
                debug_event("tracing", f"on_stop callback failed for {ue}")
        obs_metrics.inc("trace.pauses", reason=reason)
        parked = SPANS.begin(f"parked:{reason}", cat="tracing",
                             pid=ue.pid, tid=ue.tid)
        try:
            command = gate.await_release(timeout=self.park_timeout)
        finally:
            parked.end()
            obs_metrics.observe("trace.park_seconds",
                                time.monotonic() - parked.t0_mono)
            with self._lock:
                self._paused_frames.pop(ue, None)
        self._apply_command(state, frame, command)
        if self.on_resume is not None:
            try:
                self.on_resume(ue)
            except Exception:  # noqa: BLE001
                debug_event("tracing", f"on_resume callback failed for {ue}")

    def _apply_command(self, state: StepState, frame,
                       command: ResumeCommand) -> None:
        ue = UEId(os.getpid(), threading.get_ident())
        action = command.action
        if action == "continue":
            state.set_continue()
            self._active_steppers.discard(ue)
            self.refresh_quiet()
            if self._backend.needs_frame_injection:
                self._strip_injected_frames(frame)
            return
        self._active_steppers.add(ue)
        self.refresh_quiet()
        if action == "step":
            state.set_step()
        elif action == "next":
            state.set_next(frame)
        elif action == "return":
            state.set_return(frame)
        elif action == "until":
            state.set_until(frame, command.until_line)
        else:
            debug_event("tracing", f"unknown resume action {action!r}; "
                                   f"continuing")
            state.set_continue()
            self._active_steppers.discard(ue)
            return
        # Frames entered while the UE ran free declined local tracing (the
        # no-breakpoint fast path), so a step/next/return targeting them
        # would never see a line or return event.  Inject the local trace
        # function up the stack — bdb does the same via f_trace.
        if self._backend.needs_frame_injection:
            self._inject_frames(frame)

    # -- fork support ---------------------------------------------------------------

    def reset_after_fork(self) -> None:
        """Child fork handler: only the forking thread survives (§5.1).

        Parent thread states, seen-UE marks and parked gates describe
        threads that do not exist in this process; drop them all and keep
        a fresh state for the surviving thread.  The inherited LineTable
        verdicts are dropped too — the child re-owns its breakpoint store
        as data (Fig. 4), and its caches must be recomputed against its
        own copy (the PROTOCOL.md invalidation-broadcast contract).
        """
        surviving = UEId.current()
        with self._lock:
            self._states = {surviving: StepState()}
            self._active_steppers = set()
        self.controller.reset_after_fork(surviving)
        self.watchpoints.reset_after_fork()
        self.linetable.invalidate()
        self.refresh_quiet()
        # The child must re-arm event delivery for itself: settrace state
        # is per-thread and the child's only thread is the parent's
        # forker.  Routed through the backend seam — the settrace backend
        # re-registers the forker as the main thread (phase C's "register
        # the thread that called fork as the main thread").
        if self._installed:
            self._backend.reinstall_after_fork()

"""Trace backends: the seam between dispatch policy and the interpreter.

The engine decides *what* to do at an event (stop, step, decline); a
backend decides *how* events reach the engine at all:

* :class:`SettraceBackend` — ``sys.settrace``/``threading.settrace``,
  the paper's mechanism and the default everywhere.  Its key trick is
  the armed/disarmed hook lifecycle: on CPython 3.11+ the mere presence
  of a per-thread trace function disables the specializing interpreter
  (PEP 659), so a "cheap" Python-level dispatch still costs >30 % on
  compute-bound code.  While the engine is quiet, the main thread
  therefore *drops its hook entirely* from inside the dispatch, and is
  re-armed via a signal when a feature goes live (``sys.settrace`` is
  per-thread and only a signal handler runs code in the main thread on
  demand).  Non-main threads keep their hooks so asynchronous suspend
  keeps working unchanged.
* :class:`MonitoringBackend` — PEP 669 ``sys.monitoring`` (3.12+),
  auto-detected and selectable via ``DIONEA_TRACE_BACKEND``.  Events are
  registered per tool and disabled wholesale while quiet; per-code-object
  irrelevance is expressed by returning ``sys.monitoring.DISABLE``,
  which the interpreter caches until ``restart_events()``.

Both are driven through the same narrow interface (install/uninstall/
sync/events_invalidated/reinstall_after_fork), which is also how the
fork handler phases A/B/C reach the tracing layer: ``engine.disable()``
and ``engine.enable()`` call :meth:`TraceBackend.sync`, and the child's
``engine.reset_after_fork()`` calls :meth:`reinstall_after_fork`.
"""

from __future__ import annotations

import os
import signal
import sys
import threading
from typing import Optional

from ..util.errors import TraceError

#: Environment knobs (read once, at engine construction).
BACKEND_ENV = "DIONEA_TRACE_BACKEND"
FASTPATH_ENV = "DIONEA_TRACE_FASTPATH"

#: The re-arm signal.  SIGURG is the conventional "free" signal (ignored
#: by default, unused by the runtime) and Python signal handlers always
#: execute in the main thread — exactly the thread whose trace hook was
#: dropped and cannot be restored from anywhere else.
REARM_SIGNAL = getattr(signal, "SIGURG", None)


def fastpath_enabled(override: Optional[bool] = None) -> bool:
    """The per-code fast path toggle (``DIONEA_TRACE_FASTPATH``)."""
    if override is not None:
        return bool(override)
    raw = os.environ.get(FASTPATH_ENV, "1").strip().lower()
    return raw not in ("0", "off", "false", "no")


class TraceBackend:
    """Interface every backend implements (default impls are no-ops)."""

    name = "abstract"
    #: whether asynchronous suspend / stepping must inject per-frame
    #: ``f_trace`` functions (settrace) or sees every line globally
    #: while armed (monitoring).
    needs_frame_injection = True

    @staticmethod
    def available() -> bool:
        return False

    def install(self, engine) -> None:
        raise NotImplementedError

    def uninstall(self) -> None:
        raise NotImplementedError

    def sync(self) -> None:
        """Reconcile the event source with the engine's armed/quiet/
        enabled flags.  Called on every quiet-flag edge and around the
        fork phases (A disables, B/C enable)."""

    def events_invalidated(self) -> None:
        """A breakpoint mutation invalidated the LineTable."""

    def reinstall_after_fork(self) -> None:
        """Child fork phase C: re-assert event delivery for the one
        surviving thread, which is now the main thread."""


class SettraceBackend(TraceBackend):
    """Default backend: per-thread trace hooks with main-thread demotion."""

    name = "settrace"
    needs_frame_injection = True

    def __init__(self) -> None:
        self.engine = None
        self._prev_handler = None
        self._signal_installed = False

    @staticmethod
    def available() -> bool:
        return True

    def install(self, engine) -> None:
        self.engine = engine
        engine._main_ident = threading.main_thread().ident
        threading.settrace(engine._global_dispatch)
        sys.settrace(engine._global_dispatch)
        # Demotion needs the re-arm signal handler, and signal handlers
        # can only be installed from the main thread.  When the engine is
        # installed from elsewhere (the stress runner's worker threads),
        # every thread simply keeps its hook — correct, just slower.
        self._signal_installed = False
        if (engine._fastpath and REARM_SIGNAL is not None
                and threading.get_ident() == engine._main_ident):
            try:
                self._prev_handler = signal.signal(
                    REARM_SIGNAL, self._rearm_handler)
                self._signal_installed = True
            except (ValueError, OSError):  # non-main thread, exotic host
                self._prev_handler = None
        engine._demotable = self._signal_installed

    def uninstall(self) -> None:
        sys.settrace(None)
        threading.settrace(None)  # type: ignore[arg-type]
        if self._signal_installed:
            try:
                signal.signal(REARM_SIGNAL,
                              self._prev_handler or signal.SIG_DFL)
            except (ValueError, OSError):
                pass
            self._signal_installed = False
        engine = self.engine
        if engine is not None:
            engine._demotable = False
            engine._main_demoted = False

    # -- arming ------------------------------------------------------------

    def sync(self) -> None:
        """Re-arm the demoted main thread when a feature goes live.

        Quiet-direction edges need no action here: demotion is lazy (the
        dispatch drops the hook at the next call event it sees).
        """
        engine = self.engine
        if engine is None or not engine._installed or not engine._enabled:
            return
        if engine._quiet or not engine._main_demoted:
            return
        if threading.get_ident() == engine._main_ident:
            sys.settrace(engine._global_dispatch)
            engine._main_demoted = False
        else:
            # Only the main thread can restore its own hook; interrupt it.
            try:
                os.kill(os.getpid(), REARM_SIGNAL)
            except OSError:  # pragma: no cover - kill(self) cannot fail
                pass

    def _rearm_handler(self, signum, frame) -> None:
        """Runs in the main thread: restore the dropped trace hook."""
        engine = self.engine
        if (engine is not None and engine._installed
                and engine._main_demoted and not engine._quiet):
            sys.settrace(engine._global_dispatch)
            engine._main_demoted = False
            # A global hook only fires at the next *call* event.  A
            # pending asynchronous suspend is aimed at lines too, so arm
            # the interrupted stack the same way request_suspend() arms
            # other threads.  Plain breakpoint arming deliberately does
            # NOT inject: a breakpoint set mid-frame fires at the next
            # call event, exactly as it always has.
            if engine.controller.has_pending and frame is not None:
                engine._inject_frames(frame)
        prev = self._prev_handler
        if callable(prev):
            prev(signum, frame)

    def events_invalidated(self) -> None:
        """No interpreter-side event cache with settrace."""

    def reinstall_after_fork(self) -> None:
        engine = self.engine
        # "register the thread that called fork as the main thread"
        # (paper phase C): it is the only thread left, and it is the one
        # the re-arm signal will reach from now on.
        engine._main_ident = threading.get_ident()
        threading.settrace(engine._global_dispatch)
        if engine._fastpath and engine._demotable and engine._quiet:
            # Quiet child: stay (or become) demoted; the dispatch would
            # drop the hook at the first call event anyway.
            sys.settrace(None)
            engine._main_demoted = True
        else:
            sys.settrace(engine._global_dispatch)
            engine._main_demoted = False


class MonitoringBackend(TraceBackend):
    """PEP 669 backend (CPython 3.12+): per-tool event sets.

    While quiet the tool's event mask is zero — no callbacks at all, no
    per-thread hook, no specializer deopt.  While armed, per-code
    irrelevance returns ``sys.monitoring.DISABLE`` so the interpreter
    stops delivering that (event, code) pair until ``restart_events()``,
    which :meth:`events_invalidated` issues on every breakpoint change.
    """

    name = "monitoring"
    needs_frame_injection = False

    def __init__(self) -> None:
        self.engine = None
        self._mon = None
        self._tool = None

    @staticmethod
    def available() -> bool:
        return hasattr(sys, "monitoring")

    def install(self, engine) -> None:
        self.engine = engine
        mon = sys.monitoring
        self._mon = mon
        self._tool = mon.DEBUGGER_ID
        mon.use_tool_id(self._tool, "dionea")
        events = mon.events
        mon.register_callback(self._tool, events.PY_START, self._on_start)
        mon.register_callback(self._tool, events.LINE, self._on_line)
        mon.register_callback(self._tool, events.PY_RETURN, self._on_return)
        mon.register_callback(self._tool, events.RAISE, self._on_raise)
        engine._main_ident = threading.main_thread().ident
        engine._demotable = False  # nothing to demote: no thread hooks
        self.sync()

    def uninstall(self) -> None:
        mon, tool = self._mon, self._tool
        if mon is None:
            return
        try:
            mon.set_events(tool, 0)
            events = mon.events
            for kind in (events.PY_START, events.LINE,
                         events.PY_RETURN, events.RAISE):
                mon.register_callback(tool, kind, None)
            mon.free_tool_id(tool)
        except Exception:  # noqa: BLE001 - teardown must not raise
            pass
        self._mon = self._tool = None

    def sync(self) -> None:
        mon, engine = self._mon, self.engine
        if mon is None or engine is None:
            return
        events = mon.events
        if not engine._installed or not engine._enabled or engine._quiet:
            mon.set_events(self._tool, 0)
            return
        mask = events.PY_START | events.PY_RETURN | events.LINE
        if engine._exception_breaks:
            mask |= events.RAISE
        mon.set_events(self._tool, mask)
        mon.restart_events()

    def events_invalidated(self) -> None:
        mon = self._mon
        if mon is not None:
            mon.restart_events()

    def reinstall_after_fork(self) -> None:
        engine = self.engine
        engine._main_ident = threading.get_ident()
        self.sync()

    # -- callbacks ---------------------------------------------------------

    def _on_start(self, code, instruction_offset):
        engine = self.engine
        if not engine._enabled or not engine._installed:
            return None
        if engine._should_skip(code.co_filename):
            return self._mon.DISABLE
        engine.event_count += 1
        if engine._quiet:
            return None
        if engine._code_fastpath_ok and not engine._lt_probe(code):
            engine.fastpath_hits += 1
            return self._mon.DISABLE
        engine._slow_dispatch(sys._getframe(1), "call", None)
        return None

    def _on_line(self, code, line_number):
        engine = self.engine
        if not engine._enabled or not engine._installed:
            return None
        if engine._should_skip(code.co_filename):
            return self._mon.DISABLE
        if engine._quiet:
            return None
        if engine._code_fastpath_ok and not engine._lt_probe(code):
            engine.fastpath_hits += 1
            return self._mon.DISABLE
        engine._local_dispatch(sys._getframe(1), "line", None)
        return None

    def _on_return(self, code, instruction_offset, retval):
        engine = self.engine
        if not engine._enabled or not engine._installed:
            return None
        if engine._should_skip(code.co_filename):
            return self._mon.DISABLE
        if engine._quiet:
            return None
        engine._local_dispatch(sys._getframe(1), "return", retval)
        return None

    def _on_raise(self, code, instruction_offset, exception):
        engine = self.engine
        if (not engine._enabled or not engine._installed
                or not engine._exception_breaks):
            return None
        if engine._should_skip(code.co_filename):
            return None
        engine._local_dispatch(sys._getframe(1), "exception",
                               (type(exception), exception, None))
        return None


_BACKENDS = {
    SettraceBackend.name: SettraceBackend,
    MonitoringBackend.name: MonitoringBackend,
}


def select_backend(name: Optional[str] = None) -> TraceBackend:
    """Build the backend *name* asks for, or auto-detect.

    Resolution order: explicit argument, then ``DIONEA_TRACE_BACKEND``,
    then ``auto`` (monitoring when the interpreter has PEP 669, else
    settrace).
    """
    requested = (name or os.environ.get(BACKEND_ENV, "auto")
                 or "auto").strip().lower()
    if requested == "auto":
        if MonitoringBackend.available():
            return MonitoringBackend()
        return SettraceBackend()
    cls = _BACKENDS.get(requested)
    if cls is None:
        raise TraceError(
            f"unknown trace backend {requested!r}; "
            f"expected one of {sorted(_BACKENDS)} or 'auto'")
    if not cls.available():
        raise TraceError(
            f"trace backend {requested!r} is unavailable on "
            f"Python {sys.version_info.major}.{sys.version_info.minor}")
    return cls()

"""Per-UE suspend/resume gates — the "low-intrusive" mechanism.

Footnote 1 of the paper defines low intrusion as *"the capability of
debugging a single thread while other threads continue executing freely"*.
Concretely: when a UE stops (breakpoint, step, suspend), **only that
thread** blocks; it parks on its own :class:`ResumeGate` inside the trace
callback while every other thread keeps running.  The client may also
operate on the whole program ("suspending all the threads of a
multithreaded program", section 4) by sweeping the gates.

Stop/resume is inherently racy: the server tells the client "UE stopped"
*before* the UE finishes parking, and a fast client may answer
immediately.  The gate therefore has two steps — :meth:`ResumeGate.arm`
(makes the stop visible and opens the release window) and
:meth:`ResumeGate.await_release` (actually blocks) — so a release that
arrives between them is never lost.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..util.errors import TraceError
from ..util.ids import UEId


@dataclass
class ResumeCommand:
    """What the parked UE should do once released."""

    action: str = "continue"  # continue | step | next | return | until
    until_line: Optional[int] = None


class ResumeGate:
    """One thread's parking spot.

    The traced thread calls ``arm`` then ``await_release``; the listener
    thread calls ``release`` on behalf of the client at any point after
    ``arm``.  A gate is single-occupancy: one stop at a time.
    """

    def __init__(self, ue: UEId):
        self.ue = ue
        self._event = threading.Event()
        self._command: Optional[ResumeCommand] = None
        self._armed = threading.Event()
        self._lock = threading.Lock()

    @property
    def is_parked(self) -> bool:
        """True between ``arm`` and the return of ``await_release``."""
        return self._armed.is_set()

    def arm(self) -> None:
        """Open the release window.  Called by the stopping UE *before*
        the stop is announced to the client."""
        with self._lock:
            if self._armed.is_set():
                raise TraceError(f"{self.ue} is already parked")
            self._event.clear()
            self._command = None
            self._armed.set()

    def await_release(self, timeout: Optional[float] = None) -> ResumeCommand:
        """Block the calling UE until the client releases it.

        *timeout* is defence in depth: a vanished client must not wedge
        the debuggee forever, so on timeout the UE resumes with a plain
        continue.
        """
        if not self._armed.is_set():
            raise TraceError(f"{self.ue} parked without arming the gate")
        try:
            released = self._event.wait(timeout)
        finally:
            self._armed.clear()
        if not released:
            return ResumeCommand(action="continue")
        with self._lock:
            command = self._command or ResumeCommand()
            self._command = None
            return command

    def park(self, timeout: Optional[float] = None) -> ResumeCommand:
        """arm + await_release in one step (tests, simple callers)."""
        self.arm()
        return self.await_release(timeout)

    def release(self, command: Optional[ResumeCommand] = None) -> None:
        """Release the parked UE.  Legal any time the gate is armed."""
        with self._lock:
            if not self._armed.is_set():
                raise TraceError(f"{self.ue} is not parked")
            self._command = command or ResumeCommand()
            self._event.set()

    def wait_parked(self, timeout: float = 5.0) -> bool:
        """Block until the UE arms its gate (client-side synchronisation)."""
        return self._armed.wait(timeout)


class UEController:
    """Registry of gates plus pending-suspend flags for all UEs in-process."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._gates: Dict[UEId, ResumeGate] = {}
        self._pending_suspend: set = set()
        self._suspend_all = False
        #: UEs already parked once by the current suspend-all sweep; a
        #: released UE must run free, not re-park on its next event.
        self._suspended_once: set = set()
        #: observers notified on park/release (the debug server hooks here
        #: to emit "stopped"/"resumed" events toward the client).
        self.on_parked: Optional[Callable[[UEId], None]] = None

    def gate_for(self, ue: UEId) -> ResumeGate:
        with self._lock:
            gate = self._gates.get(ue)
            if gate is None:
                gate = ResumeGate(ue)
                self._gates[ue] = gate
            return gate

    def known_ues(self) -> List[UEId]:
        with self._lock:
            return sorted(self._gates)

    def parked_ues(self) -> List[UEId]:
        with self._lock:
            return sorted(ue for ue, gate in self._gates.items()
                          if gate.is_parked)

    # -- asynchronous suspend ----------------------------------------------------

    def request_suspend(self, ue: UEId) -> None:
        """Ask a *running* UE to stop at its next trace event."""
        with self._lock:
            self._pending_suspend.add(ue)

    def request_suspend_all(self) -> None:
        """Whole-program pause (section 4's non-low-intrusive mode).

        The sticky flag catches every UE — known ones at their next
        event, and threads whose first event is yet to come — exactly
        once each (see :meth:`consume_suspend`).
        """
        with self._lock:
            self._suspend_all = True
            self._suspended_once.clear()

    def clear_suspend_all(self) -> None:
        with self._lock:
            self._suspend_all = False
            self._pending_suspend.clear()
            self._suspended_once.clear()

    @property
    def has_pending(self) -> bool:
        """Lock-free probe for the trace-callback fast path (see
        BreakpointStore.is_empty for the atomicity argument)."""
        return bool(self._pending_suspend) or self._suspend_all

    def consume_suspend(self, ue: UEId) -> bool:
        """Trace-callback hot path: should *ue* park now?

        Under suspend-all each UE parks exactly once per sweep — the
        sticky flag exists to catch UEs whose first event comes later,
        not to re-park UEs the client already released.
        """
        with self._lock:
            if ue in self._pending_suspend:
                self._pending_suspend.discard(ue)
                return True
            if self._suspend_all and ue not in self._suspended_once:
                self._suspended_once.add(ue)
                return True
            return False

    # -- release paths -------------------------------------------------------------

    def release(self, ue: UEId,
                command: Optional[ResumeCommand] = None) -> None:
        self.gate_for(ue).release(command)

    def release_all(self, command: Optional[ResumeCommand] = None) -> int:
        """Force-release every parked UE (client vanished, or detach)."""
        released = 0
        with self._lock:
            gates = list(self._gates.values())
            self._suspend_all = False
            self._pending_suspend.clear()
            self._suspended_once.clear()
        for gate in gates:
            if gate.is_parked:
                try:
                    gate.release(command or ResumeCommand(action="continue"))
                    released += 1
                except TraceError:
                    pass  # unparked concurrently: nothing to release
        return released

    def reset_after_fork(self, surviving: UEId) -> None:
        """Child fork handler: drop gates of threads that no longer exist.

        Only the forking thread survives in the child (paper section 5.1);
        its gate — if any — is rebuilt fresh because a parked parent gate
        has a waiter that is gone.
        """
        with self._lock:
            self._gates = {surviving: ResumeGate(surviving)}
            self._pending_suspend = set()
            self._suspend_all = False
            self._suspended_once = set()

"""Trace engine: breakpoints, stepping, per-UE control (paper section 4)."""

from .backends import (
    MonitoringBackend,
    SettraceBackend,
    TraceBackend,
    fastpath_enabled,
    select_backend,
)
from .breakpoints import Breakpoint, BreakpointStore, canonical_file
from .control import ResumeCommand, ResumeGate, UEController
from .engine import TraceEngine
from .linetable import LineTable
from .frames import (
    FrameInfo,
    StackCapture,
    capture_frame,
    capture_stack,
    evaluate_in_frame,
    frame_location,
    source_line,
)
from .sampling import SamplingProfiler, UEProfile
from .stepping import StepMode, StepState
from .watchpoints import WatchHit, Watchpoint, WatchpointStore

__all__ = [
    "TraceBackend", "SettraceBackend", "MonitoringBackend",
    "select_backend", "fastpath_enabled",
    "LineTable",
    "SamplingProfiler", "UEProfile",
    "WatchHit", "Watchpoint", "WatchpointStore",
    "Breakpoint", "BreakpointStore", "canonical_file",
    "ResumeCommand", "ResumeGate", "UEController",
    "TraceEngine",
    "FrameInfo", "StackCapture", "capture_frame", "capture_stack",
    "evaluate_in_frame", "frame_location", "source_line",
    "StepMode", "StepState",
]

"""Trace engine: breakpoints, stepping, per-UE control (paper section 4)."""

from .breakpoints import Breakpoint, BreakpointStore, canonical_file
from .control import ResumeCommand, ResumeGate, UEController
from .engine import TraceEngine
from .frames import (
    FrameInfo,
    StackCapture,
    capture_frame,
    capture_stack,
    evaluate_in_frame,
    frame_location,
    source_line,
)
from .sampling import SamplingProfiler, UEProfile
from .stepping import StepMode, StepState
from .watchpoints import WatchHit, Watchpoint, WatchpointStore

__all__ = [
    "SamplingProfiler", "UEProfile",
    "WatchHit", "Watchpoint", "WatchpointStore",
    "Breakpoint", "BreakpointStore", "canonical_file",
    "ResumeCommand", "ResumeGate", "UEController",
    "TraceEngine",
    "FrameInfo", "StackCapture", "capture_frame", "capture_stack",
    "evaluate_in_frame", "frame_location", "source_line",
    "StepMode", "StepState",
]

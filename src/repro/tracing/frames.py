"""Stack capture and source access for the client's views.

When a UE stops, the server ships the client everything Fig. 2 displays:
the source line (Source code view), the call stack, and rendered variables
(Variables view).  Frames themselves never cross the wire — only plain
data — so the capture here is the serialization boundary.
"""

from __future__ import annotations

import linecache
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional  # noqa: F401 - Dict in wire

from ..util.serde import render_namespace


@dataclass(frozen=True)
class FrameInfo:
    """One stack entry, fully rendered."""

    file: str
    line: int
    function: str
    source: str
    locals: Dict[str, str] = field(default_factory=dict)

    def to_wire(self) -> dict:
        return {
            "file": self.file,
            "line": self.line,
            "function": self.function,
            "source": self.source,
            "locals": self.locals,
        }

    @classmethod
    def from_wire(cls, raw: dict) -> "FrameInfo":
        return cls(file=raw["file"], line=raw["line"],
                   function=raw["function"], source=raw["source"],
                   locals=dict(raw.get("locals", {})))


@dataclass(frozen=True)
class StackCapture:
    """A stopped UE's full state: stack (innermost first) + stop reason.

    ``watch`` carries the change record when the stop reason is a
    watchpoint hit (expression, old value, new value).
    """

    frames: List[FrameInfo]
    reason: str
    breakpoint_id: Optional[int] = None
    watch: Optional[Dict[str, Any]] = None

    @property
    def top(self) -> Optional[FrameInfo]:
        return self.frames[0] if self.frames else None

    def to_wire(self) -> dict:
        return {
            "frames": [f.to_wire() for f in self.frames],
            "reason": self.reason,
            "breakpoint_id": self.breakpoint_id,
            "watch": self.watch,
        }

    @classmethod
    def from_wire(cls, raw: dict) -> "StackCapture":
        return cls(
            frames=[FrameInfo.from_wire(f) for f in raw.get("frames", [])],
            reason=raw.get("reason", "unknown"),
            breakpoint_id=raw.get("breakpoint_id"),
            watch=raw.get("watch"),
        )


def source_line(file: str, line: int) -> str:
    """The text of *file*:*line*, or '' if unavailable.

    ``linecache.checkcache`` is deliberately not called on the hot path —
    the engine invalidates the cache once per attach, and source files do
    not change mid-run.
    """
    return linecache.getline(file, line).rstrip("\n")


def capture_frame(frame, with_locals: bool = True) -> FrameInfo:
    """Render one live frame into plain data."""
    file = frame.f_code.co_filename
    line = frame.f_lineno
    return FrameInfo(
        file=file,
        line=line,
        function=frame.f_code.co_name,
        source=source_line(file, line),
        locals=render_namespace(frame.f_locals) if with_locals else {},
    )


def capture_stack(frame, reason: str, breakpoint_id: Optional[int] = None,
                  watch: Optional[Dict[str, Any]] = None,
                  max_depth: int = 64,
                  locals_depth: int = 2) -> StackCapture:
    """Walk outward from *frame*, rendering up to *max_depth* frames.

    Locals are rendered only for the innermost *locals_depth* frames:
    deep stacks are common under MapReduce workers and rendering every
    namespace would violate the low-intrusion goal.
    """
    frames: List[FrameInfo] = []
    current = frame
    depth = 0
    while current is not None and depth < max_depth:
        frames.append(capture_frame(current, with_locals=depth < locals_depth))
        current = current.f_back
        depth += 1
    return StackCapture(frames=frames, reason=reason,
                        breakpoint_id=breakpoint_id, watch=watch)


def frame_location(frame) -> str:
    """Compact 'file:line (function)' label for logs and deadlock reports."""
    return (f"{frame.f_code.co_filename}:{frame.f_lineno} "
            f"({frame.f_code.co_name})")


def evaluate_in_frame(frame, expression: str) -> Any:
    """Evaluate *expression* in the frame's namespaces (shell ``p`` cmd)."""
    return eval(expression, frame.f_globals, frame.f_locals)  # noqa: S307

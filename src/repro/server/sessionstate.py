"""Debuggee-side session state — the metadata block of paper Fig. 4.

Figure 4 shows the debuggee's *data structures* block: debug session,
breakpoint information, PID, and so on.  A forked child inherits this
block verbatim and must rewrite it (section 5.3, problem 2: *"These data
structures don't contain child information but parent information,
therefore they should be updated with child's information"*).

:meth:`SessionState.rewrite_for_child` is that rewrite, called from the
child fork handler.  The before/after of Fig. 4 is directly testable:
after a fork, the child state differs from the parent exactly in pid,
parent pid, session token, main-thread id and socket bookkeeping, while
breakpoints (shared debugging intent) survive.
"""

from __future__ import annotations

import os
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Dict, List, Optional


def new_session_token() -> str:
    """Unguessable per-process token; doubles as the session identity the
    client uses to tell a parent's channel from its child's."""
    return uuid.uuid4().hex


@dataclass
class SessionState:
    """One debuggee process's identity and bookkeeping."""

    pid: int = field(default_factory=os.getpid)
    parent_pid: int = field(default_factory=os.getppid)
    session_token: str = field(default_factory=new_session_token)
    program: Optional[str] = None
    main_thread_ident: int = field(
        default_factory=lambda: threading.main_thread().ident or 0)
    created_at: float = field(default_factory=time.monotonic)
    #: pids of children this process forked (paper Listing 4 appends to
    #: ``_processes``); purely informational for the client's tree view.
    children: List[int] = field(default_factory=list)
    #: generation 0 = the original debuggee, +1 per fork hop.
    fork_generation: int = 0
    #: bumped whenever the session identity changes (currently: fork).
    #: ``session_token`` + ``epoch`` together define the token epoch a
    #: reattaching client must match; a client holding a pre-fork token
    #: is *stale* and is refused.
    epoch: int = 0

    def record_child(self, pid: int) -> None:
        if pid not in self.children:
            self.children.append(pid)

    def rewrite_for_child(self) -> None:
        """Apply the child's identity in place (fork handler C).

        The forking thread is the child's new main thread (section 5.3:
        "register the thread that called fork as the main thread").
        """
        old_pid = self.pid
        self.pid = os.getpid()
        self.parent_pid = old_pid
        self.session_token = new_session_token()
        self.main_thread_ident = threading.get_ident()
        self.created_at = time.monotonic()
        self.children = []
        self.fork_generation += 1
        self.epoch += 1

    def describe(self) -> Dict[str, object]:
        """Wire-ready summary for the client's Processes-and-threads view."""
        return {
            "pid": self.pid,
            "parent_pid": self.parent_pid,
            "session_token": self.session_token,
            "program": self.program,
            "main_thread": self.main_thread_ident,
            "children": list(self.children),
            "fork_generation": self.fork_generation,
            "epoch": self.epoch,
        }

"""Debuggee stdout/stderr capture — Fig. 2's Output window.

The Dionea GUI shows an *"Output window: this area corresponds to the
standard output of the active UE"* and an Input window feeding its
stdin.  Server-side that means the debug server must observe the
debuggee's writes and forward them to the client as events, without
breaking programs that legitimately print.

:class:`OutputCapture` wraps ``sys.stdout``/``sys.stderr`` with a tee:
every write still reaches the real stream (the debuggee's behaviour is
preserved — Heisenberg, section 3) and is additionally buffered and
announced to the client as an ``output`` event.  Forked children keep
the wrapper objects but their fork handler re-arms the announcement
callback at the new server, so each process's output lands in its own
session.

Input (the client writing to the debuggee's stdin) is implemented as a
pipe swap: :meth:`InputFeed.install` replaces ``sys.stdin`` with the
read end of a pipe the server writes into on ``feed_input`` commands.
"""

from __future__ import annotations

import io
import os
import sys
import threading
from typing import Callable, List, Optional, Tuple


class _TeeStream(io.TextIOBase):
    """A write-through wrapper over a real text stream."""

    def __init__(self, stream, label: str, capture: "OutputCapture"):
        self._stream = stream
        self._label = label
        self._capture = capture

    # -- the parts of the file protocol debuggees actually use ------------

    def write(self, text: str) -> int:
        count = self._stream.write(text)
        self._capture._record(self._label, text)  # noqa: SLF001
        return count

    def writelines(self, lines) -> None:
        for line in lines:
            self.write(line)

    def flush(self) -> None:
        self._stream.flush()

    def fileno(self) -> int:
        return self._stream.fileno()

    def isatty(self) -> bool:
        try:
            return self._stream.isatty()
        except (AttributeError, ValueError):
            return False

    @property
    def encoding(self):  # type: ignore[override]
        return getattr(self._stream, "encoding", "utf-8")

    @property
    def raw(self):
        """The wrapped stream (uninstall and tests)."""
        return self._stream


class OutputCapture:
    """Tee stdout/stderr into a bounded buffer + an event callback."""

    def __init__(self, max_chunks: int = 2000,
                 on_output: Optional[Callable[[str, str], None]] = None):
        self.max_chunks = max_chunks
        self.on_output = on_output
        self._chunks: List[Tuple[str, str]] = []
        self._lock = threading.Lock()
        self._installed = False
        self._saved_stdout = None
        self._saved_stderr = None

    # -- lifecycle --------------------------------------------------------

    @property
    def installed(self) -> bool:
        return self._installed

    def install(self) -> None:
        if self._installed:
            return
        self._saved_stdout = sys.stdout
        self._saved_stderr = sys.stderr
        sys.stdout = _TeeStream(self._saved_stdout, "stdout", self)
        sys.stderr = _TeeStream(self._saved_stderr, "stderr", self)
        self._installed = True

    def uninstall(self) -> None:
        if not self._installed:
            return
        # Only restore if nobody re-wrapped over us in the meantime.
        if isinstance(sys.stdout, _TeeStream):
            sys.stdout = self._saved_stdout
        if isinstance(sys.stderr, _TeeStream):
            sys.stderr = self._saved_stderr
        self._installed = False

    def reinstall(self) -> None:
        """Re-wrap whatever ``sys.stdout``/``sys.stderr`` are *now*.

        Test harnesses (pytest's capture) and logging setups swap the
        standard streams underneath long-lived processes; reinstalling
        puts the tee back on top of the current streams without losing
        the buffered output.
        """
        if self._installed:
            self._installed = False  # forget the stale wrap
        self.install()

    def __enter__(self) -> "OutputCapture":
        self.install()
        return self

    def __exit__(self, *exc_info) -> None:
        self.uninstall()

    # -- data path ----------------------------------------------------------

    def _record(self, label: str, text: str) -> None:
        if not text:
            return
        with self._lock:
            self._chunks.append((label, text))
            if len(self._chunks) > self.max_chunks:
                del self._chunks[:len(self._chunks) - self.max_chunks]
        callback = self.on_output
        if callback is not None:
            try:
                callback(label, text)
            except Exception:  # noqa: BLE001 - event glue must not break IO
                pass

    def snapshot(self, stream: Optional[str] = None) -> str:
        """Buffered output, optionally filtered to 'stdout'/'stderr'."""
        with self._lock:
            return "".join(text for label, text in self._chunks
                           if stream is None or label == stream)

    def clear(self) -> None:
        with self._lock:
            self._chunks.clear()

    def reset_after_fork(self) -> None:
        """Child fork handler: inherited buffer belongs to the parent."""
        self.clear()


class InputFeed:
    """Client-driven stdin — Fig. 2's Input window.

    ``install`` swaps ``sys.stdin`` for the read end of a private pipe;
    :meth:`feed` (driven by the ``feed_input`` debug command) writes
    into it.  ``close_input`` delivers EOF (like ^D).
    """

    def __init__(self) -> None:
        self._installed = False
        self._saved_stdin = None
        self._write_fd: Optional[int] = None
        self._reader = None
        self._lock = threading.Lock()

    @property
    def installed(self) -> bool:
        return self._installed

    def install(self) -> None:
        if self._installed:
            return
        read_fd, self._write_fd = os.pipe()
        self._saved_stdin = sys.stdin
        self._reader = os.fdopen(read_fd, "r", encoding="utf-8")
        sys.stdin = self._reader
        self._installed = True

    def uninstall(self) -> None:
        if not self._installed:
            return
        sys.stdin = self._saved_stdin
        with self._lock:
            if self._write_fd is not None:
                try:
                    os.close(self._write_fd)
                except OSError:
                    pass
                self._write_fd = None
        try:
            self._reader.close()
        except OSError:
            pass
        self._installed = False

    def feed(self, text: str) -> int:
        """Write *text* into the debuggee's stdin; returns bytes fed."""
        with self._lock:
            if self._write_fd is None:
                raise ValueError("input feed not installed")
            data = text.encode("utf-8")
            os.write(self._write_fd, data)
            return len(data)

    def close_input(self) -> None:
        """EOF for the debuggee (terminates input() loops cleanly)."""
        with self._lock:
            if self._write_fd is not None:
                try:
                    os.close(self._write_fd)
                except OSError:
                    pass
                self._write_fd = None

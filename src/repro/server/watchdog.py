"""Server watchdog: detect a wedged listener and heal or detach.

The listener thread is the debug server's single point of failure: the
paper's §4 non-blocking rule keeps it responsive, but a misbehaving
command handler (or injected fault) can still wedge the reactor — and a
wedged reactor is worse than a dead one, because the thread stays
"alive" while every client request and heartbeat black-holes.  The
debuggee meanwhile must not care: do-no-harm says a broken debugger may
never cost the host process anything but its debugability.

The watchdog polls two signals:

* **thread death** — the listener thread exited (an escaped exception,
  a selector wreck).  Healable: build a fresh listener on a fresh port
  and re-announce; the client's watcher sees the same pid on a new port
  and redials.
* **tick staleness** — the thread is alive but its loop stamp
  (:attr:`~repro.server.listener.Listener.last_tick`) has not moved for
  ``DIONEA_WATCHDOG_STALL`` seconds.  A wedged thread cannot be killed
  in Python, so the stuck listener is *abandoned*: its sockets are
  closed out from under it (which also unwedges anything blocked on
  them) and a replacement listener takes over.  If even that fails, the
  server detaches and the debuggee runs on undebugged.

Enabled by default inside :meth:`DebugServer.start`; ``DIONEA_WATCHDOG=0``
turns it off, ``DIONEA_WATCHDOG_STALL`` tunes the stall budget (default
10s — far above any legitimate reactor pause, including the test
suite's injected delays).
"""

from __future__ import annotations

import os
import threading
import time
from typing import TYPE_CHECKING, Optional

from ..obs import metrics as obs_metrics
from ..util.ringlog import debug_event

if TYPE_CHECKING:  # pragma: no cover
    from .debugserver import DebugServer

#: env gate: "0" disables the watchdog entirely
ENABLE_ENV = "DIONEA_WATCHDOG"
#: env knob: seconds of tick silence before the listener counts as wedged
STALL_ENV = "DIONEA_WATCHDOG_STALL"

_DEFAULT_STALL = 10.0


def watchdog_enabled() -> bool:
    return os.environ.get(ENABLE_ENV, "1") not in ("0", "false", "no")


def stall_budget() -> float:
    raw = os.environ.get(STALL_ENV)
    if not raw:
        return _DEFAULT_STALL
    try:
        value = float(raw)
    except ValueError:
        return _DEFAULT_STALL
    return value if value > 0 else _DEFAULT_STALL


class ServerWatchdog:
    """Background monitor for one :class:`DebugServer`'s listener."""

    def __init__(self, server: "DebugServer",
                 interval: float = 1.0,
                 stall: Optional[float] = None):
        self.server = server
        self.interval = interval
        self.stall = stall if stall is not None else stall_budget()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        #: healing attempts are bounded: a listener that needs a third
        #: heal inside one server lifetime is not sick, it is cursed —
        #: detach rather than flap forever.
        self.max_heals = 2
        self._heals = 0

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        if self.running:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="dionea-watchdog", daemon=True)
        self._thread.start()

    def stop(self, timeout: float = 2.0) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout)
        self._thread = None

    def reset_after_fork(self) -> None:
        """The watchdog thread did not survive the fork; forget it."""
        self._stop = threading.Event()
        self._thread = None
        self._heals = 0

    # -- the monitor loop ---------------------------------------------------

    def _run(self) -> None:
        from ..util.ids import untrace_current_thread
        untrace_current_thread()  # infra thread: never a debuggee UE
        while not self._stop.wait(self.interval):
            try:
                self._check()
            except Exception:  # noqa: BLE001 - monitor must not crash
                debug_event("watchdog", "watchdog check failed; continuing")

    def _check(self) -> None:
        server = self.server
        if not server.started:
            return
        listener = server._listener
        if listener is None:
            return
        if not listener.running:
            self._respond("listener thread died")
            return
        silence = time.monotonic() - listener.last_tick
        if silence > self.stall:
            obs_metrics.inc("server.watchdog_stalls")
            self._respond(f"listener wedged for {silence:.1f}s")

    def _respond(self, why: str) -> None:
        server = self.server
        if self._heals < self.max_heals:
            self._heals += 1
            debug_event("watchdog", f"{why}; healing listener "
                                    f"(attempt {self._heals})")
            try:
                server.heal_listener(why)
                obs_metrics.inc("server.watchdog_heals")
                return
            except Exception:  # noqa: BLE001 - fall through to detach
                debug_event("watchdog", "heal failed; detaching")
        else:
            debug_event("watchdog", f"{why}; heal budget exhausted, "
                                    f"detaching")
        server.detach(f"watchdog: {why}")

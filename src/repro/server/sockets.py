"""Socket endpoints: the server's three-socket layout (paper section 4).

Dionea uses *"three TCP/IP sockets for communication between the server
and the client: one socket ... to listen and handle new connections, one
... to synchronize the source code ..., and ... another ... for sending
debug commands."*

Mapped here:

* :class:`ListenEndpoint` — the accept socket (bound to an ephemeral port
  so forked children can always grab a fresh one);
* :class:`Connection` — one accepted socket, typed by the role named in
  its hello frame (``command`` or ``source``).

Connections are read by the Reactor listener thread only, but *written*
from arbitrary threads — a trace callback emits ``stopped`` events from
whichever debuggee thread hit the breakpoint — so every connection
serialises writes behind its own lock.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Any, Optional

from ..obs import metrics as obs_metrics
from ..testkit import faults
from ..util.errors import ProtocolError
from ..util.framing import FrameDecoder, encode_frame
from ..util.ringlog import debug_event
from . import protocol


class Connection:
    """One accepted client connection plus its framing state."""

    def __init__(self, sock: socket.socket, address):
        self.sock = sock
        self.address = address
        self.decoder = FrameDecoder()
        self.role: Optional[str] = None  # set once the hello arrives
        self._send_lock = threading.Lock()
        self._closed = False

    def fileno(self) -> int:
        return self.sock.fileno()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def awaiting_hello(self) -> bool:
        return self.role is None

    def adopt_role(self, hello: dict) -> None:
        protocol.validate_hello(hello)
        self.role = hello["role"]

    def send(self, message: Any) -> bool:
        """Framed, locked send.  Returns False if the peer is gone —
        losing a client must never raise into a trace callback."""
        frame = encode_frame(message)
        with self._send_lock:
            if self._closed:
                return False
            try:
                # Injection point server.conn.send: a raised OSError here
                # is "the peer vanished mid-send" — the connection must be
                # marked dead, never propagate into a trace callback.
                faults.maybe_fault("server.conn.send")
                self.sock.sendall(frame)
                obs_metrics.inc("proto.tx_frames")
                obs_metrics.inc("proto.tx_bytes", len(frame))
                return True
            except OSError:
                self._closed = True
                debug_event("sockets", f"send to {self.address} failed; "
                                       f"marking connection dead")
                return False

    def close(self, shutdown: bool = True) -> None:
        """Close this connection.

        ``shutdown=True`` (the owner's close) tears the TCP stream down
        for both peers.  ``shutdown=False`` only drops THIS process's
        descriptor — the mode a forked child must use on *inherited*
        connections (paper Fig. 5): ``shutdown(2)`` acts on the shared
        socket, so a child shutting down its copies would sever the
        parent's live client session.

        The inherited-close mode must also never touch the inherited
        ``_send_lock``: the parent's listener thread may have been
        mid-:meth:`send` (lock held) at the fork moment, and no thread
        in the single-threaded child will ever release its copy.  The
        flag flip is safe without the lock — there is no one to race.
        """
        if shutdown:
            with self._send_lock:
                if self._closed:
                    return
                self._closed = True
            try:
                self.sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        else:
            if self._closed:
                return
            self._closed = True
            self._send_lock = threading.Lock()
        try:
            self.sock.close()
        except OSError:
            pass


class ListenEndpoint:
    """The accept socket.  Port 0 (default) picks an ephemeral port."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0):
        self.host = host
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        # Close-on-exec, explicitly: an exec'd debuggee must carry zero
        # debugger descriptors into its new image (see accept()).
        self.sock.set_inheritable(False)
        self.sock.bind((host, port))
        self.sock.listen(16)
        self.port = self.sock.getsockname()[1]
        self._closed = False

    def fileno(self) -> int:
        return self.sock.fileno()

    def accept(self) -> Connection:
        faults.maybe_fault("server.listener.accept")
        sock, address = self.sock.accept()
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        # Exec survival: PEP 446 makes Python sockets non-inheritable by
        # default, but the do-no-harm invariant (a debuggee that execs
        # must not leak debugger fds into its successor image) is too
        # important to rest on a default someone can flip — pin it.
        sock.set_inheritable(False)
        return Connection(sock, address)

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self.sock.close()
        except OSError:
            pass


def connect_endpoint(host: str, port: int, role: str, pid: int,
                     session_token: str, timeout: float = 5.0,
                     program: Optional[str] = None,
                     refused_grace: float = 0.1,
                     resume_token: Optional[str] = None) -> socket.socket:
    """Client side: dial the server and send the role hello.

    Returns the connected socket; the caller reads the hello_ack.

    A refused connect is retried with exponential backoff, but only for
    *refused_grace* seconds: a freshly forked child announces its port
    the instant the socket is bound, so the client routinely races the
    child's listener thread — a refusal inside that tiny window is a
    retry, not a failure.  Past the grace window the port is genuinely
    dead and the refusal propagates promptly (a watcher chewing through
    stale port records must not stall on each one).  Injected EINTR
    (point ``net.connect``) is retried until *timeout*.
    """
    if role not in protocol.VALID_ROLES:
        raise ProtocolError(f"invalid role {role!r}")
    start = time.monotonic()
    deadline = start + timeout
    grace_end = start + min(refused_grace, timeout)
    delay = 0.01
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise ConnectionRefusedError(
                f"could not connect to {host}:{port} within {timeout:.1f}s")
        try:
            faults.maybe_fault("net.connect")
            sock = socket.create_connection((host, port),
                                            timeout=remaining)
            break
        except InterruptedError:
            continue
        except (ConnectionRefusedError, ConnectionResetError):
            if time.monotonic() + delay >= grace_end:
                raise
            time.sleep(delay)
            delay = min(delay * 2, 0.05)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    hello = protocol.make_hello(role=role, pid=pid,
                                session_token=session_token,
                                program=program,
                                resume_token=resume_token)
    faults.maybe_fault("net.hello.send")
    sock.sendall(encode_frame(hello))
    return sock

"""The debug server: the shim that lives inside every debuggee process.

Paper section 4: *"In Dionea, each debuggee has its own debug server, the
debug server is a shim to control the execution of the debuggee based on
the commands sent by the client.  Both, debuggee and debug server run in
the same process."*

Composition:

* a :class:`~repro.tracing.engine.TraceEngine` hooked into the
  interpreter's tracing facility;
* a :class:`~repro.server.listener.Listener` (the dedicated Reactor
  thread) on an ephemeral TCP port;
* a :class:`~repro.server.sessionstate.SessionState` (the Fig. 4
  metadata block);
* optional rendezvous through a :class:`~repro.util.portfile.PortFile`
  so the client finds this server — the original process announces
  itself the same way forked children do.

The 1 server : 1 client invariant of section 4.1 is enforced at hello
time: a second ``command``-role connection is refused, because *"two
different clients could control the same debuggee at the same time,
making it inconsistent"*.
"""

from __future__ import annotations

import os
import threading
import time
import traceback
from typing import Any, Callable, Dict, Optional

from time import perf_counter as _perf_counter

from ..obs import causality
from ..obs import metrics as obs_metrics
from ..obs.blackbox import BLACKBOX, REASON_WATCHDOG_HEAL
from ..obs.spans import SPANS
from ..testkit import faults
from ..tracing.breakpoints import BreakpointStore
from ..tracing.control import UEController
from ..tracing.engine import TraceEngine
from ..tracing.frames import StackCapture
from ..util.errors import CommandError, ProtocolError, ReproError
from ..util.ids import UEId
from ..util.portfile import PortFile, PortRecord
from ..util.ringlog import debug_event
from . import protocol
from .commands import dispatch
from .listener import Listener
from .sessionstate import SessionState
from .sockets import Connection, ListenEndpoint


class DebugServer:
    """One process's debug server.  Construct, then :meth:`start`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 portfile: Optional[PortFile] = None,
                 program: Optional[str] = None,
                 park_timeout: Optional[float] = 60.0,
                 disturb: Optional[object] = None,
                 disturb_setter: Optional[Callable[[bool], None]] = None,
                 deadlock_reporter: Optional[Callable[[], dict]] = None,
                 capture_io: bool = False,
                 client_loss_grace: float = 3.0):
        self.session = SessionState(program=program)
        self.portfile = portfile
        #: Client-loss policy: on command-channel loss, parked UEs are
        #: held for this many seconds awaiting a reattach before the
        #: server falls back to ``release_all`` (<= 0: release at once).
        self.client_loss_grace = client_loss_grace
        self._grace_timer: Optional[threading.Timer] = None
        self._grace_lock = threading.Lock()
        self._host = host
        self._requested_port = port
        self.engine = TraceEngine(
            breakpoints=BreakpointStore(),
            controller=UEController(),
            on_stop=self._on_ue_stop,
            on_resume=self._on_ue_resume,
            disturb=disturb,
            park_timeout=park_timeout,
        )
        self._deadlock_reporter = deadlock_reporter
        self._disturb_setter = disturb_setter
        # Fig. 2's Output/Input windows: a stdout/stderr tee plus a
        # client-fed stdin, both optional (CLI `dionea run` enables them).
        from .iocapture import InputFeed, OutputCapture
        self._capture_io = capture_io
        self.output_capture = OutputCapture(on_output=self._on_output)
        self.input_feed = InputFeed()
        self._endpoint: Optional[ListenEndpoint] = None
        self._listener: Optional[Listener] = None
        #: lazily created by the profile_start command
        self.profiler = None
        self._last_stops: Dict[UEId, dict] = {}
        self._stops_lock = threading.Lock()
        self._started = False
        #: wedge monitor; created in start() unless DIONEA_WATCHDOG=0
        self.watchdog = None
        #: called (with the reason) after a degraded-mode detach so the
        #: facade can take down the rest of the debugger (fork patcher,
        #: handler registrations) — the server only owns its own half.
        self.on_detach: Optional[Callable[[str], None]] = None
        self._detached = False
        self._detach_lock = threading.Lock()

    # -- lifecycle --------------------------------------------------------------

    @property
    def started(self) -> bool:
        return self._started

    @property
    def port(self) -> int:
        if self._endpoint is None:
            raise ReproError("server not started")
        return self._endpoint.port

    def start(self, install_tracing: bool = True,
              announce: bool = True) -> None:
        if self._started:
            raise ReproError("debug server already started")
        self._endpoint = ListenEndpoint(self._host, self._requested_port)
        self._listener = Listener(
            self._endpoint,
            on_request=self._handle_request,
            on_hello=self._handle_hello,
            on_disconnect=self._handle_disconnect,
        )
        self._listener.start()
        if install_tracing and not self.engine.installed:
            self.engine.install()
        if self._capture_io and not self.output_capture.installed:
            self.output_capture.install()
        self._started = True
        from .watchdog import ServerWatchdog, watchdog_enabled
        if watchdog_enabled():
            self.watchdog = ServerWatchdog(self)
            self.watchdog.start()
        if announce and self.portfile is not None:
            self.announce()
        debug_event("server", f"debug server up on port {self.port}")

    def announce(self) -> None:
        """Write this server's coordinates into the rendezvous file."""
        if self.portfile is None:
            raise ReproError("no portfile configured")
        self.portfile.announce(PortRecord(
            pid=self.session.pid,
            parent_pid=self.session.parent_pid,
            host=self._host,
            port=self.port,
            created_at=time.time(),
        ))

    def close(self) -> None:
        self._shutdown(protocol.make_event(protocol.EV_SERVER_EXIT,
                                           {"pid": self.session.pid}))
        debug_event("server", "debug server closed")

    def detach(self, reason: str) -> None:
        """Degraded mode: remove the debugger, leave the debuggee running.

        The do-no-harm escape hatch: uninstall the trace hooks, free
        every parked UE, drop the sockets, tombstone the portfile so no
        client ever redials this pid, and tell the attached client with
        an ``EV_DETACHED`` farewell (NOT ``server_exit`` — the process
        lives on).  Idempotent; safe from any thread, including the
        watchdog's.
        """
        with self._detach_lock:
            if self._detached or not self._started:
                return
            self._detached = True
        obs_metrics.inc("server.detaches")
        debug_event("server", f"detaching from debuggee: {reason}")
        # Terminal black-box flush FIRST: "why did the debugger let go"
        # must hit disk before any teardown step can wedge or die.
        BLACKBOX.force_flush(f"detach:{reason}", terminal=True)
        # Tombstone BEFORE the sockets go: the instant the listener
        # dies, a watching client starts redialing unless told not to.
        if self.portfile is not None:
            try:
                self.portfile.tombstone(self.session.pid, host=self._host,
                                        reason=reason)
            except (OSError, ReproError):
                debug_event("server", "portfile tombstone failed")
        self._shutdown(protocol.make_event(
            protocol.EV_DETACHED,
            {"pid": self.session.pid, "reason": reason}))
        callback = self.on_detach
        if callback is not None:
            try:
                callback(reason)
            except Exception:  # noqa: BLE001 - facade cleanup best-effort
                debug_event("server", "on_detach callback failed")

    @property
    def detached(self) -> bool:
        return self._detached

    def _shutdown(self, farewell: Optional[dict]) -> None:
        """Common teardown for close() and detach(): release everything."""
        if not self._started:
            return
        self._started = False
        self._cancel_grace_timer()
        if self.watchdog is not None:
            self.watchdog.stop()
        if self.profiler is not None and self.profiler.running:
            self.profiler.stop()
        if self.output_capture.installed:
            self.output_capture.uninstall()
        if self.input_feed.installed:
            self.input_feed.uninstall()
        if self.engine.installed:
            self.engine.uninstall()  # also releases every parked UE
        if self._listener is not None:
            try:
                # Best-effort farewell: a peer that died first must not
                # turn an orderly shutdown into a crash.
                if farewell is not None:
                    self._listener.broadcast_event(farewell)
            except Exception:  # noqa: BLE001
                # Contained, but never silently: the satellite rule —
                # count it and keep the traceback diagnosable.
                obs_metrics.inc("server.loop_errors")
                debug_event("server",
                            "farewell broadcast failed; closing anyway\n"
                            + traceback.format_exc())
            self._listener.close()
            self._listener = None
        self._endpoint = None

    def heal_listener(self, why: str) -> None:
        """Abandon a dead/wedged listener and start a replacement.

        Python cannot kill a wedged thread, so the old listener is cut
        loose: its sockets are closed out from under it (unwedging
        anything blocked on them — the loop then exits on the dead
        selector) and a fresh listener takes over on a fresh port.  The
        re-announce puts the same pid on a new port in the rendezvous
        file; the client's watcher treats that as a redial.
        """
        old = self._listener
        if old is not None:
            # Don't linger on the join: a wedged thread will not oblige.
            old.stop(timeout=0.2)
            for conn in old.connections():
                conn.close()
            old.endpoint.close()
        self._endpoint = ListenEndpoint(self._host, 0)
        self._listener = Listener(
            self._endpoint,
            on_request=self._handle_request,
            on_hello=self._handle_hello,
            on_disconnect=self._handle_disconnect,
        )
        self._listener.start()
        if self.portfile is not None:
            self.announce()
        debug_event("server", f"listener healed ({why}): "
                              f"now on port {self.port}")
        # Durable way-point: a heal means the debugger nearly died here.
        BLACKBOX.force_flush(f"{REASON_WATCHDOG_HEAL}:{why}")

    def __enter__(self) -> "DebugServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- connection policy ----------------------------------------------------------

    def _handle_hello(self, conn: Connection, hello: dict) -> None:
        resumed = False
        if (conn.role == protocol.ROLE_COMMAND
                and self._listener is not None):
            existing = [c for c in self._listener.connections(
                protocol.ROLE_COMMAND) if c is not conn]
            if existing:
                # 1 server : 1 client (paper section 4.1).
                conn.send(protocol.make_error(
                    -1, "another client already controls this debuggee",
                    kind="SessionError"))
                conn.close()
                raise ProtocolError("second command client refused")
            resume_token = hello.get("resume_token")
            if resume_token is not None:
                if resume_token != self.session.session_token:
                    # Token-epoch mismatch: the reattacher holds a token
                    # from a previous incarnation (a pre-fork parent, a
                    # different process on a recycled port).  A stale
                    # client driving this debuggee would corrupt both
                    # sessions, so it is refused like a second client.
                    conn.send(protocol.make_error(
                        -1, "stale session token: this debuggee is "
                            f"epoch {self.session.epoch}",
                        kind="SessionError"))
                    conn.close()
                    raise ProtocolError("stale reattach token refused")
                resumed = True
            # A command client (fresh or resuming) is back: whatever loss
            # grace was pending is void.
            self._cancel_grace_timer()
        conn.send(protocol.make_hello_ack(
            pid=self.session.pid,
            parent_pid=self.session.parent_pid,
            program=self.session.program,
            main_thread=self.session.main_thread_ident,
            session_token=self.session.session_token,
            resumed=resumed,
        ))
        if conn.role == protocol.ROLE_COMMAND:
            # Replay stops that happened before the client connected — a
            # forked child may hit an inherited breakpoint in the window
            # between its announce and the client's dial (Fig. 6), and a
            # reattaching client resyncs its views from the same replay.
            with self._stops_lock:
                replay = list(self._last_stops.items())
            for ue, wire in replay:
                conn.send(protocol.make_event(
                    protocol.EV_STOPPED,
                    {"ue": protocol.ue_to_wire(ue), "capture": wire,
                     "session_token": self.session.session_token}))

    def _handle_disconnect(self, conn: Connection) -> None:
        if conn.role != protocol.ROLE_COMMAND:
            return
        if self._listener is not None and self._listener.connections(
                protocol.ROLE_COMMAND):
            # A refused second client (or any stray command conn) died
            # while the real client is still attached: not a loss.
            return
        if self.client_loss_grace <= 0:
            self._release_for_lost_client("client vanished")
            return
        # Hold parked UEs for the grace window: a restarting client may
        # reattach (resume token) and reclaim them with state intact.
        with self._grace_lock:
            if self._grace_timer is not None:
                return
            timer = threading.Timer(self.client_loss_grace,
                                    self._on_grace_expired)
            timer.daemon = True
            self._grace_timer = timer
            timer.start()
        debug_event("server",
                    f"client lost; holding parked UEs for "
                    f"{self.client_loss_grace:.1f}s grace")

    def _on_grace_expired(self) -> None:
        with self._grace_lock:
            self._grace_timer = None
        if not self._started:
            return
        if (self._listener is not None
                and self._listener.connections(protocol.ROLE_COMMAND)):
            return  # a client reattached as the timer fired
        self._release_for_lost_client("grace window expired")

    def _release_for_lost_client(self, why: str) -> None:
        # The client is gone: nothing will ever release parked UEs, so
        # set them free (debugging ends, the program survives).
        released = self.engine.controller.release_all()
        if released:
            debug_event("server", f"{why}; released {released} UEs")

    def _cancel_grace_timer(self) -> None:
        with self._grace_lock:
            timer, self._grace_timer = self._grace_timer, None
        if timer is not None:
            timer.cancel()

    @property
    def grace_pending(self) -> bool:
        """True while parked UEs are being held for a client reattach."""
        with self._grace_lock:
            return self._grace_timer is not None

    # -- request dispatch ---------------------------------------------------------------

    #: verbs that release debuggee execution: their trace context is
    #: parked as the process's *control context* so the next fork
    #: bracket — debuggee code this verb resumed — links back to it.
    _CONTROL_COMMANDS = frozenset((
        "resume", "resume_all", "feed_input", "close_input", "detach"))

    def _handle_request(self, conn: Connection, message: dict) -> None:
        request_id = message["id"]
        command_name = message["command"]
        # Server-side half of the command round trip: time from the frame
        # being decoded to the response handed to the socket.  The client
        # times the full round trip; the difference is the wire+queueing
        # cost, which is what §7's intrusion argument is about.
        obs_metrics.inc("server.commands", command=command_name)
        t0 = _perf_counter()
        # Causal link-back: the client stamped its request span on the
        # message; the command span becomes its child, with an rpc flow
        # descriptor so the exporter draws the cross-process edge.
        ctx = causality.from_wire(message.get("trace"))
        span_args: Dict[str, Any] = {}
        if ctx is not None:
            span_args["flow"] = {"kind": "rpc", "parent_span": ctx.span_id,
                                 "parent_pid": ctx.pid, "wall": ctx.wall}
        cmd_span = SPANS.begin(f"cmd:{command_name}", cat="command",
                               parent=ctx, **span_args)
        if command_name in self._CONTROL_COMMANDS:
            causality.note_control(cmd_span.context)
        with cmd_span, causality.activate(cmd_span.context):
            try:
                # Injection point server.request.dispatch: a `delay` fault
                # freezes the reactor mid-request (the client's per-request
                # deadline must fire); `kill`/`exit` faults die mid-request
                # (the client must surface session loss, not hang).
                faults.maybe_fault("server.request.dispatch")
                result = dispatch(self, command_name, message["args"])
            except CommandError as exc:
                obs_metrics.observe("server.command_seconds",
                                    _perf_counter() - t0,
                                    command=command_name)
                conn.send(protocol.make_error(request_id, str(exc)))
                return
            conn.send(protocol.make_response(request_id, result))
        obs_metrics.observe("server.command_seconds",
                            _perf_counter() - t0, command=command_name)

    # -- engine callbacks ------------------------------------------------------------------

    def _on_ue_stop(self, ue: UEId, capture: StackCapture) -> None:
        wire = capture.to_wire()
        with self._stops_lock:
            self._last_stops[ue] = wire
        if self._listener is not None:
            self._listener.broadcast_event(protocol.make_event(
                protocol.EV_STOPPED,
                {"ue": protocol.ue_to_wire(ue), "capture": wire,
                 "session_token": self.session.session_token}))

    def _on_ue_resume(self, ue: UEId) -> None:
        with self._stops_lock:
            self._last_stops.pop(ue, None)
        if self._listener is not None:
            self._listener.broadcast_event(protocol.make_event(
                protocol.EV_RESUMED,
                {"ue": protocol.ue_to_wire(ue),
                 "session_token": self.session.session_token}))

    def last_stop_for(self, ue: UEId) -> Optional[dict]:
        with self._stops_lock:
            return self._last_stops.get(ue)

    def _on_output(self, stream: str, text: str) -> None:
        """Tee callback: forward a debuggee write to the client."""
        if self._listener is not None:
            self._listener.broadcast_event(protocol.make_event(
                protocol.EV_OUTPUT,
                {"pid": self.session.pid, "stream": stream,
                 "text": text}))

    # -- optional facilities used by the command table --------------------------------------

    def set_disturb(self, enabled: bool) -> None:
        """Toggled by the `disturb` command; wired by the Dionea facade."""
        if self._disturb_setter is None:
            raise CommandError("disturb mode not configured on this server")
        self._disturb_setter(enabled)

    def deadlock_report(self) -> dict:
        if self._deadlock_reporter is None:
            return {"available": False, "cycles": []}
        return self._deadlock_reporter()

    def emit_event(self, event: str, payload: dict) -> None:
        """Used by the facade (fork announcements, deadlock alerts)."""
        if self._listener is not None:
            self._listener.broadcast_event(protocol.make_event(event, payload))

    # -- fork support -----------------------------------------------------------------------

    def reinit_after_fork(self) -> None:
        """Fork handler phase C, server part (paper section 5.4 C).

        Close the *inherited* sockets (they belong to the parent's
        session — Fig. 5), rebuild the metadata block for the child
        (Fig. 4), open a fresh endpoint, start a fresh listener thread,
        and announce the new server through the port file (Fig. 6).
        """
        # 0. Forget the parent's pending grace timer, if any: the timer
        #    thread did not survive the fork, and the child's session is
        #    a fresh epoch with no client yet.
        with self._grace_lock:
            self._grace_timer = None

        # 1. Drop inherited sockets.  Closing our descriptor copies does
        #    not disturb the parent — but shutdown(2) WOULD (it acts on
        #    the shared socket), so inherited connections are closed
        #    without shutdown.
        if self._listener is not None:
            # The listener *thread* did not survive the fork; only its
            # data structures did.  Close the connection and endpoint fds.
            for conn in list(self._listener.connections()):
                conn.close(shutdown=False)
            self._listener.endpoint.close()
            self._listener = None
        elif self._endpoint is not None:
            self._endpoint.close()
        self._endpoint = None

        # 2. Rewrite the metadata block with child identity.
        self.session.rewrite_for_child()
        with self._stops_lock:
            self._last_stops.clear()
        self.output_capture.reset_after_fork()

        # 3. Fresh endpoint + listener thread ("create a listener thread").
        self._endpoint = ListenEndpoint(self._host, 0)
        self._listener = Listener(
            self._endpoint,
            on_request=self._handle_request,
            on_hello=self._handle_hello,
            on_disconnect=self._handle_disconnect,
        )
        self._listener.start()

        # 4. Restart the wedge monitor — its thread died with the fork.
        with self._detach_lock:
            self._detached = False
        if self.watchdog is not None:
            self.watchdog.reset_after_fork()
            self.watchdog.start()

        # 5. Inform the client about the creation of a new debuggee.
        if self.portfile is not None:
            self.announce()
        debug_event("server",
                    f"child server re-established on port {self.port}")

    def record_child(self, pid: int) -> None:
        """Parent side: track forked child and tell the client (Fig. 1)."""
        self.session.record_child(pid)
        self.emit_event(protocol.EV_PROCESS_FORKED,
                        {"parent_pid": self.session.pid, "child_pid": pid})

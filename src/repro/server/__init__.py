"""Debug server: shim, listener thread, sockets, commands (paper §4)."""

from . import protocol
from .commands import dispatch, known_commands
from .debugserver import DebugServer
from .iocapture import InputFeed, OutputCapture
from .listener import Listener
from .sessionstate import SessionState, new_session_token
from .sockets import Connection, ListenEndpoint, connect_endpoint

__all__ = [
    "protocol", "dispatch", "known_commands", "DebugServer",
    "InputFeed", "OutputCapture", "Listener",
    "SessionState", "new_session_token", "Connection", "ListenEndpoint",
    "connect_endpoint",
]

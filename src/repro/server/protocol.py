"""Wire-protocol message shapes shared by debug server and client.

Paper section 4: *"Server and client interact through a predefined
protocol using TCP/IP"*.  Three kinds of messages flow over the framed
transport (:mod:`repro.util.framing`):

* **requests**  — client → server; carry a monotonically increasing id
  the response must echo, a command name and a JSON argument object;
* **responses** — server → client; ``ok`` plus ``result`` or ``error``;
* **events**    — server → client, unsolicited (stopped, resumed, thread
  started, debuggee output, deadlock report, ...).

The first frame on every new connection is a **hello** naming the
connection's role — this is how one listening socket yields the paper's
three-socket layout (one listener + one command channel + one
source-sync channel, section 4).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..util.errors import ProtocolError

PROTOCOL_VERSION = 1

ROLE_COMMAND = "command"
ROLE_SOURCE = "source"
VALID_ROLES = (ROLE_COMMAND, ROLE_SOURCE)

# Event names.
EV_STOPPED = "stopped"
EV_RESUMED = "resumed"
EV_THREAD_STARTED = "thread_started"
EV_PROCESS_FORKED = "process_forked"
EV_OUTPUT = "output"
EV_DEADLOCK = "deadlock"
EV_SERVER_EXIT = "server_exit"
#: Synthesised by the *client* when the supervision layer declares a
#: session dead (missed heartbeats, or the command channel dropping
#: without an orderly ``server_exit``).  Never sent on the wire.
EV_SESSION_LOST = "session_lost"
#: Degraded mode: the debugger detached itself from a still-running
#: debuggee (trusted fork-phase failure, wedged reactor, explicit
#: detach).  Unlike ``server_exit`` the *process lives on* — only the
#: debugging of it ended.  Payload: ``pid`` and ``reason``.
EV_DETACHED = "detached"


def make_hello(role: str, pid: int, session_token: str,
               program: Optional[str] = None,
               resume_token: Optional[str] = None) -> Dict[str, Any]:
    if role not in VALID_ROLES:
        raise ProtocolError(f"invalid role {role!r}")
    hello: Dict[str, Any] = {
        "type": "hello",
        "version": PROTOCOL_VERSION,
        "role": role,
        "pid": pid,
        "session_token": session_token,
        "program": program,
    }
    if resume_token is not None:
        # Reattach: the client claims an existing server-side session by
        # presenting the token it learned in the original hello_ack.
        hello["resume_token"] = resume_token
    return hello


def make_hello_ack(pid: int, parent_pid: int, program: Optional[str],
                   main_thread: int, session_token: Optional[str] = None,
                   resumed: bool = False) -> Dict[str, Any]:
    return {
        "type": "hello_ack",
        "version": PROTOCOL_VERSION,
        "pid": pid,
        "parent_pid": parent_pid,
        "program": program,
        "main_thread": main_thread,
        "session_token": session_token,
        "resumed": resumed,
    }


def make_ping(seq: int) -> Dict[str, Any]:
    """Client → server liveness probe on the command channel."""
    return {"type": "ping", "seq": seq}


def make_pong(seq: int, pid: int = 0) -> Dict[str, Any]:
    """Server → client heartbeat ack; echoes the ping's ``seq``."""
    return {"type": "pong", "seq": seq, "pid": pid}


def make_request(request_id: int, command: str,
                 args: Optional[Dict[str, Any]] = None,
                 trace: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    message = {
        "type": "request",
        "id": request_id,
        "command": command,
        "args": args or {},
    }
    # Optional causal context (repro.obs.causality wire dict).  Old
    # servers ignore unknown envelope fields, so stamping is always safe.
    if trace:
        message["trace"] = trace
    return message


def make_response(request_id: int, result: Any = None) -> Dict[str, Any]:
    return {"type": "response", "id": request_id, "ok": True,
            "result": result}


def make_error(request_id: int, message: str,
               kind: str = "CommandError") -> Dict[str, Any]:
    return {"type": "response", "id": request_id, "ok": False,
            "error": {"kind": kind, "message": message}}


def make_event(event: str, payload: Optional[Dict[str, Any]] = None,
               trace: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    message = {"type": "event", "event": event, "payload": payload or {}}
    if trace:
        message["trace"] = trace
    return message


def message_type(message: Any) -> str:
    """Validate the envelope and return its type."""
    if not isinstance(message, dict):
        raise ProtocolError(f"message must be an object, got "
                            f"{type(message).__name__}")
    mtype = message.get("type")
    if mtype not in ("hello", "hello_ack", "request", "response", "event",
                     "ping", "pong"):
        raise ProtocolError(f"unknown message type {mtype!r}")
    return mtype


def validate_request(message: Dict[str, Any]) -> None:
    if message_type(message) != "request":
        raise ProtocolError("expected a request")
    if not isinstance(message.get("id"), int):
        raise ProtocolError("request id must be an int")
    if not isinstance(message.get("command"), str) or not message["command"]:
        raise ProtocolError("request command must be a non-empty string")
    if not isinstance(message.get("args"), dict):
        raise ProtocolError("request args must be an object")


def validate_hello(message: Dict[str, Any]) -> None:
    if message_type(message) != "hello":
        raise ProtocolError("expected a hello")
    if message.get("version") != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: server {PROTOCOL_VERSION}, "
            f"client {message.get('version')!r}")
    if message.get("role") not in VALID_ROLES:
        raise ProtocolError(f"invalid role {message.get('role')!r}")


def ue_to_wire(ue) -> Dict[str, int]:
    return {"pid": ue.pid, "tid": ue.tid}


def ue_from_wire(raw: Dict[str, Any]):
    from ..util.ids import UEId
    try:
        return UEId(pid=int(raw["pid"]), tid=int(raw["tid"]))
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"bad ue: {raw!r}") from exc

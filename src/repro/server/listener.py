"""The dedicated listener thread — a Reactor-pattern event loop.

Paper section 4: *"each debug server has a dedicated listener thread to
receive requests and send responses from and to the client; this
dedicated thread handles the requests asynchronously, treating each
request as an event dispatched by a loop.  The implementation of this
listener thread is inspired by the Reactor pattern."*

The loop multiplexes the accept socket and every live connection with
``selectors``.  Handlers (accept, hello, request dispatch) run inline in
the loop and must not block — debug commands are designed to be
non-blocking (``continue`` releases a gate; it never waits for the UE).

The listener is restarted from scratch in forked children (fork handler
phase C: *"create a listener thread"*): threads do not survive fork, so
the child builds a brand-new :class:`Listener` on a brand-new socket.
"""

from __future__ import annotations

import selectors
import threading
import time
import traceback
from typing import Callable, Dict, List, Optional

from time import perf_counter as _perf_counter

from ..obs import metrics as obs_metrics
from ..testkit import faults
from ..util.errors import FramingError, ProtocolError
from ..util.ringlog import debug_event
from . import protocol
from .sockets import Connection, ListenEndpoint


class Listener:
    """Reactor loop over one listen endpoint and its connections."""

    def __init__(self, endpoint: ListenEndpoint,
                 on_request: Callable[[Connection, dict], None],
                 on_hello: Optional[Callable[[Connection, dict], None]] = None,
                 on_disconnect: Optional[Callable[[Connection], None]] = None):
        self.endpoint = endpoint
        self.on_request = on_request
        self.on_hello = on_hello
        self.on_disconnect = on_disconnect
        self._selector = selectors.DefaultSelector()
        self._connections: List[Connection] = []
        self._lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._started = threading.Event()
        #: monotonic stamp of the loop's last iteration — the liveness
        #: signal the server watchdog polls.  A wedged handler (blocking
        #: call smuggled into the reactor) freezes this stamp while the
        #: thread stays "alive"; a stale stamp IS the wedge detector.
        self.last_tick = time.monotonic()

    # -- lifecycle --------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        if self.running:
            raise ProtocolError("listener already running")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name=f"dionea-listener-{self.endpoint.port}",
            daemon=True)
        self._thread.start()
        self._started.wait(5.0)

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout)
        self._thread = None

    def close(self) -> None:
        self.stop()
        with self._lock:
            connections = list(self._connections)
            self._connections.clear()
        for conn in connections:
            conn.close()
        self.endpoint.close()

    # -- introspection -----------------------------------------------------------

    def connections(self, role: Optional[str] = None) -> List[Connection]:
        with self._lock:
            conns = [c for c in self._connections if not c.closed]
            if role is not None:
                conns = [c for c in conns if c.role == role]
            return conns

    def command_connection(self) -> Optional[Connection]:
        conns = self.connections(role=protocol.ROLE_COMMAND)
        return conns[0] if conns else None

    def broadcast_event(self, message: dict,
                        role: str = protocol.ROLE_COMMAND) -> int:
        """Send an event to every connection with *role*; returns count."""
        sent = 0
        for conn in self.connections(role=role):
            if conn.send(message):
                sent += 1
        return sent

    # -- the loop -------------------------------------------------------------------

    def _run(self) -> None:
        from ..util.ids import untrace_current_thread
        untrace_current_thread()  # infra thread: never a debuggee UE
        try:
            self._selector.register(self.endpoint, selectors.EVENT_READ,
                                    data="accept")
        except (OSError, ValueError):
            self._started.set()
            return
        self._started.set()
        try:
            while not self._stop.is_set():
                self.last_tick = time.monotonic()
                events = self._selector.select(timeout=0.05)
                if not events:
                    continue
                # Reactor loop lag: how long one batch of ready events
                # holds the single-threaded loop.  Every other client
                # request queues behind this — it IS the server-side
                # latency floor the §4 non-blocking rule protects.
                tick_start = _perf_counter()
                for key, _mask in events:
                    if key.data == "accept":
                        self._handle_accept()
                    else:
                        self._handle_readable(key.data)
                obs_metrics.observe("server.reactor_tick_seconds",
                                    _perf_counter() - tick_start)
        finally:
            try:
                self._selector.close()
            except OSError:
                pass

    def _handle_accept(self) -> None:
        try:
            conn = self.endpoint.accept()
        except OSError:
            return
        conn.sock.setblocking(False)
        with self._lock:
            self._connections.append(conn)
        try:
            self._selector.register(conn, selectors.EVENT_READ, data=conn)
        except (KeyError, ValueError):
            conn.close()
            return
        debug_event("listener", f"accepted connection from {conn.address}")

    def _drop(self, conn: Connection) -> None:
        try:
            self._selector.unregister(conn)
        except (KeyError, ValueError):
            pass
        with self._lock:
            if conn in self._connections:
                self._connections.remove(conn)
        conn.close()
        if self.on_disconnect is not None:
            try:
                self.on_disconnect(conn)
            except Exception:  # noqa: BLE001
                debug_event("listener", "on_disconnect handler failed")

    def _handle_readable(self, conn: Connection) -> None:
        try:
            budget = faults.io_fault("server.listener.recv", 65536)
            data = conn.sock.recv(budget)
        except BlockingIOError:
            return
        except InterruptedError:
            # EINTR is not a dead peer: the descriptor is still readable,
            # so the selector will hand the connection straight back on
            # the next loop tick.  (Must precede the OSError arm —
            # InterruptedError *is* an OSError, and dropping a live
            # client on a stray signal severs the whole debug session.)
            return
        except OSError:
            self._drop(conn)
            return
        if not data:
            self._drop(conn)
            return
        conn.decoder.feed(data)
        try:
            for message in conn.decoder.messages():
                self._handle_message(conn, message)
        except (FramingError, ProtocolError) as exc:
            debug_event("listener",
                        f"protocol error from {conn.address}: {exc}")
            self._drop(conn)

    def _handle_message(self, conn: Connection, message: dict) -> None:
        if conn.awaiting_hello:
            conn.adopt_role(message)  # raises ProtocolError on bad hello
            if self.on_hello is not None:
                self.on_hello(conn, message)
            return
        if message.get("type") == "ping":
            self._handle_ping(conn, message)
            return
        protocol.validate_request(message)
        try:
            self.on_request(conn, message)
        except Exception as exc:  # noqa: BLE001 - reactor must survive
            # Containment is right (the reactor must survive), silence
            # is not: count it and keep the traceback diagnosable.
            obs_metrics.inc("server.loop_errors")
            debug_event("listener",
                        f"request handler raised {exc!r}\n"
                        + traceback.format_exc())
            conn.send(protocol.make_error(
                message.get("id", -1),
                f"internal error: {type(exc).__name__}: {exc}",
                kind="InternalError"))

    def _handle_ping(self, conn: Connection, message: dict) -> None:
        """Heartbeat: ack a client ping inline on the reactor thread.

        Answering here (not in the command table) is deliberate: a pong
        proves the *reactor* is alive and draining its socket, which is
        exactly the liveness property the client's heartbeat monitor
        wants to measure.

        Injection point ``server.heartbeat.pong``: a ``delay`` fault
        stalls the reactor before acking (a frozen server); any other
        fault swallows the pong (a lossy/black-holed ack path).  Both
        starve the client of beats without touching the TCP stream.
        """
        fault = faults.fire("server.heartbeat.pong")
        if fault is not None:
            if fault.kind == "delay":
                fault.apply()
            else:
                return
        seq = message.get("seq", 0)
        conn.send(protocol.make_pong(seq if isinstance(seq, int) else 0))

"""Debug-command dispatch table.

Paper section 4: *"The client sends debug commands to the debugger
server, such as set break point, continue, step, next and so on; the
server receives commands from the client, executes them and sends
appropriate responses."*

Every handler is non-blocking: a ``resume`` releases the target UE's
gate and returns immediately; it never waits for the UE to run.  This is
what keeps the single listener thread responsive while any number of
debuggee threads sit parked.
"""

from __future__ import annotations

import linecache
import os
import threading
from typing import Any, Callable, Dict, TYPE_CHECKING

from ..tracing.control import ResumeCommand
from ..tracing.frames import capture_frame, evaluate_in_frame
from ..util.errors import BreakpointError, CommandError, TraceError
from ..util.ids import UEId, describe_ue
from ..util.serde import render_value
from . import protocol

if TYPE_CHECKING:  # pragma: no cover
    from .debugserver import DebugServer

Handler = Callable[["DebugServer", Dict[str, Any]], Any]
_HANDLERS: Dict[str, Handler] = {}


def command(name: str) -> Callable[[Handler], Handler]:
    def decorate(func: Handler) -> Handler:
        _HANDLERS[name] = func
        return func
    return decorate


def dispatch(server: "DebugServer", name: str,
             args: Dict[str, Any]) -> Any:
    handler = _HANDLERS.get(name)
    if handler is None:
        raise CommandError(f"unknown command {name!r}")
    return handler(server, args)


def known_commands():
    return sorted(_HANDLERS)


def _require_ue(args: Dict[str, Any]) -> UEId:
    raw = args.get("ue")
    if not isinstance(raw, dict):
        raise CommandError("missing or invalid 'ue' argument")
    return protocol.ue_from_wire(raw)


# -- introspection ------------------------------------------------------------

@command("info")
def cmd_info(server: "DebugServer", args: Dict[str, Any]) -> Any:
    state = server.session.describe()
    state["port"] = server.port
    state["commands"] = known_commands()
    return state


@command("status")
def cmd_status(server: "DebugServer", args: Dict[str, Any]) -> Any:
    """Supervision snapshot: what a reattaching client needs to resync.

    Returns the token epoch, the parked-UE set and the breakpoint table
    in one round trip, so a client recovering from a crash can diff its
    local intent against the server's surviving state.
    """
    parked = server.engine.controller.parked_ues()
    return {
        "pid": server.session.pid,
        "session_token": server.session.session_token,
        "epoch": server.session.epoch,
        "fork_generation": server.session.fork_generation,
        "parked": [protocol.ue_to_wire(ue) for ue in parked],
        "breakpoints": server.engine.breakpoints.snapshot_state(),
        "grace_pending": server.grace_pending,
    }


@command("threads")
def cmd_threads(server: "DebugServer", args: Dict[str, Any]) -> Any:
    """The Processes-and-threads view (Fig. 2), for this process."""
    parked = set(server.engine.controller.parked_ues())
    # The engine materialises per-UE state only on its slow path, and
    # the per-code fast path keeps quietly-running threads out of it
    # entirely — so the view unions in every live debuggee thread
    # instead of depending on dispatch policy.  The debugger's own
    # service threads are all named ``dionea-*`` and stay hidden.
    ues = set(server.engine.known_ues())
    pid = os.getpid()
    for thread in threading.enumerate():
        if thread.ident is None or thread.name.startswith("dionea-"):
            continue
        ues.add(UEId(pid, thread.ident))
    out = []
    for ue in sorted(ues):
        out.append({
            "ue": protocol.ue_to_wire(ue),
            "label": describe_ue(ue, server.session.main_thread_ident),
            "parked": ue in parked,
        })
    return out


# -- breakpoints -----------------------------------------------------------------

@command("set_break")
def cmd_set_break(server: "DebugServer", args: Dict[str, Any]) -> Any:
    file = args.get("file")
    line = args.get("line")
    if not isinstance(file, str) or not isinstance(line, int):
        raise CommandError("set_break needs 'file' (str) and 'line' (int)")
    bp = server.engine.breakpoints.add(
        file, line,
        condition=args.get("condition"),
        temporary=bool(args.get("temporary", False)),
        ignore_count=int(args.get("ignore_count", 0)))
    return {"id": bp.id, "file": bp.file, "line": bp.line}


@command("set_function_break")
def cmd_set_function_break(server: "DebugServer",
                           args: Dict[str, Any]) -> Any:
    function = args.get("function")
    if not isinstance(function, str):
        raise CommandError("set_function_break needs 'function' (str)")
    bp = server.engine.breakpoints.add_function(
        function, condition=args.get("condition"),
        temporary=bool(args.get("temporary", False)))
    return {"id": bp.id, "function": function}


@command("clear_break")
def cmd_clear_break(server: "DebugServer", args: Dict[str, Any]) -> Any:
    bp_id = args.get("id")
    if not isinstance(bp_id, int):
        raise CommandError("clear_break needs 'id' (int)")
    try:
        server.engine.breakpoints.remove(bp_id)
    except BreakpointError as exc:
        raise CommandError(str(exc)) from exc
    return {"removed": bp_id}


@command("enable_break")
def cmd_enable_break(server: "DebugServer", args: Dict[str, Any]) -> Any:
    bp_id = args.get("id")
    if not isinstance(bp_id, int):
        raise CommandError("enable_break needs 'id' (int)")
    enabled = bool(args.get("enabled", True))
    try:
        server.engine.breakpoints.set_enabled(bp_id, enabled)
    except BreakpointError as exc:
        raise CommandError(str(exc)) from exc
    return {"id": bp_id, "enabled": enabled}


@command("breaks")
def cmd_breaks(server: "DebugServer", args: Dict[str, Any]) -> Any:
    return server.engine.breakpoints.snapshot_state()


# -- watchpoints --------------------------------------------------------------------

@command("set_watch")
def cmd_set_watch(server: "DebugServer", args: Dict[str, Any]) -> Any:
    expression = args.get("expression")
    if not isinstance(expression, str):
        raise CommandError("set_watch needs 'expression' (str)")
    try:
        watch = server.engine.watchpoints.add(expression)
    except (BreakpointError, SyntaxError) as exc:
        raise CommandError(str(exc)) from exc
    return {"id": watch.id, "expression": watch.expression}


@command("clear_watch")
def cmd_clear_watch(server: "DebugServer", args: Dict[str, Any]) -> Any:
    watch_id = args.get("id")
    if not isinstance(watch_id, int):
        raise CommandError("clear_watch needs 'id' (int)")
    try:
        server.engine.watchpoints.remove(watch_id)
    except BreakpointError as exc:
        raise CommandError(str(exc)) from exc
    return {"removed": watch_id}


@command("watches")
def cmd_watches(server: "DebugServer", args: Dict[str, Any]) -> Any:
    return server.engine.watchpoints.snapshot_state()


@command("catch_exceptions")
def cmd_catch_exceptions(server: "DebugServer",
                         args: Dict[str, Any]) -> Any:
    """Break at every raise (optionally filtered to named types)."""
    enabled = bool(args.get("enabled", True))
    only = args.get("only")
    if only is not None and (
            not isinstance(only, list)
            or not all(isinstance(n, str) for n in only)):
        raise CommandError("'only' must be a list of exception names")
    server.engine.set_exception_breaks(enabled, only)
    return {"catching": server.engine.exception_breaks,
            "only": only}


# -- execution control --------------------------------------------------------------

@command("resume")
def cmd_resume(server: "DebugServer", args: Dict[str, Any]) -> Any:
    """continue / step / next / return / until on one parked UE."""
    ue = _require_ue(args)
    action = args.get("action", "continue")
    if action not in ("continue", "step", "next", "return", "until"):
        raise CommandError(f"unknown resume action {action!r}")
    cmd = ResumeCommand(action=action, until_line=args.get("until_line"))
    try:
        server.engine.controller.release(ue, cmd)
    except TraceError as exc:
        raise CommandError(str(exc)) from exc
    return {"resumed": protocol.ue_to_wire(ue), "action": action}


@command("suspend")
def cmd_suspend(server: "DebugServer", args: Dict[str, Any]) -> Any:
    ue = _require_ue(args)
    server.engine.request_suspend(ue)
    return {"suspend_requested": protocol.ue_to_wire(ue)}


@command("suspend_all")
def cmd_suspend_all(server: "DebugServer", args: Dict[str, Any]) -> Any:
    """Whole-program pause — the non-low-intrusive mode of section 4."""
    server.engine.request_suspend_all()
    return {"suspend_all": True}


@command("resume_all")
def cmd_resume_all(server: "DebugServer", args: Dict[str, Any]) -> Any:
    return {"released": server.engine.resume_all()}


# -- stopped-UE inspection --------------------------------------------------------------

@command("stack")
def cmd_stack(server: "DebugServer", args: Dict[str, Any]) -> Any:
    ue = _require_ue(args)
    capture = server.last_stop_for(ue)
    if capture is None:
        raise CommandError(f"{ue} is not stopped")
    return capture


@command("eval")
def cmd_eval(server: "DebugServer", args: Dict[str, Any]) -> Any:
    """Shell `p expr`: evaluate in the parked UE's top frame."""
    ue = _require_ue(args)
    expression = args.get("expression")
    if not isinstance(expression, str):
        raise CommandError("eval needs 'expression' (str)")
    frame = server.engine.paused_frame(ue)
    if frame is None:
        raise CommandError(f"{ue} is not stopped")
    try:
        value = evaluate_in_frame(frame, expression)
    except Exception as exc:  # noqa: BLE001 - debuggee expression
        return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
    return {"ok": True, "value": render_value(value)}


@command("variables")
def cmd_variables(server: "DebugServer", args: Dict[str, Any]) -> Any:
    """The Variables view for a given frame of a parked UE."""
    ue = _require_ue(args)
    index = int(args.get("frame_index", 0))
    frame = server.engine.paused_frame(ue)
    if frame is None:
        raise CommandError(f"{ue} is not stopped")
    for _ in range(index):
        if frame.f_back is None:
            raise CommandError(f"frame index {index} out of range")
        frame = frame.f_back
    return capture_frame(frame, with_locals=True).to_wire()


# -- source sync (the second data socket of section 4) --------------------------------

@command("source")
def cmd_source(server: "DebugServer", args: Dict[str, Any]) -> Any:
    """Ship source lines so the client's Source view matches the server's.

    This is the source-synchronisation channel's one command; the client
    issues it over the ``source``-role connection.
    """
    file = args.get("file")
    if not isinstance(file, str):
        raise CommandError("source needs 'file' (str)")
    start = max(1, int(args.get("start", 1)))
    end = int(args.get("end", start + 39))
    if end < start:
        raise CommandError("source range end < start")
    linecache.checkcache(file)
    lines = []
    for lineno in range(start, end + 1):
        text = linecache.getline(file, lineno)
        if not text and lineno > start:
            break
        lines.append(text.rstrip("\n"))
    return {"file": file, "start": start, "lines": lines}


# -- debuggee I/O (Fig. 2's Output and Input windows) ----------------------------------

@command("capture_output")
def cmd_capture_output(server: "DebugServer", args: Dict[str, Any]) -> Any:
    """Toggle the stdout/stderr tee at runtime."""
    enabled = bool(args.get("enabled", True))
    if enabled:
        server.output_capture.install()
    else:
        server.output_capture.uninstall()
    return {"capturing": server.output_capture.installed}


@command("output")
def cmd_output(server: "DebugServer", args: Dict[str, Any]) -> Any:
    """Buffered debuggee output (optionally one stream)."""
    stream = args.get("stream")
    if stream not in (None, "stdout", "stderr"):
        raise CommandError("stream must be 'stdout' or 'stderr'")
    return {"capturing": server.output_capture.installed,
            "text": server.output_capture.snapshot(stream)}


@command("feed_input")
def cmd_feed_input(server: "DebugServer", args: Dict[str, Any]) -> Any:
    """Write into the debuggee's stdin (installs the feed on first use)."""
    text = args.get("text")
    if not isinstance(text, str):
        raise CommandError("feed_input needs 'text' (str)")
    if not server.input_feed.installed:
        server.input_feed.install()
    return {"fed": server.input_feed.feed(text)}


@command("close_input")
def cmd_close_input(server: "DebugServer", args: Dict[str, Any]) -> Any:
    """EOF the debuggee's stdin."""
    server.input_feed.close_input()
    return {"closed": True}


# -- profiling and internals -----------------------------------------------------------

@command("profile_start")
def cmd_profile_start(server: "DebugServer", args: Dict[str, Any]) -> Any:
    """Start the low-intrusion sampling profiler (no trace functions)."""
    from ..tracing.sampling import SamplingProfiler
    interval = float(args.get("interval_ms", 5.0)) / 1000.0
    if server.profiler is not None and server.profiler.running:
        raise CommandError("profiler already running")
    server.profiler = SamplingProfiler(interval=interval)
    server.profiler.start()
    return {"running": True, "interval_ms": interval * 1000}


@command("profile_stop")
def cmd_profile_stop(server: "DebugServer", args: Dict[str, Any]) -> Any:
    if server.profiler is None:
        raise CommandError("profiler was never started")
    server.profiler.stop()
    return {"running": False,
            "total_sweeps": server.profiler.total_samples,
            "skipped_passes": server.profiler.skipped_passes,
            "achieved_hz": round(server.profiler.achieved_rate_hz, 2)}


@command("profile_report")
def cmd_profile_report(server: "DebugServer",
                       args: Dict[str, Any]) -> Any:
    if server.profiler is None:
        raise CommandError("profiler was never started")
    return server.profiler.to_wire(top=int(args.get("top", 20)))


@command("telemetry")
def cmd_telemetry(server: "DebugServer", args: Dict[str, Any]) -> Any:
    """One process's full observability snapshot (metrics, spans, log).

    ``reset=True`` atomically drains the metric shards and span ring as
    they are read — the next snapshot then covers only the interval
    since this one (rate measurement without client-side bookkeeping).
    The ring log is never drained: it is the flight recorder, and a
    telemetry poll must not eat the crash evidence.
    """
    from .. import obs
    reset = bool(args.get("reset", False))
    limit = int(args.get("ringlog_limit", 500))
    snap = obs.telemetry_snapshot(reset=reset, ringlog_limit=limit)
    snap["pid"] = server.session.pid
    snap["program"] = server.session.program
    snap["epoch"] = server.session.epoch
    snap["fork_generation"] = server.session.fork_generation
    snap["session_token"] = server.session.session_token
    return snap


@command("blackbox")
def cmd_blackbox(server: "DebugServer", args: Dict[str, Any]) -> Any:
    """Flight-recorder status; ``flush=True`` forces a dump to disk."""
    from ..obs.blackbox import BLACKBOX
    if args.get("flush"):
        BLACKBOX.force_flush("command")
    status = BLACKBOX.describe()
    status["pid"] = server.session.pid
    return status


@command("debug_log")
def cmd_debug_log(server: "DebugServer", args: Dict[str, Any]) -> Any:
    """The debugger's own ring log — for debugging the debugger."""
    from ..util.ringlog import GLOBAL_LOG
    records = GLOBAL_LOG.snapshot()
    limit = int(args.get("limit", 200))
    return {"dropped": GLOBAL_LOG.dropped,
            "records": [r.format() for r in records[-limit:]]}


# -- modes and lifecycle ------------------------------------------------------------------

@command("disturb")
def cmd_disturb(server: "DebugServer", args: Dict[str, Any]) -> Any:
    enabled = bool(args.get("enabled", True))
    server.set_disturb(enabled)
    return {"disturb": enabled}


@command("deadlock_report")
def cmd_deadlock_report(server: "DebugServer", args: Dict[str, Any]) -> Any:
    return server.deadlock_report()


@command("detach")
def cmd_detach(server: "DebugServer", args: Dict[str, Any]) -> Any:
    """Let the debuggee run free; the server stays attachable."""
    released = server.engine.controller.release_all()
    return {"released": released}

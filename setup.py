"""Shim for legacy editable installs (`pip install -e . --no-use-pep517`).

The container has no `wheel` package and no network, so the PEP 660
editable path is unavailable; all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()

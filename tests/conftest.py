"""Shared fixtures and hygiene for the test suite.

The debugger mutates process-global state (``sys.settrace``, ``os.fork``,
the active-Dionea slot); the ``clean_process_state`` autouse fixture
guarantees every test starts and ends neutral so a failing test cannot
poison its neighbours.
"""

from __future__ import annotations

import os
import signal
import sys
import threading
import time

import pytest

#: Per-test wall-clock cap (seconds).  The supervision layer's whole
#: promise is "never hangs"; a regression must fail THIS test quickly,
#: not wedge the suite until the Makefile's job-level timeout fires.
#: Enforced by pytest-timeout when installed, else by the SIGALRM
#: fallback below.  Override per run with DIONEA_TEST_TIMEOUT=<seconds>
#: (0 disables), per test with @pytest.mark.timeout(<seconds>).
DEFAULT_TEST_TIMEOUT = float(os.environ.get("DIONEA_TEST_TIMEOUT", "120"))


def pytest_configure(config):
    has_plugin = config.pluginmanager.hasplugin("timeout")
    config._dionea_alarm_fallback = (  # noqa: SLF001
        not has_plugin and DEFAULT_TEST_TIMEOUT > 0
        and hasattr(signal, "SIGALRM"))
    if has_plugin and DEFAULT_TEST_TIMEOUT > 0:
        # Respect an explicit --timeout from the command line.
        if not getattr(config.option, "timeout", None):
            config.option.timeout = DEFAULT_TEST_TIMEOUT


def _test_timeout(item) -> float:
    marker = item.get_closest_marker("timeout")
    if marker is not None and marker.args:
        try:
            return float(marker.args[0])
        except (TypeError, ValueError):
            pass
    return DEFAULT_TEST_TIMEOUT


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    """SIGALRM-based per-test deadline when pytest-timeout is absent.

    The alarm interrupts even a test blocked inside a lock acquire or a
    socket read on the main thread — the failure names the test and its
    budget instead of the whole run dying to the job-level `timeout(1)`.
    """
    timeout = _test_timeout(item)
    if (not getattr(item.config, "_dionea_alarm_fallback", False)
            or timeout <= 0
            or threading.current_thread() is not threading.main_thread()):
        yield
        return

    def _expired(signum, frame):
        pytest.fail(f"test exceeded its {timeout:.0f}s deadline "
                    f"(per-test cap; see tests/conftest.py)",
                    pytrace=False)

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(autouse=True)
def clean_process_state():
    """Assert and restore process-global debugger state around each test."""
    original_fork = os.fork
    original_urg = (signal.getsignal(signal.SIGURG)
                    if hasattr(signal, "SIGURG") else None)
    yield
    # Restore tracing unconditionally: a failed engine test must not
    # leave a trace function slowing down (or parking!) later tests.
    sys.settrace(None)
    threading.settrace(None)
    # The settrace backend re-arms a demoted main thread via SIGURG; a
    # failed test must not leave its handler (bound to a dead engine)
    # installed for the next test's backend to chain into.
    if (original_urg is not None
            and signal.getsignal(signal.SIGURG) is not original_urg):
        signal.signal(signal.SIGURG, original_urg)
    # A leaked fork patch would make every later fork run dead handlers.
    if os.fork is not original_fork:
        os.fork = original_fork
    # Clear any leaked active Dionea.
    from repro.core import dionea as dionea_module
    with dionea_module._current_lock:  # noqa: SLF001
        dionea_module._current = None


@pytest.fixture
def portfile_path(tmp_path):
    return str(tmp_path / "ports.jsonl")


@pytest.fixture
def debug_pair(portfile_path):
    """A started in-process DebugServer plus an attached DebugClient."""
    from repro.client import DebugClient
    from repro.server import DebugServer

    server = DebugServer(program="test", park_timeout=15.0)
    server.start()
    client = DebugClient()
    session = client.attach("127.0.0.1", server.port)
    yield server, client, session
    client.close()
    server.close()


@pytest.fixture
def dionea(portfile_path):
    """A started Dionea facade with a private portfile."""
    from repro.core import Dionea

    debugger = Dionea(program="test", portfile_path=portfile_path,
                      park_timeout=15.0)
    debugger.start()
    yield debugger
    debugger.stop()


def wait_until(predicate, timeout: float = 5.0, interval: float = 0.01,
               message: str = "condition"):
    """Poll *predicate* until true or fail the test."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError(f"timed out waiting for {message}")


@pytest.fixture
def waiter():
    return wait_until

"""Shared fixtures and hygiene for the test suite.

The debugger mutates process-global state (``sys.settrace``, ``os.fork``,
the active-Dionea slot); the ``clean_process_state`` autouse fixture
guarantees every test starts and ends neutral so a failing test cannot
poison its neighbours.
"""

from __future__ import annotations

import os
import sys
import threading
import time

import pytest


@pytest.fixture(autouse=True)
def clean_process_state():
    """Assert and restore process-global debugger state around each test."""
    original_fork = os.fork
    yield
    # Restore tracing unconditionally: a failed engine test must not
    # leave a trace function slowing down (or parking!) later tests.
    sys.settrace(None)
    threading.settrace(None)
    # A leaked fork patch would make every later fork run dead handlers.
    if os.fork is not original_fork:
        os.fork = original_fork
    # Clear any leaked active Dionea.
    from repro.core import dionea as dionea_module
    with dionea_module._current_lock:  # noqa: SLF001
        dionea_module._current = None


@pytest.fixture
def portfile_path(tmp_path):
    return str(tmp_path / "ports.jsonl")


@pytest.fixture
def debug_pair(portfile_path):
    """A started in-process DebugServer plus an attached DebugClient."""
    from repro.client import DebugClient
    from repro.server import DebugServer

    server = DebugServer(program="test", park_timeout=15.0)
    server.start()
    client = DebugClient()
    session = client.attach("127.0.0.1", server.port)
    yield server, client, session
    client.close()
    server.close()


@pytest.fixture
def dionea(portfile_path):
    """A started Dionea facade with a private portfile."""
    from repro.core import Dionea

    debugger = Dionea(program="test", portfile_path=portfile_path,
                      park_timeout=15.0)
    debugger.start()
    yield debugger
    debugger.stop()


def wait_until(predicate, timeout: float = 5.0, interval: float = 0.01,
               message: str = "condition"):
    """Poll *predicate* until true or fail the test."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError(f"timed out waiting for {message}")


@pytest.fixture
def waiter():
    return wait_until

"""Property tests: corpus generation determinism and shape."""

import random

from hypothesis import given, settings, strategies as st

from repro.corpus.generator import (
    generate_file_text,
    make_vocabulary,
)
from repro.corpus.reserved import is_countable
from repro.corpus.trees import CorpusProfile, generate_corpus
from repro.mapreduce.wordcount import tokenize


class TestDeterminism:
    @given(seed=st.integers(min_value=0, max_value=2**31),
           size=st.integers(min_value=1, max_value=200))
    @settings(max_examples=30)
    def test_vocabulary_reproducible(self, seed, size):
        assert make_vocabulary(random.Random(seed), size) == \
            make_vocabulary(random.Random(seed), size)

    @given(seed=st.integers(min_value=0, max_value=2**31),
           lines=st.integers(min_value=1, max_value=50))
    @settings(max_examples=30)
    def test_file_text_reproducible_and_line_exact(self, seed, lines):
        vocab = make_vocabulary(random.Random(1), 50)
        a = generate_file_text(seed, lines, vocab)
        assert a == generate_file_text(seed, lines, vocab)
        assert a.count("\n") == lines

    @given(n_files=st.integers(min_value=1, max_value=8),
           lines=st.integers(min_value=1, max_value=10),
           seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15)
    def test_corpus_profile_reproducible(self, n_files, lines, seed):
        profile = CorpusProfile(name="prop", n_files=n_files,
                                lines_per_file=lines,
                                vocabulary_size=30, seed=seed)
        a = generate_corpus(profile)
        b = generate_corpus(profile)
        assert a == b
        assert len(a) == n_files
        paths = [p for p, _ in a]
        assert len(set(paths)) == n_files  # no path collisions


class TestTokenStatistics:
    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=20)
    def test_generated_text_has_countable_tokens(self, seed):
        """The §7 workload is only a workload if the filter keeps words."""
        vocab = make_vocabulary(random.Random(7), 100)
        text = generate_file_text(seed, 30, vocab)
        tokens = tokenize(text)
        assert tokens, "generated file has no countable words"
        assert all(is_countable(t) for t in tokens)

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=20)
    def test_vocabulary_words_are_countable(self, seed):
        for word in make_vocabulary(random.Random(seed), 50):
            # vocabulary words are lowercase alpha; only keyword overlap
            # could disqualify them, which the tokenizer handles anyway
            assert word.isalpha()

"""Property tests: the wait-for graph finds planted cycles and never
invents cycles in acyclic graphs."""

from hypothesis import given, settings, strategies as st

from repro.core.deadlock import WaitForGraph
from repro.util.ids import UEId


def ue(i):
    return UEId(1, i)


class TestPlantedCycles:
    @given(size=st.integers(min_value=1, max_value=8))
    def test_planted_ring_always_found(self, size):
        """UE_i holds L_i and wants L_{i+1 mod n}: one ring, found."""
        graph = WaitForGraph()
        for i in range(size):
            graph.add_hold(ue(i), f"L{i}")
            graph.add_wait(ue(i), f"L{(i + 1) % size}", f"x:{i}")
        cycles = graph.find_cycles()
        assert len(cycles) == 1
        ues_in_cycle = {n for n in cycles[0] if n.startswith("ue:")}
        assert len(ues_in_cycle) == size

    @given(size=st.integers(min_value=2, max_value=8),
           break_at=st.data())
    def test_broken_ring_has_no_cycle(self, size, break_at):
        """Remove one wait edge from the ring: no cycle remains."""
        missing = break_at.draw(st.integers(min_value=0,
                                            max_value=size - 1))
        graph = WaitForGraph()
        for i in range(size):
            graph.add_hold(ue(i), f"L{i}")
            if i != missing:
                graph.add_wait(ue(i), f"L{(i + 1) % size}", f"x:{i}")
        assert graph.find_cycles() == []


class TestAcyclicGraphs:
    @settings(max_examples=60)
    @given(edges=st.lists(
        st.tuples(st.integers(min_value=0, max_value=10),
                  st.integers(min_value=0, max_value=10)),
        max_size=25))
    def test_forward_only_edges_never_cycle(self, edges):
        """Build waits that always point from lower UE to a resource held
        by a strictly higher UE: topologically ordered ⇒ acyclic."""
        graph = WaitForGraph()
        for low, high in edges:
            if low >= high:
                continue
            graph.add_hold(ue(high), f"R{high}")
            graph.add_wait(ue(low), f"R{high}", "x:1")
        assert graph.find_cycles() == []

    @given(waits=st.lists(st.integers(min_value=0, max_value=20),
                          max_size=20))
    def test_waits_without_holders_never_cycle(self, waits):
        graph = WaitForGraph()
        for i, w in enumerate(waits):
            graph.add_wait(ue(i), f"R{w}", "x:1")
        assert graph.find_cycles() == []


class TestOrphanInvariants:
    @given(n_live=st.integers(min_value=0, max_value=5),
           n_dead=st.integers(min_value=0, max_value=5))
    def test_orphan_iff_all_holders_dead(self, n_live, n_dead):
        graph = WaitForGraph()
        waiter = ue(100)
        live = [ue(i) for i in range(n_live)]
        dead = [ue(50 + i) for i in range(n_dead)]
        for holder in live + dead:
            graph.add_hold(holder, "R")
        graph.add_wait(waiter, "R", "w:1")
        orphans = graph.orphaned_waits(live_ues=live + [waiter])
        if live or not dead:
            # a live holder exists, or nothing is known about holders
            assert orphans == []
        else:
            assert len(orphans) == 1

"""Property tests: shuffle partitioning invariants."""

from collections import Counter

from hypothesis import given, strategies as st

from repro.mapreduce.partition import partition_for, shuffle, stable_hash

keys = st.text(min_size=1, max_size=30)
partials = st.lists(
    st.dictionaries(keys, st.integers(min_value=0, max_value=100),
                    max_size=10),
    max_size=8)


class TestHashProperties:
    @given(key=keys)
    def test_determinism(self, key):
        assert stable_hash(key) == stable_hash(key)

    @given(key=keys, n=st.integers(min_value=1, max_value=64))
    def test_partition_in_range(self, key, n):
        assert 0 <= partition_for(key, n) < n


class TestShuffleInvariants:
    @given(data=partials, n=st.integers(min_value=1, max_value=8))
    def test_no_key_lost_no_key_duplicated(self, data, n):
        buckets = shuffle(data, n)
        all_keys = [k for bucket in buckets for k, _ in bucket]
        assert len(all_keys) == len(set(all_keys))
        assert set(all_keys) == {k for p in data for k in p}

    @given(data=partials, n=st.integers(min_value=1, max_value=8))
    def test_value_multiset_preserved(self, data, n):
        buckets = shuffle(data, n)
        shuffled_values = Counter()
        for bucket in buckets:
            for key, values in bucket:
                for value in values:
                    shuffled_values[(key, value)] += 1
        original_values = Counter()
        for partial in data:
            for key, value in partial.items():
                original_values[(key, value)] += 1
        assert shuffled_values == original_values

    @given(data=partials, n=st.integers(min_value=1, max_value=8))
    def test_bucket_assignment_is_partition_for(self, data, n):
        buckets = shuffle(data, n)
        for index, bucket in enumerate(buckets):
            for key, _ in bucket:
                assert partition_for(key, n) == index

    @given(data=partials, n=st.integers(min_value=1, max_value=8))
    def test_buckets_internally_sorted(self, data, n):
        for bucket in shuffle(data, n):
            bucket_keys = [k for k, _ in bucket]
            assert bucket_keys == sorted(bucket_keys)

    @given(data=partials)
    def test_single_partition_collects_everything(self, data):
        buckets = shuffle(data, 1)
        assert len(buckets) == 1
        assert {k for k, _ in buckets[0]} == {k for p in data for k in p}

"""Property tests: fork-handler registry ordering invariants."""

from hypothesis import given, strategies as st

from repro.forkhooks.registry import ForkHandlerRegistry

labels = st.lists(st.text(min_size=1, max_size=8), min_size=1,
                  max_size=10, unique=True)


class TestOrderingInvariants:
    @given(names=labels)
    def test_prepare_is_reverse_of_parent(self, names):
        registry = ForkHandlerRegistry()
        calls = []
        for name in names:
            registry.register(
                name,
                prepare=lambda n=name: calls.append(("prep", n)),
                parent=lambda n=name: calls.append(("par", n)))
        registry.run_prepare()
        prep_order = [n for kind, n in calls if kind == "prep"]
        calls.clear()
        registry.run_parent()
        parent_order = [n for kind, n in calls if kind == "par"]
        assert prep_order == list(reversed(parent_order))
        assert parent_order == names

    @given(names=labels)
    def test_child_matches_registration_order(self, names):
        registry = ForkHandlerRegistry()
        calls = []
        for name in names:
            registry.register(name,
                              child=lambda n=name: calls.append(n))
        registry.run_child()
        assert calls == names

    @given(names=labels, data=st.data())
    def test_unregister_preserves_relative_order(self, names, data):
        registry = ForkHandlerRegistry()
        calls = []
        for name in names:
            registry.register(name,
                              child=lambda n=name: calls.append(n))
        to_remove = data.draw(st.sets(st.sampled_from(names),
                                      max_size=len(names)))
        for name in to_remove:
            registry.unregister(name)
        registry.run_child()
        assert calls == [n for n in names if n not in to_remove]

    @given(names=labels, data=st.data())
    def test_failing_prepare_unwinds_exactly_the_prepared(self, names,
                                                          data):
        """Whatever handler fails, every handler that prepared before it
        — and only those — get their parent (undo) callback."""
        from repro.util.errors import ForkHookError
        import pytest

        registry = ForkHandlerRegistry()
        failer = data.draw(st.sampled_from(names))
        prepared, undone = [], []
        for name in names:
            if name == failer:
                registry.register(
                    name,
                    prepare=lambda n=name: (_ for _ in ()).throw(
                        RuntimeError(n)),
                    parent=lambda n=name: undone.append(n))
            else:
                registry.register(
                    name,
                    prepare=lambda n=name: prepared.append(n),
                    parent=lambda n=name: undone.append(n))
        with pytest.raises(ForkHookError):
            registry.run_prepare()
        # prepare runs reversed: everything after `failer` (in reverse
        # order) prepared; exactly those were undone, in reverse.
        expected_prepared = [n for n in reversed(names)
                             if names.index(n) > names.index(failer)]
        assert prepared == expected_prepared
        assert undone == list(reversed(expected_prepared))

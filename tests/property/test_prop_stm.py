"""Property tests: STM invariants (repro.stm)."""

import threading

from hypothesis import given, settings, strategies as st

from repro.stm import TVar, atomically


class TestSequentialSemantics:
    @given(values=st.lists(st.integers(), min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_last_write_wins(self, values):
        var = TVar(0)
        for value in values:
            atomically(lambda tx, v=value: tx.write(var, v))
        assert var.peek() == values[-1]

    @given(initial=st.integers(), delta=st.integers())
    @settings(max_examples=50, deadline=None)
    def test_read_modify_write(self, initial, delta):
        var = TVar(initial)
        atomically(lambda tx: tx.write(var, tx.read(var) + delta))
        assert var.peek() == initial + delta

    @given(n_vars=st.integers(min_value=1, max_value=10),
           data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_multi_var_snapshot_consistent(self, n_vars, data):
        """A transaction observes one consistent snapshot: if it reads
        every var twice, both reads agree."""
        tvars = [TVar(i) for i in range(n_vars)]

        def body(tx):
            first = [tx.read(v) for v in tvars]
            second = [tx.read(v) for v in tvars]
            return first == second

        assert atomically(body)

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=10, deadline=None)
    def test_concurrent_transfers_conserve_sum(self, seed):
        import random
        accounts = [TVar(50) for _ in range(3)]
        rng = random.Random(seed)
        plans = [[(rng.randrange(3), rng.randrange(3), rng.randint(1, 9))
                  for _ in range(40)] for _ in range(3)]

        def run(plan):
            for src, dst, amount in plan:
                def body(tx, s=src, d=dst, a=amount):
                    balance = tx.read(accounts[s])
                    if s != d and balance >= a:
                        tx.write(accounts[s], balance - a)
                        tx.write(accounts[d],
                                 tx.read(accounts[d]) + a)
                atomically(body)

        threads = [threading.Thread(target=run, args=(plan,))
                   for plan in plans]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = atomically(
            lambda tx: sum(tx.read(a) for a in accounts))
        assert total == 150

    @given(writes=st.integers(min_value=1, max_value=30))
    @settings(max_examples=30, deadline=None)
    def test_version_strictly_monotone(self, writes):
        var = TVar(0)
        versions = [var.version]
        for i in range(writes):
            atomically(lambda tx, v=i: tx.write(var, v))
            versions.append(var.version)
        assert all(b > a for a, b in zip(versions, versions[1:]))

"""Property tests: queue FIFO ordering and payload fidelity."""

import threading

from hypothesis import given, settings, strategies as st

from repro.mp.queues import Queue

picklable = st.recursive(
    st.one_of(st.none(), st.booleans(), st.integers(),
              st.text(max_size=50), st.binary(max_size=50)),
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=10), children, max_size=5)),
    max_leaves=15,
)


class TestSingleThread:
    @given(items=st.lists(picklable, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_fifo_exact(self, items):
        q = Queue()
        try:
            for item in items:
                q.put(item)
            assert [q.get() for _ in items] == items
            assert q.empty()
        finally:
            q.close()

    @given(items=st.lists(st.integers(), min_size=1, max_size=20),
           maxsize=st.integers(min_value=1, max_value=30))
    @settings(max_examples=50, deadline=None)
    def test_bounded_queue_interleaved(self, items, maxsize):
        q = Queue(maxsize=maxsize)
        try:
            out = []
            pending = 0
            for item in items:
                if pending == maxsize:
                    out.append(q.get())
                    pending -= 1
                q.put(item)
                pending += 1
            while pending:
                out.append(q.get())
                pending -= 1
            assert out == items
        finally:
            q.close()


class TestMultiProducer:
    @given(per_producer=st.integers(min_value=1, max_value=40),
           n_producers=st.integers(min_value=2, max_value=4))
    @settings(max_examples=15, deadline=None)
    def test_per_producer_fifo(self, per_producer, n_producers):
        """Global order is unspecified, but each producer's items arrive
        in that producer's order — the §6.3 queue contract."""
        q = Queue()
        try:
            def produce(tag):
                for i in range(per_producer):
                    q.put((tag, i))

            threads = [threading.Thread(target=produce, args=(t,))
                       for t in range(n_producers)]
            for t in threads:
                t.start()
            received = [q.get(timeout=10.0)
                        for _ in range(per_producer * n_producers)]
            for t in threads:
                t.join()
            for tag in range(n_producers):
                seq = [i for (t, i) in received if t == tag]
                assert seq == list(range(per_producer))
        finally:
            q.close()

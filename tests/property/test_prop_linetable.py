"""Property tests: the LineTable equals the old per-line dispatch.

The tentpole replaced "canonicalise the filename and probe the store on
every line event" with a precomputed per-code-object line set.  These
properties pin the refactor to its oracle: for ANY generated module
compiled under ANY alias spelling of its path, and ANY breakpoint
schedule (itself set through alias spellings), the precomputed
:meth:`LineTable.relevant_lines` must equal the brute-force old check,
and :meth:`LineTable.probe` must equal its boolean (plus the function-
breakpoint escape hatch).  No real files are involved — canonical_file
is pure path arithmetic.
"""

from hypothesis import given, strategies as st

from repro.tracing.breakpoints import BreakpointStore, canonical_file
from repro.tracing.linetable import LineTable

#: Two distinct module identities, each with several spellings that
#: canonicalise to the same path — plus the other module's spellings,
#: which must NOT match.
ALIASES = {
    "mod": [
        "/dionea-prop/pkg/mod.py",
        "/dionea-prop/pkg/./mod.py",
        "/dionea-prop/pkg/../pkg/mod.py",
        "/dionea-prop/other/../pkg/mod.py",
    ],
    "aux": [
        "/dionea-prop/pkg/aux.py",
        "/dionea-prop/pkg/sub/../aux.py",
    ],
}


def make_source(shape):
    """A module of top-level functions (with one nested inner each when
    marked), deterministic from *shape*: [(n_lines, nested), ...]."""
    parts = []
    for index, (n_lines, nested) in enumerate(shape):
        parts.append(f"def f{index}():")
        parts.append("    acc = 0")
        for i in range(n_lines):
            parts.append(f"    acc += {i}")
        if nested:
            parts.append("    def inner():")
            parts.append("        return acc + 1")
            parts.append("    acc += inner()")
        parts.append("    return acc")
    return "\n".join(parts) + "\n"


def all_code_objects(code):
    """*code* plus every code object reachable through co_consts."""
    found = [code]
    for const in code.co_consts:
        if hasattr(const, "co_code"):
            found.extend(all_code_objects(const))
    return found


def oracle_lines(code, store):
    """The old dispatch, spelled out: per executable line, canonicalise
    the frame's filename and ask the store."""
    return frozenset(
        line for (_start, _end, line) in code.co_lines()
        if line is not None
        and store.match_line(canonical_file(code.co_filename), line))


shapes = st.lists(
    st.tuples(st.integers(min_value=1, max_value=5), st.booleans()),
    min_size=1, max_size=3)

#: (module key, alias index) pairs — resolved against ALIASES at use.
spellings = st.tuples(st.sampled_from(sorted(ALIASES)),
                      st.integers(min_value=0, max_value=3))

bp_schedule = st.lists(
    st.tuples(spellings, st.integers(min_value=1, max_value=25)),
    max_size=12)


def _spell(key, index):
    options = ALIASES[key]
    return options[index % len(options)]


class TestOracleEquality:
    @given(shape=shapes, compile_as=spellings, schedule=bp_schedule)
    def test_relevant_lines_equal_brute_force(self, shape, compile_as,
                                              schedule):
        source = make_source(shape)
        filename = _spell(*compile_as)
        module = compile(source, filename, "exec")
        store = BreakpointStore()
        for (key, index), line in schedule:
            store.add(_spell(key, index), line)
        table = LineTable(store)
        for code in all_code_objects(module):
            assert table.relevant_lines(code) == oracle_lines(code, store)

    @given(shape=shapes, compile_as=spellings, schedule=bp_schedule,
           function_bp=st.booleans())
    def test_probe_equals_boolean_oracle(self, shape, compile_as,
                                         schedule, function_bp):
        source = make_source(shape)
        filename = _spell(*compile_as)
        module = compile(source, filename, "exec")
        store = BreakpointStore()
        for (key, index), line in schedule:
            store.add(_spell(key, index), line)
        if function_bp:
            store.add_function("f0")
        table = LineTable(store)
        for code in all_code_objects(module):
            expected = (bool(oracle_lines(code, store))
                        or store.has_function_break(code.co_name))
            assert table.probe(code) is expected
            # The published verdict must be stable on re-probe.
            assert table.probe(code) is expected

    @given(shape=shapes, schedule=bp_schedule, data=st.data())
    def test_churn_never_leaves_stale_verdicts(self, shape, schedule, data):
        """Add/remove churn with the store wired to invalidate (as the
        engine wires it): after every mutation the cached verdicts must
        match a freshly built table."""
        source = make_source(shape)
        module = compile(source, ALIASES["mod"][0], "exec")
        codes = all_code_objects(module)
        store = BreakpointStore()
        table = LineTable(store)
        store.on_change = table.invalidate
        live = []
        for (key, index), line in schedule:
            generation = table.generation
            if live and data.draw(st.booleans()):
                store.remove(live.pop(data.draw(st.integers(
                    min_value=0, max_value=len(live) - 1))))
            else:
                live.append(store.add(_spell(key, index), line).id)
            assert table.generation > generation
            fresh = LineTable(store)
            for code in codes:
                assert table.probe(code) is fresh.probe(code)

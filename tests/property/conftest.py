"""Hypothesis profile for the property suite.

The container these tests run on is shared and noisy; hypothesis's
default 200 ms per-example deadline produces false failures when the
machine stalls mid-example, so deadlines are disabled — the outer pytest
timeout still bounds runaway tests.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")

"""Property tests: framing round-trips under arbitrary chunking."""

import json

from hypothesis import given, settings, strategies as st

from repro.util.framing import FrameDecoder, encode_frame

# JSON-representable values (finite floats only: NaN != NaN breaks
# equality-based round-trip assertions).
json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-2**53, max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=200),
)
json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=8),
        st.dictionaries(st.text(max_size=20), children, max_size=8),
    ),
    max_leaves=25,
)


class TestRoundTrip:
    @given(message=json_values)
    def test_single_message(self, message):
        decoder = FrameDecoder()
        decoder.feed(encode_frame(message))
        out = list(decoder.messages())
        assert len(out) == 1
        assert out[0] == json.loads(json.dumps(message))

    @given(messages=st.lists(json_values, max_size=10))
    def test_message_sequence_order_preserved(self, messages):
        decoder = FrameDecoder()
        for message in messages:
            decoder.feed(encode_frame(message))
        out = list(decoder.messages())
        assert out == [json.loads(json.dumps(m)) for m in messages]

    @given(messages=st.lists(json_values, min_size=1, max_size=6),
           data=st.data())
    @settings(max_examples=50)
    def test_arbitrary_chunk_boundaries(self, messages, data):
        """The decoder must be insensitive to how the byte stream is
        split — including splits inside the 4-byte header."""
        stream = b"".join(encode_frame(m) for m in messages)
        decoder = FrameDecoder()
        out = []
        position = 0
        while position < len(stream):
            size = data.draw(st.integers(min_value=1,
                                         max_value=len(stream) - position))
            decoder.feed(stream[position:position + size])
            out.extend(decoder.messages())
            position += size
        assert out == [json.loads(json.dumps(m)) for m in messages]
        assert decoder.pending_bytes == 0

    @given(message=json_values)
    def test_no_bytes_left_behind(self, message):
        decoder = FrameDecoder()
        decoder.feed(encode_frame(message))
        list(decoder.messages())
        assert decoder.pending_bytes == 0

"""Property tests: value rendering never crashes and always bounds output."""

from hypothesis import given, settings, strategies as st

from repro.util.serde import MAX_STRING, render_namespace, render_value

anything = st.recursive(
    st.one_of(
        st.none(), st.booleans(), st.integers(), st.floats(),
        st.text(max_size=500), st.binary(max_size=500),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=10),
        st.tuples(children, children),
        st.dictionaries(st.text(max_size=10), children, max_size=10),
    ),
    max_leaves=40,
)


class TestTotality:
    @given(value=anything)
    def test_always_returns_str(self, value):
        assert isinstance(render_value(value), str)

    @given(value=anything)
    @settings(max_examples=200)
    def test_output_bounded(self, value):
        rendered = render_value(value, depth=3, max_items=5, max_string=64)
        # Each level multiplies by at most max_items; with small knobs the
        # output must stay well under a fixed ceiling.
        assert len(rendered) < 20_000

    @given(text=st.text(min_size=MAX_STRING + 1, max_size=MAX_STRING * 3))
    def test_long_strings_always_marked(self, text):
        rendered = render_value(text)
        assert "chars)" in rendered

    @given(items=st.lists(st.integers(), min_size=26, max_size=200))
    def test_long_lists_always_marked(self, items):
        rendered = render_value(items)
        assert "items)" in rendered


class TestNamespace:
    @given(namespace=st.dictionaries(
        st.text(min_size=1, max_size=20), anything, max_size=15))
    def test_namespace_keys_sorted_and_stringified(self, namespace):
        rendered = render_namespace(namespace)
        assert list(rendered) == sorted(rendered)
        assert all(isinstance(v, str) for v in rendered.values())

    @given(name=st.text(min_size=1, max_size=10))
    def test_dunder_always_skipped(self, name):
        key = f"__{name}__"
        assert key not in render_namespace({key: 1})

"""Property tests: breakpoint store consistency."""

from hypothesis import given, strategies as st

from repro.tracing.breakpoints import BreakpointStore

locations = st.tuples(
    st.sampled_from(["/a.py", "/b.py", "/c/d.py"]),
    st.integers(min_value=1, max_value=50),
)


class TestStoreConsistency:
    @given(locs=st.lists(locations, max_size=30))
    def test_len_matches_additions(self, locs):
        store = BreakpointStore()
        for file, line in locs:
            store.add(file, line)
        assert len(store) == len(locs)

    @given(locs=st.lists(locations, min_size=1, max_size=30),
           data=st.data())
    def test_add_remove_reaches_consistent_state(self, locs, data):
        store = BreakpointStore()
        ids = [store.add(f, l).id for f, l in locs]
        to_remove = data.draw(st.sets(st.sampled_from(ids),
                                      max_size=len(ids)))
        for bp_id in to_remove:
            store.remove(bp_id)
        survivors = {bp.id for bp in store.all()}
        assert survivors == set(ids) - to_remove
        # the location index agrees with the id index
        index_count = sum(len(store.match_line(bp.file, bp.line)
                              ) > 0 for bp in store.all())
        assert index_count == len(survivors)

    @given(locs=st.lists(locations, min_size=1, max_size=20))
    def test_every_added_breakpoint_is_matchable(self, locs):
        store = BreakpointStore()
        for file, line in locs:
            bp = store.add(file, line)
            assert bp in store.match_line(bp.file, bp.line)
            assert store.break_anywhere_in(bp.file)

    @given(locs=st.lists(locations, min_size=1, max_size=20))
    def test_clearing_empties_all_indexes(self, locs):
        store = BreakpointStore()
        for file, line in locs:
            store.add(file, line)
        store.clear()
        assert len(store) == 0
        assert store.files_with_breakpoints() == set()
        for file, line in locs:
            assert store.match_line(file, line) == []

    @given(hits=st.integers(min_value=0, max_value=20),
           ignore=st.integers(min_value=0, max_value=10))
    def test_ignore_count_arithmetic(self, hits, ignore):
        """With ignore_count=k, the breakpoint stops on hit k+1."""
        store = BreakpointStore()
        store.add("/f.py", 1, ignore_count=ignore)
        canonical = store.all()[0].file
        stops = sum(
            1 for _ in range(hits)
            if store.effective(canonical, 1, {}, {}) is not None)
        assert stops == max(0, hits - ignore)

    @given(locs=st.lists(locations, min_size=1, max_size=15))
    def test_snapshot_matches_store(self, locs):
        store = BreakpointStore()
        for file, line in locs:
            store.add(file, line)
        snap = store.snapshot_state()
        assert len(snap) == len(store)
        assert [s["id"] for s in snap] == sorted(s["id"] for s in snap)

"""Integration: the command shell against a live debug server.

The textual interface of Fig. 2's command-shell window, driven end to
end: break/continue/step/p/vars/threads against a real traced thread.
"""

import os
import threading

import pytest

from repro.client import Shell
from repro.util.errors import CommandError

SRC = os.path.abspath(__file__)


def worker(limit):
    total = 0
    for i in range(limit):
        total += i * 10         # SHELL_BP_LINE
    return total


SHELL_BP_LINE = worker.__code__.co_firstlineno + 3


@pytest.fixture
def shell_env(debug_pair):
    server, client, session = debug_pair
    return Shell(client), server, client, session


class TestBreakpointCommands:
    def test_break_lists_and_clears(self, shell_env):
        shell, server, client, session = shell_env
        out = shell.execute(f"break {SRC}:{SHELL_BP_LINE}")
        assert "breakpoint 1 at" in out
        listing = shell.execute("breaks")
        assert f":{SHELL_BP_LINE}" in listing
        assert shell.execute("clear 1") == "cleared breakpoint 1"
        assert shell.execute("breaks") == "no breakpoints"

    def test_conditional_break_syntax(self, shell_env):
        shell, *_ = shell_env
        out = shell.execute(f"b {SRC}:{SHELL_BP_LINE}, i == 2")
        assert "breakpoint" in out
        listing = shell.execute("breaks")
        assert "if i == 2" in listing

    def test_tbreak(self, shell_env):
        shell, *_ = shell_env
        out = shell.execute(f"tbreak {SRC}:{SHELL_BP_LINE}")
        assert "temporary breakpoint" in out
        assert "temporary" in shell.execute("breaks")

    def test_breakf(self, shell_env):
        shell, *_ = shell_env
        out = shell.execute("breakf worker")
        assert "on function worker" in out


class TestStopAndInspect:
    def test_full_session_transcript(self, shell_env):
        shell, server, client, session = shell_env
        shell.execute(f"break {SRC}:{SHELL_BP_LINE}, i == 1")

        box = {}
        thread = threading.Thread(
            target=lambda: box.setdefault("r", worker(3)))
        thread.start()

        view = client.wait_for_stop(timeout=10)[0]
        view.wait_stopped(10)

        # p: evaluate in the stopped frame
        assert shell.execute("p total") == "0"
        assert shell.execute("p i * 100") == "100"
        error_out = shell.execute("p not_defined")
        assert error_out.startswith("error:")

        # vars: the Variables view
        vars_out = shell.execute("vars")
        assert "worker at" in vars_out
        assert "limit = 3" in vars_out

        # where/bt: stack listing
        stack_out = shell.execute("where")
        assert "#0 worker at" in stack_out

        # threads: processes-and-threads view with state
        threads_out = shell.execute("threads")
        assert "[stopped]" in threads_out
        assert "[running]" in threads_out

        # continue to completion
        shell.execute("clear 1")
        assert "continuing" in shell.execute("continue")
        thread.join(10)
        assert box["r"] == 30

    def test_step_via_shell(self, shell_env):
        shell, server, client, session = shell_env
        shell.execute(f"tbreak {SRC}:{SHELL_BP_LINE}")
        box = {}
        thread = threading.Thread(
            target=lambda: box.setdefault("r", worker(2)))
        thread.start()
        view = client.wait_for_stop(timeout=10)[0]
        view.wait_stopped(10)
        marker = view.stop_marker
        assert "stepping" in shell.execute("s")
        view.wait_stopped_after(marker, 10)
        assert "#0" in shell.execute("bt")
        shell.execute("c")
        thread.join(10)
        assert box["r"] == 10


class TestViewSwitching:
    def test_view_command_activates(self, shell_env):
        shell, server, client, session = shell_env
        shell.execute(f"tbreak {SRC}:{SHELL_BP_LINE}")
        box = {}
        thread = threading.Thread(
            target=lambda: box.setdefault("r", worker(2)))
        thread.start()
        view = client.wait_for_stop(timeout=10)[0]
        view.wait_stopped(10)
        out = shell.execute(f"view {os.getpid()} {view.ue.tid}")
        assert "->" in out  # rendered source with the stop marker
        assert client.active_view is view
        shell.execute("c")
        thread.join(10)

    def test_view_unknown_pid_fails(self, shell_env):
        shell, *_ = shell_env
        with pytest.raises((CommandError, Exception)):
            shell.execute("view 999999")

    def test_sessions_listing(self, shell_env):
        shell, server, client, session = shell_env
        out = shell.execute("sessions")
        assert f"pid {os.getpid()}" in out


class TestDeadlockCommand:
    def test_no_deadlocks_message(self, shell_env):
        shell, server, client, session = shell_env
        # plain DebugServer: detector not wired => not available
        out = shell.execute("deadlocks")
        assert out in ("deadlock detection not available",
                       "no deadlocks detected")

"""Integration: the session supervision layer (heartbeats, deadlines,
client-loss grace, reattach).

The contract under test: every `DebugSession` call answers, errors, or
times out — never hangs; a dead server is *noticed* (heartbeat / EOF →
``session_lost``); a dead client is *forgiven* for a grace window
(parked UEs held for reattach) before the server falls back to
releasing everything.
"""

import os
import threading
import time

import pytest

from repro.client import DebugClient
from repro.server import DebugServer, protocol
from repro.testkit import faults
from repro.util.errors import (
    HandshakeError,
    RequestTimeoutError,
    SessionError,
    SessionLostError,
)

SRC = os.path.abspath(__file__)


def traced_loop(n):
    total = 0
    for i in range(n):
        total += 1              # LOOP_BP_LINE
    return total


LOOP_BP_LINE = traced_loop.__code__.co_firstlineno + 3


class TestHeartbeat:
    def test_dropped_pongs_declare_session_lost(self, waiter):
        """A reactor that stops acking beats is a lost session, even
        though the TCP stream never closes."""
        lost = []
        server = DebugServer(program="t", client_loss_grace=0.1)
        server.start()
        try:
            client = DebugClient(
                on_session_lost=lambda s, reason: lost.append(reason))
            try:
                with faults.armed("server.heartbeat.pong",
                                  faults.Fault.eintr()):  # any kind: drop
                    session = client.attach(
                        "127.0.0.1", server.port,
                        heartbeat_interval=0.1, heartbeat_misses=3)
                    waiter(lambda: session.lost, timeout=5,
                           message="heartbeat verdict")
                assert "heartbeat" in session.lost_reason
                waiter(lambda: lost, message="session_lost event")
                assert "heartbeat" in lost[0]
                # the verdict fails new requests fast, with the reason
                with pytest.raises(SessionLostError):
                    session.request("info")
                # ...and the whole-program view shows the debuggee gone
                node = next(n for n in client.process_tree.roots()
                            if n.pid == session.pid)
                assert not node.alive
            finally:
                client.close()
        finally:
            server.close()

    def test_healthy_server_keeps_session_alive(self, waiter):
        """Pongs flow: an aggressive heartbeat must NOT false-positive."""
        server = DebugServer(program="t")
        server.start()
        try:
            client = DebugClient()
            session = client.attach("127.0.0.1", server.port,
                                    heartbeat_interval=0.05,
                                    heartbeat_misses=2)
            time.sleep(0.6)  # dozens of beats
            assert not session.lost
            assert session.request("info")["pid"] == os.getpid()
            client.close()
        finally:
            server.close()

    def test_orderly_server_exit_is_not_a_loss(self, waiter):
        """EV_SERVER_EXIT then EOF is a farewell, not a crash."""
        lost = []
        server = DebugServer(program="t")
        server.start()
        client = DebugClient(
            on_session_lost=lambda s, reason: lost.append(reason))
        session = client.attach("127.0.0.1", server.port,
                                heartbeat_interval=0.1)
        server.close()
        waiter(lambda: session.closed, message="session close")
        time.sleep(0.2)  # give any spurious verdict time to surface
        assert not session.lost
        assert lost == []
        client.close()

    def test_abrupt_channel_loss_surfaces_session_lost(self, waiter):
        """EOF with no farewell = crashed server: EV_SESSION_LOST."""
        lost = []
        server = DebugServer(program="t")
        server.start()
        try:
            client = DebugClient(
                on_session_lost=lambda s, reason: lost.append(reason))
            session = client.attach("127.0.0.1", server.port)
            server._listener.close()  # noqa: SLF001 - simulate a crash
            waiter(lambda: session.lost, message="loss verdict")
            assert "closed unexpectedly" in session.lost_reason
            waiter(lambda: lost, message="session_lost event")
            client.close()
        finally:
            server.close()


class TestRequestDeadlines:
    def test_frozen_server_times_out_one_request(self):
        """A stalled reactor fails THAT request in bounded time; once it
        thaws, the same session keeps working (timeout != loss)."""
        server = DebugServer(program="t")
        server.start()
        try:
            client = DebugClient()
            session = client.attach("127.0.0.1", server.port)
            with faults.armed("server.request.dispatch",
                              faults.Fault.delay(0.8),
                              faults.Schedule.on_hits(1)):
                start = time.monotonic()
                with pytest.raises(RequestTimeoutError):
                    session.request("info", timeout=0.3)
                elapsed = time.monotonic() - start
                assert elapsed < 0.7, "deadline did not bound the wait"
                # the reactor thaws and the session survives
                assert session.request("info",
                                       timeout=5.0)["pid"] == os.getpid()
            assert not session.lost
            client.close()
        finally:
            server.close()

    def test_closed_session_fails_requests_immediately(self):
        server = DebugServer(program="t")
        server.start()
        try:
            client = DebugClient()
            session = client.attach("127.0.0.1", server.port)
            session.close()
            start = time.monotonic()
            with pytest.raises(SessionError):
                session.request("info")
            assert time.monotonic() - start < 0.5
            client.close()
        finally:
            server.close()


class TestClientLossGrace:
    def test_grace_holds_then_releases(self, waiter):
        """Client dies mid-stop: parked UEs are held for the grace
        window, then released so the debuggee completes (S4a)."""
        server = DebugServer(program="t", park_timeout=30.0,
                             client_loss_grace=0.4)
        server.start()
        try:
            client = DebugClient()
            session = client.attach("127.0.0.1", server.port)
            session.request("set_break", {"file": SRC,
                                          "line": LOOP_BP_LINE})
            box = {}
            thread = threading.Thread(
                target=lambda: box.setdefault("r", traced_loop(3)))
            thread.start()
            view = client.wait_for_stop(timeout=10)[0]
            view.wait_stopped(10)
            server.engine.breakpoints.clear()  # avoid re-stopping

            session.close()  # abrupt: no farewell, like a SIGKILLed client
            waiter(lambda: server.grace_pending, message="grace window")
            assert not box.get("r"), "released before grace expired"
            thread.join(10)
            assert box.get("r") == 3, "UE stayed parked after grace"
            assert not server.grace_pending
            client.close()
        finally:
            server.close()

    def test_reattach_within_grace_reclaims_parked_ues(self, waiter):
        """The acceptance path: client restarts inside the window,
        presents its resume token, and finds stop state + breakpoints
        exactly as it left them."""
        server = DebugServer(program="t", park_timeout=30.0,
                             client_loss_grace=5.0)
        server.start()
        try:
            client = DebugClient()
            session = client.attach("127.0.0.1", server.port)
            session.request("set_break", {"file": SRC,
                                          "line": LOOP_BP_LINE})
            box = {}
            thread = threading.Thread(
                target=lambda: box.setdefault("r", traced_loop(3)))
            thread.start()
            view = client.wait_for_stop(timeout=10)[0]
            view.wait_stopped(10)

            session.close()  # the "crash"
            waiter(lambda: server.grace_pending, message="grace window")

            reclaimed = client.reattach(session.pid)
            assert reclaimed.resumed
            assert not server.grace_pending, "reattach left grace armed"
            # same view object, new transport, stop state replayed
            assert view.session is reclaimed
            view.wait_stopped(10)
            # the surviving breakpoint was not duplicated by the resync
            assert len(reclaimed.request("breaks")) == 1

            server.engine.breakpoints.clear()
            view.cont()
            thread.join(10)
            assert box.get("r") == 3
            client.close()
        finally:
            server.close()

    def test_stale_resume_token_refused(self):
        """A token from another epoch must not hijack the debuggee."""
        server = DebugServer(program="t")
        server.start()
        try:
            client = DebugClient()
            with pytest.raises(HandshakeError):
                client.attach("127.0.0.1", server.port,
                              resume_token="stale-epoch-token")
            # the refusal left the server fully usable
            session = client.attach("127.0.0.1", server.port)
            assert session.request("info")["pid"] == os.getpid()
            assert not session.resumed
            client.close()
        finally:
            server.close()


class TestSecondClient:
    def test_racing_clients_exactly_one_wins(self, waiter):
        """S3: two clients race to attach; the reactor survives the
        refusal and exactly one session is established."""
        server = DebugServer(program="t", client_loss_grace=5.0)
        server.start()
        try:
            results = [None, None]

            def try_attach(slot):
                client = DebugClient()
                try:
                    client.attach("127.0.0.1", server.port)
                    results[slot] = client
                except (HandshakeError, SessionError):
                    client.close()

            threads = [threading.Thread(target=try_attach, args=(i,))
                       for i in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(10)
            winners = [c for c in results if c is not None]
            assert len(winners) == 1, f"expected one winner: {results}"
            winner = winners[0]
            # the loser's dying connection is not a client loss: no
            # grace timer, and the winner still drives the debuggee
            assert not server.grace_pending
            assert winner.sessions()[0].request("info")["pid"] == \
                os.getpid()
            assert server._listener.running  # noqa: SLF001
            winner.close()
        finally:
            server.close()

    def test_second_client_refused_while_first_parked(self, waiter):
        """The refusal must not disturb a stop in progress."""
        server = DebugServer(program="t", park_timeout=30.0,
                             client_loss_grace=5.0)
        server.start()
        try:
            client = DebugClient()
            session = client.attach("127.0.0.1", server.port)
            session.request("set_break", {"file": SRC,
                                          "line": LOOP_BP_LINE,
                                          "temporary": True})
            box = {}
            thread = threading.Thread(
                target=lambda: box.setdefault("r", traced_loop(2)))
            thread.start()
            view = client.wait_for_stop(timeout=10)[0]
            view.wait_stopped(10)

            intruder = DebugClient()
            with pytest.raises((HandshakeError, SessionError)):
                intruder.attach("127.0.0.1", server.port)
            intruder.close()

            time.sleep(0.2)  # window for any spurious release/grace
            assert view.is_stopped, "refusal released the parked UE"
            assert not server.grace_pending
            view.cont()
            thread.join(10)
            assert box.get("r") == 2
            client.close()
        finally:
            server.close()


class TestStopReplayRace:
    def test_stop_replayed_at_hello_becomes_a_view(self, waiter):
        """Regression: the hello-time stop replay arrives on the reader
        thread before attach() registers the session; the event must be
        routed against its own delivering session, not dropped."""
        server = DebugServer(program="t", park_timeout=30.0)
        server.start()
        try:
            server.engine.breakpoints.add(SRC, LOOP_BP_LINE)
            box = {}
            thread = threading.Thread(
                target=lambda: box.setdefault("r", traced_loop(3)))
            thread.start()
            waiter(lambda: server.engine.controller.parked_ues(),
                   message="UE parked before any client exists")

            # Attach AFTER the stop: the replay races the registration.
            client = DebugClient()
            client.attach("127.0.0.1", server.port)
            view = client.wait_for_stop(timeout=10)[0]
            assert view.is_stopped

            server.engine.breakpoints.clear()
            view.cont()
            thread.join(10)
            assert box.get("r") == 3
            client.close()
        finally:
            server.close()


class TestSessionLookup:
    def test_session_for_pid_wakes_on_attach(self):
        """S1: the lookup blocks on a condition and wakes the moment the
        session lands — no polling loop, no missed signal."""
        server = DebugServer(program="t")
        server.start()
        try:
            client = DebugClient()
            timer = threading.Timer(
                0.15, lambda: client.attach("127.0.0.1", server.port))
            timer.start()
            start = time.monotonic()
            session = client.session_for_pid(os.getpid(), timeout=5.0)
            elapsed = time.monotonic() - start
            assert session.pid == os.getpid()
            assert 0.1 <= elapsed < 3.0
            timer.join()
            client.close()
        finally:
            server.close()

    def test_session_for_pid_times_out(self):
        client = DebugClient()
        start = time.monotonic()
        with pytest.raises(SessionError):
            client.session_for_pid(424242, timeout=0.2)
        assert time.monotonic() - start < 2.0
        client.close()


class TestStatusCommand:
    def test_status_reports_supervision_state(self, debug_pair):
        server, client, session = debug_pair
        status = session.request("status")
        assert status["pid"] == os.getpid()
        assert status["epoch"] == 0
        assert status["session_token"] == session.session_token
        assert status["parked"] == []
        assert status["grace_pending"] is False

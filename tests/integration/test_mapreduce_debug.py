"""Integration: §6.3 — debugging MapReduce word count over processes.

Fig. 8's scenario: a parent plus forked workers sharing input/output
queues; some workers stopped at breakpoints while *"an available child
process takes over the jobs"*.
"""

import os
import time

import pytest

from repro.client import DebugClient
from repro.corpus import generate_corpus, get_profile
from repro.mapreduce import (
    map_wordcount,
    merge_counts,
    run_wordcount,
)

pytestmark = [pytest.mark.forks, pytest.mark.slow]


class TestWordcountUnderDebugger:
    def test_result_identical_with_debugger_attached(self, dionea):
        """Correctness under tracing: same counts as the serial truth."""
        docs = generate_corpus(get_profile("tiny"))
        expected = merge_counts(map_wordcount(d) for d in docs)
        got = run_wordcount(docs, n_workers=3, timeout=60)
        assert got == expected

    def test_children_announce_through_portfile(self, dionea, waiter):
        client = DebugClient()
        client.watch_portfile(dionea.portfile)
        waiter(lambda: client.sessions(), message="parent attach")
        docs = generate_corpus(get_profile("tiny"))
        run_wordcount(docs, n_workers=3, timeout=60)
        # the 3 pool workers all announced and were auto-attached
        waiter(lambda: len(dionea.portfile.read_all()) >= 4,
               timeout=10, message="worker announcements")
        records = dionea.portfile.read_all()
        worker_records = [r for r in records if r.pid != os.getpid()]
        assert len(worker_records) >= 3
        client.close()

    def test_breakpoint_in_worker_stops_only_that_worker(self, dionea,
                                                         waiter):
        """The §6.3 observation: with one worker parked at a breakpoint,
        the remaining workers drain the queue and the job completes."""
        client = DebugClient()
        client.watch_portfile(dionea.portfile)
        waiter(lambda: client.sessions(), message="parent attach")

        docs = generate_corpus(get_profile("tiny"))
        # reference result computed BEFORE the function breakpoint: the
        # parent's own map_wordcount calls must not park this thread
        expected = merge_counts(map_wordcount(d) for d in docs)

        # Break on entry to the map function — every worker hits it on
        # its first document.
        dionea.server.engine.breakpoints.add_function("map_wordcount")

        import threading
        result_box = {}

        def run_job():
            result_box["counts"] = run_wordcount(docs, n_workers=3,
                                                 timeout=120)

        job = threading.Thread(target=run_job)
        job.start()

        # first worker to hit the breakpoint parks
        views = client.wait_for_stop(timeout=30)
        stopped = [v for v in views if v.ue.pid != os.getpid()]
        assert stopped, "no worker stopped at the breakpoint"
        first = stopped[0]
        first.wait_stopped(10)

        # clear that worker's inherited breakpoint and release it; other
        # workers will each park once too — release them as they come.
        released_pids = set()
        deadline = time.monotonic() + 60
        while job.is_alive() and time.monotonic() < deadline:
            for view in client.stopped_views():
                if view.ue.pid == os.getpid():
                    continue
                session = view.session
                try:
                    for bp in session.request("breaks"):
                        session.request("clear_break", {"id": bp["id"]})
                    view.cont()
                    released_pids.add(view.ue.pid)
                except Exception:  # noqa: BLE001 - worker may have exited
                    pass
            time.sleep(0.02)
        job.join(30)
        assert not job.is_alive(), "job wedged under the debugger"
        assert result_box["counts"] == expected
        assert released_pids, "no workers were stopped/released"
        client.close()

"""Integration: the §6.2 deadlock scenario (paper Listing 5 / Figure 7).

Ruby original: an inter-thread Queue is popped inside a forked child;
the pushing thread only exists in the parent, so the child blocks
forever.  Dionea's payoff is showing *the exact line* of the hang.

Python equivalent, exercised here with repro.mp.ThreadQueue: the child's
deadlock report must name the ``queue.get`` line of this file.
"""

import os
import threading
import time

import pytest

from repro.client import DebugClient
from repro.mp.queues import ThreadQueue

pytestmark = pytest.mark.forks

SRC = os.path.abspath(__file__)


def listing5_child(queue):
    """The child's half of Listing 5: pop a thread-local queue."""
    item = queue.get(timeout=30)      # DEADLOCK_LINE — blocks forever
    return item


DEADLOCK_LINE = listing5_child.__code__.co_firstlineno + 2


class TestListing5:
    def test_child_deadlock_located_at_exact_line(self, dionea, waiter):
        client = DebugClient()
        client.watch_portfile(dionea.portfile)
        waiter(lambda: client.sessions(), message="attach parent")

        queue = ThreadQueue(name="listing5-queue")

        # The parent-side pusher of Listing 5 (Thread.new { ... push }):
        # it pushes after a delay, but only in the PARENT.
        pusher = threading.Thread(
            target=lambda: (time.sleep(1.0), queue.put(True)))
        pusher.start()

        pid = os.fork()
        if pid == 0:
            # Child: the queue is a frozen copy; the pusher thread did not
            # survive the fork (§5.1).  This get can never complete.
            try:
                listing5_child(queue)
                os._exit(1)  # would mean the deadlock did not happen
            except Exception:
                os._exit(2)

        try:
            session = client.session_for_pid(pid, timeout=10)

            # Poll the child's deadlock report until the wait registers.
            report = None
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                report = session.request("deadlock_report")
                if report["waiting"]:
                    break
                time.sleep(0.05)

            assert report is not None and report["waiting"], \
                "child never reported its blocking wait"
            wait = report["waiting"][0]
            # The exact place where the deadlock occurred (Fig. 7):
            assert wait["location"].startswith(f"{SRC}:{DEADLOCK_LINE}")
            assert "listing5_child" in wait["location"]
            assert wait["resource"] == "listing5-queue"

            # Ruby's fatal-deadlock rule: every debuggee UE in the child
            # is blocked (the only surviving thread is the waiter).
            assert report["all_blocked"] is True

            # The parent is NOT deadlocked: its pusher ran.
            parent_report = dionea.report_deadlocks()
            assert parent_report["all_blocked"] is False
        finally:
            pusher.join(5)
            try:
                os.kill(pid, 9)
            except ProcessLookupError:
                pass
            os.waitpid(pid, 0)
            client.close()

    def test_parent_queue_still_works(self, dionea):
        """Control: used inside one process, the queue behaves."""
        queue = ThreadQueue()
        threading.Thread(target=lambda: queue.put("ok")).start()
        assert queue.get(timeout=5) == "ok"


class TestWaitReporting:
    def test_wait_clears_after_satisfaction(self, dionea):
        queue = ThreadQueue(name="transient")

        def slow_put():
            time.sleep(0.2)
            queue.put(1)

        thread = threading.Thread(target=slow_put)
        thread.start()
        assert queue.get(timeout=5) == 1
        thread.join(5)
        report = dionea.report_deadlocks()
        assert report["waiting"] == []

    def test_lock_cycle_detected_in_process(self, dionea, waiter):
        """Two threads, two locks, opposite order: a real AB-BA deadlock,
        detected (and then broken by timeout-release in the test)."""
        from repro.mp.synchronize import Lock
        lock_a, lock_b = Lock(name="A"), Lock(name="B")
        release = threading.Event()

        def thread_one():
            with lock_a:
                time.sleep(0.1)
                if lock_b.acquire(timeout=3.0):
                    lock_b.release()

        def thread_two():
            with lock_b:
                time.sleep(0.1)
                if lock_a.acquire(timeout=3.0):
                    lock_a.release()

        threads = [threading.Thread(target=thread_one),
                   threading.Thread(target=thread_two)]
        for t in threads:
            t.start()

        # While both are blocked, the cycle must be visible.
        def has_cycle():
            return bool(dionea.report_deadlocks()["cycles"])

        waiter(has_cycle, timeout=2.5, message="AB-BA cycle detection")
        report = dionea.report_deadlocks()
        chain = report["cycles"][0]["nodes"]
        assert "A" in chain and "B" in chain

        for t in threads:
            t.join(10)
        lock_a.close()
        lock_b.close()
        assert dionea.report_deadlocks()["cycles"] == []

"""Integration: §6.4 — the parallel-gem pipe bug under the debugger.

The paper's finding, reproduced end to end:

* the **buggy** fork discipline (0.5.9) deadlocks when forks from
  interacting threads interleave with pipe creation;
* the **fixed** discipline (0.5.10/11) always completes;
* **disturb mode** stops every newly forked worker, making the
  interleaving controllable — the same run that hangs in buggy mode is
  stepped through deterministically.
"""

import os
import time

import pytest

from repro.client import DebugClient
from repro.workerpool import BuggyWorkerPool, FixedWorkerPool

pytestmark = [pytest.mark.forks, pytest.mark.slow]


def work_item(x):
    return x * x


class TestBugVsFix:
    def test_buggy_hangs_fixed_completes(self):
        tasks = list(range(8))

        fixed = FixedWorkerPool(4, join_timeout=5.0)
        results, outcomes = fixed.map(work_item, tasks)
        assert results == [x * x for x in tasks]
        assert all(o.finished for o in outcomes)

        buggy = BuggyWorkerPool(4, join_timeout=1.5, race_window=True)
        _results, outcomes = buggy.map(work_item, tasks)
        hung = [o for o in outcomes if o.hung]
        assert hung, "buggy pool should deadlock with a full race window"

    def test_fix_requires_closing_sibling_pipes(self):
        """Dependency check: the fixed pool's completion is causal, not
        luck — run both pools repeatedly and require consistency."""
        for _ in range(3):
            fixed = FixedWorkerPool(3, join_timeout=5.0)
            results, outcomes = fixed.map(work_item, [1, 2, 3, 4, 5, 6])
            assert results == [1, 4, 9, 16, 25, 36]
            assert not any(o.hung for o in outcomes)


class TestUnderDebugger:
    def test_fixed_pool_completes_with_dionea_attached(self, dionea,
                                                       waiter):
        client = DebugClient()
        client.watch_portfile(dionea.portfile)
        waiter(lambda: client.sessions(), message="parent attach")
        pool = FixedWorkerPool(3, join_timeout=15.0)
        results, outcomes = pool.map(work_item, list(range(6)))
        assert results == [x * x for x in range(6)]
        assert all(o.finished for o in outcomes)
        client.close()

    def test_disturb_mode_stops_every_new_worker(self, dionea, waiter):
        """§6.4's methodology: every forked worker parks at birth; the
        client chooses the interleaving by releasing them one by one."""
        client = DebugClient()
        client.watch_portfile(dionea.portfile)
        waiter(lambda: client.sessions(), message="parent attach")
        # §6.4 methodology targets processes; leave this test's own
        # runner *thread* alone (a new thread would be disturbed too).
        dionea.disturb_mode.stop_new_threads = False
        dionea.disturb_mode.set_enabled(True)

        import threading
        n_workers = 3
        box = {}

        def run_pool():
            pool = FixedWorkerPool(n_workers, join_timeout=30.0)
            box["out"] = pool.map(work_item, list(range(n_workers * 2)))

        runner = threading.Thread(target=run_pool)
        runner.start()

        # every worker must park with reason "disturb" before doing work;
        # release them in reverse birth order — a scripted interleaving.
        parked = []
        deadline = time.monotonic() + 30
        while len(parked) < n_workers and time.monotonic() < deadline:
            for view in client.stopped_views():
                if view.ue.pid != os.getpid() and view not in parked:
                    assert view.capture.reason == "disturb"
                    parked.append(view)
            time.sleep(0.02)
        assert len(parked) == n_workers, \
            f"only {len(parked)}/{n_workers} workers disturbed"

        for view in reversed(parked):
            view.cont()

        runner.join(30)
        assert not runner.is_alive()
        results, outcomes = box["out"]
        assert results == [x * x for x in range(n_workers * 2)]
        assert all(o.finished for o in outcomes)
        dionea.disturb_mode.set_enabled(False)
        client.close()

"""Integration: the paper's §6.1 usage — server and client in separate
OS processes, exactly like ``python dioneas.py program.py`` + the GUI.

The debuggee runs under ``dionea run`` in a subprocess; this test acts
as the client over the rendezvous file, drives it with real commands,
and follows its fork.
"""

import os
import subprocess
import sys
import textwrap
import time

import pytest

from repro.client import DebugClient
from repro.util.portfile import PortFile

pytestmark = [pytest.mark.forks, pytest.mark.slow]


DEBUGGEE = textwrap.dedent("""
    import os, sys, time

    def work(label, n):
        total = 0
        for i in range(n):
            total += i          # line 7: breakpoint target
        print(label, total)
        return total

    # give the client a moment to attach and set breakpoints
    time.sleep(1.0)
    pid = os.fork()
    if pid == 0:
        work("child", 10)
        os._exit(0)
    work("parent", 5)
    os.waitpid(pid, 0)
""")


@pytest.fixture
def debuggee_process(tmp_path):
    program = tmp_path / "program.py"
    program.write_text(DEBUGGEE)
    portfile = tmp_path / "ports.jsonl"
    env = dict(os.environ)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "run",
         "--portfile", str(portfile), "--park-timeout", "30",
         str(program)],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True, env=env)
    yield proc, str(portfile), str(program)
    if proc.poll() is None:
        proc.kill()
    proc.wait(10)


class TestTwoProcessSession:
    def test_attach_break_follow_fork_resume(self, debuggee_process):
        proc, portfile_path, program = debuggee_process
        client = DebugClient()
        try:
            client.watch_portfile(PortFile(portfile_path))

            # attach to the top-level debuggee
            deadline = time.monotonic() + 15
            while not client.sessions() and time.monotonic() < deadline:
                time.sleep(0.05)
            assert client.sessions(), "never attached to the debuggee"
            parent = client.sessions()[0]
            assert parent.pid == proc.pid

            # set a breakpoint the forked child will inherit
            parent.request("set_break", {"file": program, "line": 7})

            # both parent and child must stop there
            views = client.wait_for_stop(timeout=20, min_count=1)
            stopped = views[0]
            capture = stopped.wait_stopped(15)
            assert capture.top.line == 7
            assert capture.top.function == "work"

            # the child process announces itself and is auto-attached
            child_session = None
            deadline = time.monotonic() + 15
            while child_session is None and time.monotonic() < deadline:
                others = [s for s in client.sessions()
                          if s.pid != proc.pid]
                if others:
                    child_session = others[0]
                time.sleep(0.05)
            assert child_session is not None, "child never attached"
            info = child_session.request("info")
            assert info["parent_pid"] == proc.pid
            assert info["fork_generation"] == 1

            # release everything (clear each debuggee's own store first)
            deadline = time.monotonic() + 30
            while proc.poll() is None and time.monotonic() < deadline:
                for view in client.stopped_views():
                    try:
                        for bp in view.session.request("breaks"):
                            view.session.request("clear_break",
                                                 {"id": bp["id"]})
                        view.cont()
                    except Exception:  # noqa: BLE001 - racing exit
                        pass
                time.sleep(0.05)
            assert proc.wait(15) == 0
            stdout, stderr = proc.communicate()
            assert "parent 10" in stdout
            assert "child 45" in stdout
            assert "dionea: serving pid" in stderr
        finally:
            client.close()

    def test_shell_subcommand_drives_live_server(self, debuggee_process):
        proc, portfile_path, program = debuggee_process
        # run the *shell CLI* (a third process) with scripted commands
        result = subprocess.run(
            [sys.executable, "-m", "repro.cli", "shell",
             "--portfile", portfile_path,
             "-c", "sessions", "-c", "threads"],
            capture_output=True, text=True, timeout=30)
        assert result.returncode == 0
        assert f"pid {proc.pid}" in result.stdout
        proc.wait(30)

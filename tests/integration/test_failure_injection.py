"""Integration: failure injection.

The debugger must degrade, not wedge: a vanished client releases parked
UEs; garbage on the wire drops only the offending connection; a child
dying before rendezvous doesn't poison the watcher; handler failures are
contained.
"""

import os
import socket
import threading
import time

import pytest

from repro.client import DebugClient
from repro.server import DebugServer, protocol
from repro.util.framing import encode_frame, recv_frame, send_frame

SRC = os.path.abspath(__file__)


def traced_loop(n):
    total = 0
    for i in range(n):
        total += 1              # LOOP_BP_LINE
    return total


LOOP_BP_LINE = traced_loop.__code__.co_firstlineno + 3


class TestClientDeath:
    def test_dead_client_releases_parked_ues(self, waiter):
        """§4.1's 1:1 session ends abruptly: the debuggee must run on."""
        server = DebugServer(program="t", park_timeout=30.0,
                             client_loss_grace=0.2)
        server.start()
        try:
            client = DebugClient()
            session = client.attach("127.0.0.1", server.port)
            session.request("set_break", {"file": SRC,
                                          "line": LOOP_BP_LINE})
            box = {}
            thread = threading.Thread(
                target=lambda: box.setdefault("r", traced_loop(3)))
            thread.start()
            view = client.wait_for_stop(timeout=10)[0]
            view.wait_stopped(10)

            # The client dies without resuming anything.
            server.engine.breakpoints.clear()  # avoid re-stopping
            client.close()

            # The server notices the disconnect and releases the UE.
            thread.join(10)
            assert box.get("r") == 3, "debuggee stayed parked after " \
                                      "client death"
        finally:
            server.close()

    def test_park_timeout_is_the_last_resort(self):
        """Even with no client at all, a stop cannot wedge forever."""
        server = DebugServer(program="t", park_timeout=0.3)
        server.start()
        try:
            server.engine.breakpoints.add(SRC, LOOP_BP_LINE,
                                          temporary=True)
            start = time.monotonic()
            result = traced_loop(2)
            elapsed = time.monotonic() - start
            assert result == 2
            assert 0.25 <= elapsed < 5.0
        finally:
            server.close()


class TestWireGarbage:
    def test_garbage_connection_does_not_kill_server(self, debug_pair):
        server, client, session = debug_pair
        rogue = socket.create_connection(("127.0.0.1", server.port),
                                         timeout=5)
        rogue.sendall(b"\x00" * 3)       # torn header
        rogue.sendall(b"GET / HTTP/1.1\r\n\r\n")
        time.sleep(0.1)
        rogue.close()
        # the legitimate session is unaffected
        assert session.request("info")["pid"] == os.getpid()

    def test_huge_length_prefix_rejected(self, debug_pair):
        server, client, session = debug_pair
        import struct
        rogue = socket.create_connection(("127.0.0.1", server.port),
                                         timeout=5)
        rogue.sendall(struct.pack(">I", 2 ** 31))
        time.sleep(0.1)
        rogue.close()
        assert session.request("info")["pid"] == os.getpid()

    def test_source_role_cannot_hold_command_slot(self, debug_pair):
        """Extra source-role connections are fine; the 1:1 rule only
        applies to command connections."""
        server, client, session = debug_pair
        extra = socket.create_connection(("127.0.0.1", server.port),
                                         timeout=5)
        send_frame(extra, protocol.make_hello(
            protocol.ROLE_SOURCE, pid=0, session_token="x"))
        ack = recv_frame(extra)
        assert ack["type"] == "hello_ack"
        extra.close()


@pytest.mark.forks
class TestChildDeathBeforeRendezvous:
    def test_watcher_survives_vanished_child(self, dionea, waiter):
        client = DebugClient()
        client.watch_portfile(dionea.portfile)
        waiter(lambda: client.sessions(), message="parent attach")
        try:
            # Forge a record for a child that died before accepting.
            from repro.util.portfile import PortRecord
            dead_sock = socket.socket()
            dead_sock.bind(("127.0.0.1", 0))
            dead_port = dead_sock.getsockname()[1]
            dead_sock.close()  # nothing listens here any more
            dionea.portfile.announce(PortRecord(
                pid=99999999, parent_pid=os.getpid(),
                host="127.0.0.1", port=dead_port, created_at=time.time()))

            # A real fork afterwards must still auto-attach.
            pid = os.fork()
            if pid == 0:
                time.sleep(0.4)
                os._exit(0)
            session = client.session_for_pid(pid, timeout=10)
            assert session.pid == pid
            os.waitpid(pid, 0)
        finally:
            client.close()


class TestHandlerFailures:
    @pytest.mark.forks
    def test_foreign_prepare_failure_contained_fork_proceeds(self, dionea):
        """Do-no-harm: a third-party prepare failure no longer vetoes
        the fork.  The sick handler is undone and quarantined; the fork
        proceeds and the debugger stays fully operational."""
        from repro.util.errors import ForkHookError

        dionea.fork_registry.register(
            "flaky-library", prepare=lambda: 1 / 0)
        try:
            pid = os.fork()
            if pid == 0:
                os._exit(0)
            _, status = os.waitpid(pid, 0)
            assert os.waitstatus_to_exitcode(status) == 0
            # debugger state is intact: sync sweep unwound, tracing on
            assert dionea.server.engine.enabled
            assert not dionea.sync_registry.holding
            # the offender is benched, not the debuggee's fork
            assert "flaky-library" in \
                dionea.fork_registry.quarantine.benched_labels()
            # and a later fork still works
            pid = os.fork()
            if pid == 0:
                os._exit(0)
            _, status = os.waitpid(pid, 0)
            assert os.waitstatus_to_exitcode(status) == 0
        finally:
            try:
                dionea.fork_registry.unregister("flaky-library")
            except ForkHookError:
                pass

    @pytest.mark.forks
    def test_foreign_child_handler_failure_contained(self, dionea):
        dionea.fork_registry.register(
            "flaky-child", child=lambda: 1 / 0)
        pid = os.fork()
        if pid == 0:
            # the failing foreign handler must not have killed us
            os._exit(0)
        _, status = os.waitpid(pid, 0)
        assert os.waitstatus_to_exitcode(status) == 0
        dionea.fork_registry.unregister("flaky-child")


class TestEvalSafety:
    def test_eval_error_is_data_not_crash(self, debug_pair):
        server, client, session = debug_pair
        session.request("set_break", {"file": SRC, "line": LOOP_BP_LINE,
                                      "temporary": True})
        box = {}
        thread = threading.Thread(
            target=lambda: box.setdefault("r", traced_loop(2)))
        thread.start()
        view = client.wait_for_stop(timeout=10)[0]
        view.wait_stopped(10)
        result = view.evaluate("1 / 0")
        assert result["ok"] is False
        assert "ZeroDivisionError" in result["error"]
        # server is still healthy
        assert view.evaluate("total + 1")["ok"] is True
        view.cont()
        thread.join(10)

    def test_eval_on_running_ue_rejected(self, debug_pair):
        from repro.util.errors import CommandError
        server, client, session = debug_pair
        from repro.util.ids import UEId
        ue = UEId(os.getpid(), threading.get_ident())
        with pytest.raises(CommandError, match="not stopped"):
            session.request("eval", {"ue": protocol.ue_to_wire(ue),
                                     "expression": "1"})

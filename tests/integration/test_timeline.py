"""Integration: causal fork-tree tracing + the post-mortem timeline.

A real Dionea facade with the black box enabled, a watching client and
real ``os.fork`` calls.  Requests must carry trace context the server
links back to, forked children must root their traces under the
parent's fork bracket, dead children must keep speaking through their
black-box dumps, and ``dionea timeline`` must reassemble the whole tree
without a single live server.
"""

import json
import os
import time

import pytest

from repro.client import DebugClient
from repro.obs.blackbox import BLACKBOX, scan_dir
from repro.obs.export import validate_trace

pytestmark = pytest.mark.forks


def wait_child(pid, timeout=15.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        done, status = os.waitpid(pid, os.WNOHANG)
        if done == pid:
            return os.waitstatus_to_exitcode(status)
        time.sleep(0.01)
    os.kill(pid, 9)
    os.waitpid(pid, 0)
    raise AssertionError(f"child {pid} did not exit in {timeout}s")


@pytest.fixture
def bb_dir(tmp_path, monkeypatch):
    directory = tmp_path / "blackbox"
    monkeypatch.setenv("DIONEA_BLACKBOX_DIR", str(directory))
    yield str(directory)
    # The box is process-global; leave it disabled for the next test.
    BLACKBOX.configure(None, "teardown")


@pytest.fixture
def dionea_bb(bb_dir, portfile_path):
    from repro.core import Dionea
    debugger = Dionea(program="timeline-test",
                      portfile_path=portfile_path, park_timeout=15.0)
    debugger.start()
    yield debugger
    debugger.stop()


@pytest.fixture
def watching_client(dionea_bb, waiter):
    client = DebugClient()
    client.watch_portfile(dionea_bb.portfile)
    waiter(lambda: client.sessions(), message="attach to parent")
    yield client
    client.close()


class TestCausalPropagation:
    def test_request_context_links_server_span(self, dionea_bb,
                                               watching_client):
        session = watching_client.sessions()[0]
        session.request("info")
        snap = session.request("telemetry", {})
        cmd_spans = [s for s in snap["spans"]
                     if s["name"] == "cmd:info"]
        assert cmd_spans, "command span missing"
        flow = (cmd_spans[-1].get("args") or {}).get("flow")
        assert flow and flow["kind"] == "rpc"
        assert flow["parent_pid"] == os.getpid()
        assert cmd_spans[-1]["parent"] == flow["parent_span"]

    def test_child_trace_rooted_under_parent(self, dionea_bb,
                                             watching_client):
        parent_session = watching_client.session_for_pid(os.getpid())
        parent_snap = parent_session.request("telemetry", {})
        # Gate the child's exit on the parent: a fixed sleep loses the
        # race against attach latency under a loaded suite, leaving the
        # watcher dialing a corpse for the whole timeout.
        hold_r, hold_w = os.pipe()
        pid = os.fork()
        if pid == 0:
            os.close(hold_w)
            os.read(hold_r, 1)
            os._exit(0)
        os.close(hold_r)
        try:
            child_session = watching_client.session_for_pid(pid, timeout=10)
            child_snap = child_session.request("telemetry", {})
        finally:
            os.write(hold_w, b"x")
            os.close(hold_w)
        assert child_snap["trace"]["trace_id"] == \
            parent_snap["trace"]["trace_id"]
        roots = [s for s in child_snap["spans"]
                 if s["name"] == "process.root"]
        assert roots, "child did not record its root span"
        flow = roots[0]["args"]["flow"]
        assert flow["kind"] == "fork"
        assert flow["parent_pid"] == os.getpid()
        wait_child(pid)

    def test_blackbox_command_reports_dump(self, dionea_bb,
                                           watching_client, bb_dir):
        session = watching_client.sessions()[0]
        status = session.request("blackbox", {"flush": True})
        assert status["enabled"] is True
        assert status["path"] and os.path.isfile(status["path"])
        assert status["records"] >= 1


class TestClusterTimeline:
    def test_dead_child_speaks_through_its_dump(self, dionea_bb,
                                                watching_client, bb_dir,
                                                waiter):
        pid = os.fork()
        if pid == 0:
            os._exit(0)  # dies before any terminal flush: unclean
        wait_child(pid)
        waiter(lambda: any(d.pid == pid for d in scan_dir(bb_dir)),
               message="child dump on disk")
        document = watching_client.cluster_timeline(blackbox_dir=bb_dir)
        other = document["otherData"]
        assert {os.getpid(), pid} <= set(other["processes"])
        assert other["sources"][str(pid)] == "blackbox"
        assert other["terminals"][str(pid)] == "unclean"
        assert other["sources"][str(os.getpid())] in ("live", "merged")
        flows = [e for e in document["traceEvents"]
                 if e.get("name") == "fork-flow"]
        assert {e["pid"] for e in flows} >= {os.getpid(), pid}
        assert validate_trace(document) == []


class TestCliPostMortem:
    def test_timeline_command_needs_no_live_server(self, bb_dir,
                                                   portfile_path,
                                                   tmp_path, capsys):
        """The acceptance scenario: the whole tree is dead; the dumps
        alone must reconstruct it."""
        from repro.cli import main
        from repro.core import Dionea

        debugger = Dionea(program="postmortem",
                          portfile_path=portfile_path, park_timeout=5.0)
        debugger.start()
        pid = os.fork()
        if pid == 0:
            os._exit(0)
        wait_child(pid)
        debugger.stop()

        out = tmp_path / "trace.json"
        assert main(["timeline", "--blackbox-dir", bb_dir,
                     "--out", str(out)]) == 0
        document = json.loads(out.read_text())
        other = document["otherData"]
        assert {os.getpid(), pid} <= set(other["processes"])
        assert other["terminals"][str(os.getpid())] == "stop"
        assert other["terminals"][str(pid)] == "unclean"
        assert validate_trace(document) == []
        stderr = capsys.readouterr().err
        assert "unclean" in stderr

    def test_timeline_command_without_sources_fails_cleanly(self, tmp_path,
                                                            monkeypatch,
                                                            capsys):
        from repro.cli import main
        monkeypatch.delenv("DIONEA_BLACKBOX_DIR", raising=False)
        assert main(["timeline"]) == 2
        assert "no --blackbox-dir" in capsys.readouterr().err

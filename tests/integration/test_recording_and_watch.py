"""Integration: session recording and watchpoints over the wire."""

import os
import threading

import pytest

from repro.client import SessionRecorder, Shell
from repro.client.recording import TranscriptEntry

SRC = os.path.abspath(__file__)


def ramp(n):
    level = 0
    for i in range(n):
        level += i
    return level


class TestWatchpointsOverWire:
    def test_watch_stops_and_reports_change(self, debug_pair):
        server, client, session = debug_pair
        result = session.request("set_watch", {"expression": "level"})
        watch_id = result["id"]

        box = {}
        thread = threading.Thread(
            target=lambda: box.setdefault("r", ramp(3)))
        thread.start()
        view = client.wait_for_stop(timeout=10)[0]
        capture = view.wait_stopped(10)
        assert capture.reason == "watch"
        assert capture.watch["expression"] == "level"
        assert capture.watch["old_value"] == "0"
        assert capture.watch["new_value"] == "1"

        # hit count is visible in the listing
        rows = session.request("watches")
        assert rows[0]["hit_count"] == 1

        session.request("clear_watch", {"id": watch_id})
        view.cont()
        thread.join(10)
        assert box["r"] == 3

    def test_bad_watch_expression_rejected(self, debug_pair):
        from repro.util.errors import CommandError
        server, client, session = debug_pair
        with pytest.raises(CommandError):
            session.request("set_watch", {"expression": "level +"})

    def test_shell_watch_verbs(self, debug_pair):
        server, client, session = debug_pair
        shell = Shell(client)
        out = shell.execute("watch level * 2")
        assert "watchpoint 1 on level * 2" in out
        assert "level * 2" in shell.execute("watches")
        assert shell.execute("unwatch 1") == "cleared watchpoint 1"
        assert shell.execute("watches") == "no watchpoints"


class TestSessionRecording:
    def test_requests_responses_and_events_recorded(self, debug_pair,
                                                    waiter):
        server, client, session = debug_pair
        recorder = SessionRecorder()
        recorder.attach_to(client)

        bp = session.request("set_break", {"file": SRC, "line":
                                           ramp.__code__.co_firstlineno + 3,
                                           "temporary": True})
        box = {}
        thread = threading.Thread(
            target=lambda: box.setdefault("r", ramp(2)))
        thread.start()
        view = client.wait_for_stop(timeout=10)[0]
        view.wait_stopped(10)
        view.cont()
        thread.join(10)

        requests = recorder.entries(direction="request")
        commands = [e.payload["command"] for e in requests]
        assert "set_break" in commands
        assert "resume" in commands
        responses = recorder.entries(direction="response")
        assert all(e.payload["ok"] for e in responses)
        # the resumed event is asynchronous: wait for it to land
        def event_names():
            return {e.payload["event"]
                    for e in recorder.entries(direction="event")}

        waiter(lambda: {"stopped", "resumed"} <= event_names(),
               message="stopped+resumed events in transcript")

    def test_error_responses_recorded(self, debug_pair):
        from repro.util.errors import CommandError
        server, client, session = debug_pair
        recorder = SessionRecorder()
        recorder.attach_to(client)
        with pytest.raises(CommandError):
            session.request("clear_break", {"id": 404})
        errors = [e for e in recorder.entries(direction="response")
                  if not e.payload["ok"]]
        assert errors and "clear_break" == errors[0].payload["command"]

    def test_save_and_load_roundtrip(self, debug_pair, tmp_path):
        server, client, session = debug_pair
        recorder = SessionRecorder()
        recorder.attach_to(client)
        session.request("info")
        path = str(tmp_path / "transcript.jsonl")
        count = recorder.save(path)
        loaded = SessionRecorder.load(path)
        assert len(loaded) == count >= 2
        assert isinstance(loaded[0], TranscriptEntry)
        assert loaded[0].payload["command"] == "info"

    def test_timeline_rendering(self, debug_pair):
        server, client, session = debug_pair
        recorder = SessionRecorder()
        recorder.attach_to(client)
        session.request("threads")
        timeline = recorder.render_timeline()
        assert "-> threads" in timeline
        assert "<- threads [ok]" in timeline
        assert f"pid {os.getpid()}" in timeline

    def test_recording_covers_auto_attached_children(
            self, dionea, waiter, tmp_path):
        """Sessions born later (forked children) are wrapped too."""
        from repro.client import DebugClient
        client = DebugClient()
        recorder = SessionRecorder()
        recorder.attach_to(client)
        client.watch_portfile(dionea.portfile)
        waiter(lambda: client.sessions(), message="parent attach")

        import time
        pid = os.fork()
        if pid == 0:
            time.sleep(0.3)
            os._exit(0)
        child_session = client.session_for_pid(pid, timeout=10)
        child_session.request("info")
        os.waitpid(pid, 0)

        child_requests = recorder.entries(direction="request", pid=pid)
        assert any(e.payload["command"] == "info"
                   for e in child_requests)
        client.close()

"""Integration: the paper's core loop — following forks (sections 5.3-5.4).

A Dionea facade in the parent, a client watching the rendezvous file,
real ``os.fork`` calls: children must re-establish their own debug
servers, inherit breakpoints, rewrite metadata, and stay individually
controllable.
"""

import os
import time

import pytest

from repro.client import DebugClient

pytestmark = pytest.mark.forks

SRC = os.path.abspath(__file__)


def child_compute(n):
    acc = 0
    for i in range(n):
        acc += i * 3           # CHILD_BP_LINE
    return acc


CHILD_BP_LINE = child_compute.__code__.co_firstlineno + 3


def wait_child(pid, timeout=15.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        done, status = os.waitpid(pid, os.WNOHANG)
        if done == pid:
            return os.waitstatus_to_exitcode(status)
        time.sleep(0.01)
    os.kill(pid, 9)
    os.waitpid(pid, 0)
    raise AssertionError(f"child {pid} did not exit in {timeout}s")


@pytest.fixture
def watching_client(dionea, waiter):
    client = DebugClient()
    client.watch_portfile(dionea.portfile)
    waiter(lambda: client.sessions(), message="attach to parent")
    yield client
    client.close()


class TestChildRendezvous:
    def test_child_announces_and_client_attaches(self, dionea,
                                                 watching_client, waiter):
        pid = os.fork()
        if pid == 0:
            time.sleep(0.3)  # give the client time to attach
            os._exit(0)
        session = watching_client.session_for_pid(pid, timeout=10)
        assert session.pid == pid
        assert session.parent_pid == os.getpid()
        assert wait_child(pid) == 0

    def test_parent_records_child(self, dionea, watching_client):
        pid = os.fork()
        if pid == 0:
            os._exit(0)
        wait_child(pid)
        assert pid in dionea.server.session.children

    def test_portfile_contains_both_generations(self, dionea,
                                                watching_client):
        pid = os.fork()
        if pid == 0:
            time.sleep(0.1)
            os._exit(0)
        wait_child(pid)
        records = dionea.portfile.read_all()
        pids = [r.pid for r in records]
        assert os.getpid() in pids and pid in pids
        child_record = next(r for r in records if r.pid == pid)
        assert child_record.parent_pid == os.getpid()
        # child listens on its own fresh port
        parent_record = next(r for r in records if r.pid == os.getpid())
        assert child_record.port != parent_record.port


class TestInheritedBreakpoints:
    def test_child_stops_at_parent_breakpoint(self, dionea,
                                              watching_client):
        dionea.set_breakpoint(SRC, CHILD_BP_LINE)
        pid = os.fork()
        if pid == 0:
            result = child_compute(4)
            os._exit(0 if result == 18 else 1)

        session = watching_client.session_for_pid(pid, timeout=10)
        views = watching_client.wait_for_stop(timeout=20)
        view = next(v for v in views if v.ue.pid == pid)
        capture = view.wait_stopped(10)
        assert capture.top.line == CHILD_BP_LINE
        assert capture.reason == "breakpoint"
        # inspect the child remotely
        assert view.evaluate("n")["value"] == "4"

        # clear in the CHILD's server (its own store), then run free
        for bp in session.request("breaks"):
            session.request("clear_break", {"id": bp["id"]})
        view.cont()
        assert wait_child(pid) == 0

    def test_parent_tracing_survives_fork(self, dionea, watching_client):
        """Phase B re-enables tracing: a parent-side breakpoint set after
        the fork still fires in the parent."""
        pid = os.fork()
        if pid == 0:
            os._exit(0)
        wait_child(pid)
        assert dionea.server.engine.enabled
        assert dionea.server.engine.installed

    def test_parent_session_survives_child_fork(self, dionea,
                                                watching_client):
        """Regression: the child's phase C must close its inherited
        copies of the parent's client connections WITHOUT shutdown(2) —
        shutdown acts on the shared socket and would sever the parent's
        live session.  Observable symptom when broken: parent-side
        breakpoints stop firing at the client after any fork."""
        import threading
        dionea.set_breakpoint(SRC, CHILD_BP_LINE)
        pid = os.fork()
        if pid == 0:
            os._exit(0)  # child does nothing; its handler C still runs
        wait_child(pid)

        # the parent's own session must still deliver stops
        box = {}
        thread = threading.Thread(
            target=lambda: box.setdefault("r", child_compute(3)))
        thread.start()
        views = watching_client.wait_for_stop(timeout=15)
        parent_views = [v for v in views if v.ue.pid == os.getpid()]
        assert parent_views, "parent stop lost after fork " \
                             "(inherited-socket shutdown bug)"
        view = parent_views[0]
        view.wait_stopped(10)
        for bp in view.session.request("breaks"):
            view.session.request("clear_break", {"id": bp["id"]})
        view.cont()
        thread.join(10)
        assert box["r"] == 9


class TestChildMetadataRewrite:
    def test_grandchild_chain(self, dionea, watching_client):
        """fork → fork: generation 2 re-announces through the same file."""
        pid = os.fork()
        if pid == 0:
            grandchild = os.fork()
            if grandchild == 0:
                time.sleep(0.3)
                os._exit(0)
            done, status = os.waitpid(grandchild, 0)
            os._exit(os.waitstatus_to_exitcode(status))

        session = watching_client.session_for_pid(pid, timeout=10)
        assert session.pid == pid
        # the grandchild eventually announces too
        deadline = time.monotonic() + 10
        grandchild_record = None
        while time.monotonic() < deadline and grandchild_record is None:
            for record in dionea.portfile.read_all():
                if record.parent_pid == pid:
                    grandchild_record = record
            time.sleep(0.02)
        assert grandchild_record is not None, "grandchild never announced"
        assert wait_child(pid) == 0

    def test_child_session_identity(self, dionea, watching_client):
        pid = os.fork()
        if pid == 0:
            time.sleep(0.3)
            os._exit(0)
        session = watching_client.session_for_pid(pid, timeout=10)
        info = session.request("info")
        assert info["pid"] == pid
        assert info["parent_pid"] == os.getpid()
        assert info["fork_generation"] == 1
        assert info["children"] == []
        wait_child(pid)


class TestIsolation:
    def test_breakpoint_added_in_child_does_not_affect_parent(
            self, dionea, watching_client):
        pid = os.fork()
        if pid == 0:
            time.sleep(0.5)
            os._exit(0)
        session = watching_client.session_for_pid(pid, timeout=10)
        session.request("set_break", {"file": SRC, "line": CHILD_BP_LINE})
        # parent's own store is untouched
        assert len(dionea.server.engine.breakpoints) == 0
        wait_child(pid)

    def test_sessions_are_independent(self, dionea, watching_client):
        pids = []
        for _ in range(2):
            pid = os.fork()
            if pid == 0:
                time.sleep(0.5)
                os._exit(0)
            pids.append(pid)
        sessions = [watching_client.session_for_pid(p, timeout=10)
                    for p in pids]
        tokens = {s.request("info")["session_token"] for s in sessions}
        assert len(tokens) == 2
        for pid in pids:
            wait_child(pid)

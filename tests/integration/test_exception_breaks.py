"""Integration: break-on-raise over the wire (the `catch` command)."""

import os
import threading

import pytest

from repro.client import Shell

SRC = os.path.abspath(__file__)


def risky(values):
    out = []
    for value in values:
        try:
            out.append(10 // value)
        except ZeroDivisionError:
            out.append(None)
    return out


def multi_error():
    try:
        raise KeyError("missing")
    except KeyError:
        pass
    try:
        raise ValueError("bad value")
    except ValueError:
        pass
    return "done"


class TestCatchExceptions:
    def test_stop_at_raise_even_if_handled(self, debug_pair):
        """The exception event fires at the raise, in the raising frame —
        before the handler runs; pdb's post-mortem can't get here."""
        server, client, session = debug_pair
        session.request("catch_exceptions", {"enabled": True})
        try:
            box = {}
            thread = threading.Thread(
                target=lambda: box.setdefault("r", risky([2, 0, 5])))
            thread.start()
            view = client.wait_for_stop(timeout=10)[0]
            capture = view.wait_stopped(10)
            assert capture.reason == "exception"
            assert capture.watch["exception"] == "ZeroDivisionError"
            assert capture.top.function == "risky"
            # the handler still runs after release: result intact
            view.cont()
            thread.join(10)
            assert box["r"] == [5, None, 2]
        finally:
            session.request("catch_exceptions", {"enabled": False})

    def test_filter_by_exception_name(self, debug_pair):
        server, client, session = debug_pair
        session.request("catch_exceptions",
                        {"enabled": True, "only": ["ValueError"]})
        try:
            box = {}
            thread = threading.Thread(
                target=lambda: box.setdefault("r", multi_error()))
            thread.start()
            view = client.wait_for_stop(timeout=10)[0]
            capture = view.wait_stopped(10)
            # the KeyError did NOT stop; the ValueError did
            assert capture.watch["exception"] == "ValueError"
            assert capture.watch["message"] == "bad value"
            view.cont()
            thread.join(10)
            assert box["r"] == "done"
        finally:
            session.request("catch_exceptions", {"enabled": False})

    def test_toggle_off_stops_catching(self, debug_pair):
        server, client, session = debug_pair
        session.request("catch_exceptions", {"enabled": True})
        session.request("catch_exceptions", {"enabled": False})
        box = {}
        thread = threading.Thread(
            target=lambda: box.setdefault("r", risky([0])))
        thread.start()
        thread.join(10)
        assert box["r"] == [None]
        assert client.stop_history == []

    def test_bad_filter_rejected(self, debug_pair):
        from repro.util.errors import CommandError
        server, client, session = debug_pair
        with pytest.raises(CommandError):
            session.request("catch_exceptions",
                            {"enabled": True, "only": [1, 2]})

    def test_shell_catch_verb(self, debug_pair):
        server, client, session = debug_pair
        shell = Shell(client)
        out = shell.execute("catch on ValueError KeyError")
        assert "exception catching on" in out
        assert "ValueError" in out
        assert shell.execute("catch off") == "exception catching off"
        from repro.util.errors import CommandError
        with pytest.raises(CommandError):
            shell.execute("catch maybe")

    def test_stopiteration_never_catches(self, debug_pair):
        """Generator control flow must not masquerade as a bug."""
        server, client, session = debug_pair
        session.request("catch_exceptions", {"enabled": True})
        try:
            box = {}

            def generator_user():
                return sum(x for x in [1, 2, 3])

            thread = threading.Thread(
                target=lambda: box.setdefault("r", generator_user()))
            thread.start()
            thread.join(10)
            assert box["r"] == 6
            # no exception stops occurred
            assert all(v.capture.reason != "exception"
                       for v in client.views() if v.capture)
        finally:
            session.request("catch_exceptions", {"enabled": False})

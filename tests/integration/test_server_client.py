"""Integration: DebugServer ↔ DebugClient over real TCP sockets.

Covers the paper's section 4 machinery end to end within one process:
breakpoints, stepping, eval, the Variables view, source sync over the
second data socket, the Processes-and-threads view, and the
1 server : 1 client policy of section 4.1.
"""

import os
import threading

import pytest

from repro.util.errors import CommandError, SessionError

SRC = os.path.abspath(__file__)


def countdown(n):
    values = []
    while n > 0:
        values.append(n)       # BP_LINE
        n -= 1
    return values


BP_LINE = countdown.__code__.co_firstlineno + 3


def run_in_thread(func, *args):
    box = {}

    def runner():
        box["result"] = func(*args)

    thread = threading.Thread(target=runner)
    thread.start()
    return thread, box


class TestBreakpointFlow:
    def test_stop_inspect_resume(self, debug_pair):
        server, client, session = debug_pair
        bp = session.request("set_break", {"file": SRC, "line": BP_LINE})
        thread, box = run_in_thread(countdown, 3)

        view = client.wait_for_stop(timeout=10)[0]
        capture = view.wait_stopped(10)
        assert capture.reason == "breakpoint"
        assert capture.breakpoint_id == bp["id"]
        assert capture.top.line == BP_LINE
        assert capture.top.function == "countdown"

        # eval and Variables view against the live parked frame
        assert view.evaluate("n")["value"] == "3"
        variables = view.variables()
        assert variables["locals"]["values"] == "[]"

        session.request("clear_break", {"id": bp["id"]})
        view.cont()
        thread.join(10)
        assert box["result"] == [3, 2, 1]

    def test_breakpoint_hit_count_visible(self, debug_pair):
        server, client, session = debug_pair
        bp = session.request("set_break",
                             {"file": SRC, "line": BP_LINE,
                              "condition": "n == 1"})
        thread, box = run_in_thread(countdown, 4)
        view = client.wait_for_stop(timeout=10)[0]
        view.wait_stopped(10)
        rows = session.request("breaks")
        assert rows[0]["hit_count"] == 1
        session.request("clear_break", {"id": bp["id"]})
        view.cont()
        thread.join(10)

    def test_stack_command_matches_event_capture(self, debug_pair):
        server, client, session = debug_pair
        session.request("set_break", {"file": SRC, "line": BP_LINE,
                                      "temporary": True})
        thread, box = run_in_thread(countdown, 2)
        view = client.wait_for_stop(timeout=10)[0]
        event_capture = view.wait_stopped(10)
        polled = view.stack()
        assert polled.top.line == event_capture.top.line
        assert polled.top.function == "countdown"
        view.cont()
        thread.join(10)


class TestStepping:
    def test_step_next_sequence(self, debug_pair):
        server, client, session = debug_pair
        session.request("set_break", {"file": SRC, "line": BP_LINE,
                                      "temporary": True})
        thread, box = run_in_thread(countdown, 3)
        view = client.wait_for_stop(timeout=10)[0]
        view.wait_stopped(10)

        marker = view.stop_marker
        view.next()
        capture = view.wait_stopped_after(marker, 10)
        assert capture.top.function == "countdown"
        assert capture.top.line == BP_LINE + 1  # n -= 1

        marker = view.stop_marker
        view.next()
        capture = view.wait_stopped_after(marker, 10)
        assert capture.top.line in (BP_LINE - 1, BP_LINE + 2)  # while / return

        view.cont()
        thread.join(10)
        assert box["result"] == [3, 2, 1]


class TestSourceSync:
    def test_fetch_source_lines(self, debug_pair):
        server, client, session = debug_pair
        result = session.fetch_source(SRC, start=1, end=5)
        assert result["start"] == 1
        assert "Integration" in result["lines"][0]

    def test_render_view_shows_marker(self, debug_pair):
        server, client, session = debug_pair
        session.request("set_break", {"file": SRC, "line": BP_LINE,
                                      "temporary": True})
        thread, box = run_in_thread(countdown, 2)
        view = client.wait_for_stop(timeout=10)[0]
        view.wait_stopped(10)
        rendered = client.activate(view)
        marked = [line for line in rendered["source"]
                  if line.startswith("->")]
        assert len(marked) == 1
        assert f"{BP_LINE}" in marked[0]
        assert rendered["reason"] == "breakpoint"
        view.cont()
        thread.join(10)

    def test_missing_file_is_error(self, debug_pair):
        server, client, session = debug_pair
        result = session.fetch_source("/no/such/file.py", start=1, end=3)
        assert result["lines"][0] == ""


class TestThreadsView:
    def test_threads_lists_parked_state(self, debug_pair):
        server, client, session = debug_pair
        session.request("set_break", {"file": SRC, "line": BP_LINE,
                                      "temporary": True})
        thread, box = run_in_thread(countdown, 2)
        view = client.wait_for_stop(timeout=10)[0]
        view.wait_stopped(10)
        rows = session.request("threads")
        states = {row["ue"]["tid"]: row["parked"] for row in rows}
        assert states[view.ue.tid] is True
        view.cont()
        thread.join(10)

    def test_info_describes_session(self, debug_pair):
        server, client, session = debug_pair
        info = session.request("info")
        assert info["pid"] == os.getpid()
        assert "resume" in info["commands"]
        assert info["port"] == server.port


class TestClientPolicy:
    def test_second_command_client_refused(self, debug_pair):
        server, client, session = debug_pair
        from repro.client import DebugClient
        second = DebugClient()
        with pytest.raises((SessionError, Exception)):
            second.attach("127.0.0.1", server.port)
        second.close()
        # the original session still works
        assert session.request("info")["pid"] == os.getpid()

    def test_errors_are_command_errors(self, debug_pair):
        server, client, session = debug_pair
        with pytest.raises(CommandError):
            session.request("clear_break", {"id": 999})
        with pytest.raises(CommandError):
            session.request("no_such_command")
        with pytest.raises(CommandError):
            session.request("resume", {"ue": {"pid": 1, "tid": 2},
                                       "action": "continue"})


class TestSuspendResume:
    def test_suspend_all_then_resume_all(self, debug_pair):
        server, client, session = debug_pair
        # suspend_all catches every traced UE — including this test's own
        # main thread (in a real deployment the client lives in another
        # process).  Auto-release the main thread the moment it parks so
        # the test can keep orchestrating.
        main_tid = threading.get_ident()
        client.on_stop = (lambda view:
                          view.cont() if view.ue.tid == main_tid else None)
        stop_flag = threading.Event()

        def spin():
            count = 0
            while not stop_flag.is_set():
                count += 1
            return count

        thread, box = run_in_thread(spin)
        try:
            session.request("suspend_all")
            # wait until the SPINNER (not the main thread) is parked
            deadline = 10

            def spinner_stopped():
                return any(v.ue.tid == thread.ident and v.is_stopped
                           for v in client.views())

            import time
            end = time.monotonic() + deadline
            while time.monotonic() < end and not spinner_stopped():
                time.sleep(0.01)
            assert spinner_stopped(), "spinner never parked"

            view = next(v for v in client.views()
                        if v.ue.tid == thread.ident)
            assert view.capture.reason == "suspend"
            session.request("resume_all")
            view.wait_resumed(10)
        finally:
            client.on_stop = None
            stop_flag.set()
            thread.join(10)

    def test_low_intrusive_one_thread_stopped_other_runs(self, debug_pair):
        """Footnote 1: only the suspended thread stops."""
        server, client, session = debug_pair
        stop_flag = threading.Event()
        progress = {"a": 0, "b": 0}

        def spin(key):
            while not stop_flag.is_set():
                progress[key] += 1

        thread_a, _ = run_in_thread(spin, "a")
        thread_b, _ = run_in_thread(spin, "b")
        try:
            from repro.server import protocol
            from repro.util.ids import UEId
            ue_a = UEId(os.getpid(), thread_a.ident)
            session.request("suspend", {"ue": protocol.ue_to_wire(ue_a)})
            view = client.wait_for_stop(timeout=10)[0]
            view.wait_stopped(10)
            assert view.ue == ue_a

            # thread A is parked: its counter freezes; B keeps climbing.
            a_before, b_before = progress["a"], progress["b"]
            import time
            time.sleep(0.2)
            assert progress["a"] == a_before, "suspended thread still ran"
            assert progress["b"] > b_before, "unrelated thread was stopped"

            view.cont()
            view.wait_resumed(10)
        finally:
            stop_flag.set()
            thread_a.join(10)
            thread_b.join(10)

"""Integration: fleet-scale client properties against fake debug servers.

Real ``DebugServer``\\ s in one test process all share ``os.getpid()``, and
a :class:`DebugClient` refuses two sessions to one pid — so fleet-shaped
tests speak the wire protocol through *fake* servers that answer the
handshake with synthetic pids.  That keeps every claim here about the
CLIENT: pipelined out-of-order completion, O(1) thread cost, and
scatter-gather sweeps that record holes instead of aborting.

The fakes use blocking framing helpers on purpose: they stand for the
server side, which has its own reactor and its own tests.
"""

import socket
import threading
import time

import pytest

from repro.client import DebugClient, DebugSession
from repro.server import protocol
from repro.util import ringlog
from repro.util.errors import RequestTimeoutError
from repro.util.framing import recv_frame, send_frame

pytestmark = pytest.mark.timeout(60)


class FakeDebugServer:
    """Protocol-level stand-in for one debuggee's debug server.

    Answers hello with a synthetic pid and echoes requests; subclass-free
    customisation via ``on_request(conn, message) -> bool`` returning
    True when it handled the reply itself.
    """

    def __init__(self, pid, on_request=None):
        self.pid = pid
        self.on_request = on_request
        self.listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.listener.bind(("127.0.0.1", 0))
        self.listener.listen(8)
        self.port = self.listener.getsockname()[1]
        self._conns = []
        self._serve_threads = []
        self._lock = threading.Lock()
        self._closing = False
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"fake-accept-{pid}", daemon=True)
        self._accept_thread.start()

    def _accept_loop(self):
        while True:
            try:
                conn, _addr = self.listener.accept()
            except OSError:
                return
            with self._lock:
                if self._closing:
                    conn.close()
                    return
                self._conns.append(conn)
                thread = threading.Thread(target=self._serve, args=(conn,),
                                          name=f"fake-serve-{self.pid}",
                                          daemon=True)
                self._serve_threads.append(thread)
            thread.start()

    def _serve(self, conn):
        try:
            hello = recv_frame(conn)
            if not isinstance(hello, dict) or hello.get("type") != "hello":
                return
            send_frame(conn, protocol.make_hello_ack(
                pid=self.pid, parent_pid=1, program=f"fake-{self.pid}",
                main_thread=1, session_token=f"tok-{self.pid}"))
            while True:
                message = recv_frame(conn)
                if message is None:
                    return
                if message.get("type") == "ping":
                    send_frame(conn, protocol.make_pong(
                        message.get("seq", 0), pid=self.pid))
                elif message.get("type") == "request":
                    if self.on_request is not None \
                            and self.on_request(conn, message):
                        continue
                    send_frame(conn, protocol.make_response(
                        message["id"], {"echo": message["command"],
                                        "pid": self.pid}))
        except OSError:
            return
        finally:
            conn.close()

    def close(self):
        with self._lock:
            self._closing = True
            conns = list(self._conns)
            serve_threads = list(self._serve_threads)
        # A close() from this thread does not wake an accept() blocked in
        # the loop thread — poke it with a throwaway connection so it
        # observes _closing and exits, then reap every thread (a leaked
        # non-dionea thread poisons later tests, e.g. the sampler's
        # skipped-passes unit test).
        try:
            socket.create_connection(("127.0.0.1", self.port),
                                     timeout=1.0).close()
        except OSError:
            pass
        self.listener.close()
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            conn.close()
        self._accept_thread.join(5.0)
        for thread in serve_threads:
            thread.join(5.0)
        assert not self._accept_thread.is_alive(), "fake accept loop leaked"


def dionea_threads():
    return [t for t in threading.enumerate()
            if t.name.startswith("dionea-")]


@pytest.fixture
def fleet():
    servers = []

    def spawn(pid, on_request=None):
        server = FakeDebugServer(pid, on_request=on_request)
        servers.append(server)
        return server

    yield spawn
    for server in servers:
        server.close()


class TestPipelining:
    def test_out_of_order_completion(self, fleet):
        """Response to the SECOND request lands first; both resolve."""
        held = {}

        def on_request(conn, message):
            if message["command"] == "slow":
                held[message["id"]] = conn   # park it, answer later
                return True
            if message["command"] == "release":
                for req_id, held_conn in sorted(held.items()):
                    send_frame(held_conn, protocol.make_response(
                        req_id, {"echo": "slow", "order": "late"}))
                held.clear()
                return False                 # default reply for release
            return False

        server = fleet(910001, on_request=on_request)
        with DebugClient() as client:
            session = client.attach("127.0.0.1", server.port,
                                    heartbeat_interval=0)
            slow = session.request_async("slow")
            fast = session.request_async("fast")
            assert fast.wait(5.0)["echo"] == "fast"
            assert not slow.done             # genuinely still in flight
            release = session.request_async("release")
            assert slow.wait(5.0)["order"] == "late"
            assert release.wait(5.0)["echo"] == "release"

    def test_many_in_flight_same_channel(self, fleet):
        server = fleet(910002)
        with DebugClient() as client:
            session = client.attach("127.0.0.1", server.port,
                                    heartbeat_interval=0)
            calls = [session.request_async("status") for _ in range(50)]
            for call in calls:
                assert call.wait(5.0)["pid"] == 910002
            # ids were all distinct (pipelining correlates by id)
            assert len({c.request_id for c in calls}) == 50

    def test_timeout_forgets_pending(self, fleet):
        def on_request(conn, message):
            return message["command"] == "black-hole"  # never answered

        server = fleet(910003, on_request=on_request)
        with DebugClient() as client:
            session = client.attach("127.0.0.1", server.port,
                                    heartbeat_interval=0)
            call = session.request_async("black-hole")
            with pytest.raises(RequestTimeoutError):
                call.wait(0.2)
            # The lost id is forgotten; the channel still works.
            assert session.request("status", timeout=5.0)["pid"] == 910003


class TestThreadScaling:
    def test_client_threads_constant_in_session_count(self, fleet):
        """The tentpole: N sessions cost the same client threads as 1."""
        servers = [fleet(920000 + i) for i in range(12)]
        with DebugClient() as client:
            client.attach("127.0.0.1", servers[0].port,
                          heartbeat_interval=0.2)
            baseline = len(dionea_threads())
            for server in servers[1:]:
                client.attach("127.0.0.1", server.port,
                              heartbeat_interval=0.2)
            assert len(client.sessions()) == 12
            assert len(dionea_threads()) == baseline  # O(1), not O(N)
            # reactor loop + dispatcher only
            assert baseline <= 2
            results, errors = client.cluster_request("status", timeout=5.0)
            assert errors == {}
            assert set(results) == {s.pid for s in servers}
        assert dionea_threads() == []  # close() reaps both threads


class TestScatterGather:
    def test_sweep_records_holes_not_aborts(self, fleet):
        def black_hole(conn, message):
            return message["command"] == "telemetry"   # swallow

        good1 = fleet(930001)
        dead = fleet(930002, on_request=black_hole)
        good2 = fleet(930003)
        with DebugClient() as client:
            for server in (good1, dead, good2):
                client.attach("127.0.0.1", server.port,
                              heartbeat_interval=0)
            out = client.cluster_telemetry(timeout=0.5,
                                           include_client=False)
            assert set(out["processes"]) == {930001, 930003}
            assert set(out["errors"]) == {930002}
            assert "RequestTimeoutError" in out["errors"][930002]
            assert out["fleet"]["sessions"] == 3
            # The hole is diagnosable from the obs ringlog afterwards.
            lines = [r.message for r in ringlog.GLOBAL_LOG.snapshot()
                     if "hole at pid 930002" in r.message]
            assert lines, "cluster hole was not recorded in the ringlog"

    def test_gather_is_one_deadline_not_per_pid(self, fleet):
        """Sweep over N stalled pids costs ~1 timeout, not N timeouts."""
        def stall(conn, message):
            return message["command"] == "telemetry"

        servers = [fleet(940000 + i, on_request=stall) for i in range(5)]
        with DebugClient() as client:
            for server in servers:
                client.attach("127.0.0.1", server.port,
                              heartbeat_interval=0)
            started = time.monotonic()
            results, errors = client.cluster_request("telemetry",
                                                     timeout=0.5)
            elapsed = time.monotonic() - started
            assert results == {}
            assert len(errors) == 5
            assert elapsed < 0.5 * 3  # one shared deadline, not 5 x 0.5

    def test_cluster_set_break_and_continue(self, fleet):
        def verbs(conn, message):
            command = message["command"]
            if command == "set_break":
                send_frame(conn, protocol.make_response(
                    message["id"], {"id": 7, "file": "app.py", "line": 3}))
                return True
            if command == "resume_all":
                send_frame(conn, protocol.make_response(
                    message["id"], {"resumed": 2}))
                return True
            return False

        servers = [fleet(950000 + i, on_request=verbs) for i in range(3)]
        with DebugClient() as client:
            for server in servers:
                client.attach("127.0.0.1", server.port,
                              heartbeat_interval=0)
            out = client.cluster_set_break(file="app.py", line=3,
                                           timeout=5.0)
            assert out["errors"] == {}
            assert all(r["id"] == 7 for r in out["breakpoints"].values())
            out = client.cluster_continue(timeout=5.0)
            assert out["errors"] == {}
            assert all(r["resumed"] == 2 for r in out["resumed"].values())


class TestFleetHealth:
    def test_heartbeat_aggregate_across_sessions(self, fleet):
        servers = [fleet(960000 + i) for i in range(3)]
        with DebugClient() as client:
            for server in servers:
                client.attach("127.0.0.1", server.port,
                              heartbeat_interval=0.05)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                health = client.fleet_health()
                if health["heartbeats_seen"] >= 6 \
                        and "rtt_seconds" in health:
                    break
                time.sleep(0.05)
            assert health["sessions"] == 3
            rtt = health["rtt_seconds"]
            assert 0 <= rtt["min"] <= rtt["p50"] <= rtt["max"]
            assert rtt["slowest_pid"] in {s.pid for s in servers}
            assert health["miss_budget_used"]["max"] < 1.0

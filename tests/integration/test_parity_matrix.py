"""Parity matrix: the fast path and the backend seam must be invisible.

The per-code fast path (LineTable probe + main-thread demotion) and the
pluggable trace backend are pure dispatch optimisations — a debugging
session must produce byte-identical *behaviour* whichever combination is
live.  This module re-runs the breakpoint, stepping, suspend/resume,
watchpoint and fork-following integration suites across every available
{backend} × {fastpath on, off} variant by re-importing their test
classes under variant-parametrized fixtures, plus one scripted in-process
test that diffs the literal stop streams of a fastpath-on engine against
a fastpath-off engine.

On CPython 3.11 the matrix is settrace × {on, off}; when ``sys.
monitoring`` exists (3.12+) the monitoring backend rows light up too.
"""

import pytest

from repro.client import DebugClient
from repro.tracing.backends import (
    BACKEND_ENV,
    FASTPATH_ENV,
    MonitoringBackend,
)
from repro.tracing.engine import TraceEngine

# Re-collected under this module's variant fixtures (pytest resolves
# fixtures from the *requesting* module, so these classes run against
# the parametrized debug_pair/dionea below, not the conftest ones).
from tests.integration.test_fork_following import (  # noqa: F401
    TestChildRendezvous,
    TestInheritedBreakpoints,
)
from tests.integration.test_recording_and_watch import (  # noqa: F401
    TestWatchpointsOverWire,
)
from tests.integration.test_server_client import (  # noqa: F401
    TestBreakpointFlow,
    TestStepping,
    TestSuspendResume,
)
from tests.unit.test_engine import BP_LINE, SRC, Scripted, loop_sum

pytestmark = pytest.mark.forks


def _variants():
    variants = [("settrace", "1"), ("settrace", "0")]
    if MonitoringBackend.available():
        variants += [("monitoring", "1"), ("monitoring", "0")]
    return variants


@pytest.fixture(params=_variants(),
                ids=lambda v: f"{v[0]}-fastpath{'on' if v[1] == '1' else 'off'}")
def trace_variant(request, monkeypatch):
    backend, fastpath = request.param
    monkeypatch.setenv(BACKEND_ENV, backend)
    monkeypatch.setenv(FASTPATH_ENV, fastpath)
    return request.param


@pytest.fixture
def debug_pair(trace_variant, portfile_path):
    from repro.server import DebugServer

    server = DebugServer(program="test", park_timeout=15.0)
    server.start()
    assert server.engine.backend_name == trace_variant[0]
    assert server.engine.fastpath == (trace_variant[1] == "1")
    client = DebugClient()
    session = client.attach("127.0.0.1", server.port)
    yield server, client, session
    client.close()
    server.close()


@pytest.fixture
def dionea(trace_variant, portfile_path):
    from repro.core import Dionea

    debugger = Dionea(program="test", portfile_path=portfile_path,
                      park_timeout=15.0)
    debugger.start()
    assert debugger.server.engine.backend_name == trace_variant[0]
    yield debugger
    debugger.stop()


@pytest.fixture
def watching_client(dionea, waiter):
    client = DebugClient()
    client.watch_portfile(dionea.portfile)
    waiter(lambda: client.sessions(), message="attach to parent")
    yield client
    client.close()


def _stepping_workload():
    total = loop_sum(3)
    total += loop_sum(2)
    return total


def _stop_signature(capture):
    # Compare the workload's frames only: below _stepping_workload sit
    # the harness and pytest frames, whose line numbers differ by
    # call-site between the two _run_variant invocations.
    frames = []
    for f in capture.frames:
        frames.append((f.function, f.line))
        if f.function == "_stepping_workload":
            break
    return (capture.reason, capture.breakpoint_id, tuple(frames))


def _run_variant(fastpath):
    """One breakpoint-then-step session; returns (result, signatures, hits)."""
    engine = TraceEngine(park_timeout=5.0, backend="settrace",
                         fastpath=fastpath)
    script = Scripted(engine=engine,
                      actions=["step", "next", "continue"])
    bp = engine.breakpoints.add(SRC, BP_LINE)
    result = script.run(_stepping_workload)
    return result, [_stop_signature(s) for s in script.stops], bp.hit_count


class TestFastpathStopStreamParity:
    """The literal stop streams must match, not just pass/fail."""

    def test_identical_stop_streams_and_hit_counts(self):
        result_on, stops_on, hits_on = _run_variant(fastpath=True)
        result_off, stops_off, hits_off = _run_variant(fastpath=False)
        assert result_on == result_off == 4
        assert stops_on == stops_off
        assert hits_on == hits_off
        assert len(stops_on) >= 5  # 3 + 2 bp hits, plus step stops

    def test_fastpath_engine_actually_fastpathed(self):
        """Guard against the parity test silently comparing off vs off."""
        engine = TraceEngine(park_timeout=5.0, backend="settrace",
                             fastpath=True)
        assert engine.fastpath
        # An untouched file's code objects are irrelevant once a
        # breakpoint exists elsewhere — the probe must say so.
        engine.breakpoints.add("/dionea/elsewhere.py", 1)
        assert not engine.linetable.probe(loop_sum.__code__)
        off = TraceEngine(park_timeout=5.0, backend="settrace",
                          fastpath=False)
        assert not off.fastpath

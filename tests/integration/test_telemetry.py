"""Integration: fork-aware telemetry end to end (the obs subsystem).

A real Dionea facade, a watching client, real ``os.fork`` calls: every
process in the fork tree must answer the ``telemetry`` command with its
OWN numbers (child registries reset and re-labeled by the obs fork
handler), ``cluster_telemetry`` must cover every live pid, and the merged
sweep must export as a valid Chrome trace-event document.
"""

import os
import time

import pytest

from repro import obs
from repro.client import DebugClient
from repro.obs.export import chrome_trace, validate_trace

pytestmark = pytest.mark.forks


def wait_child(pid, timeout=15.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        done, status = os.waitpid(pid, os.WNOHANG)
        if done == pid:
            return os.waitstatus_to_exitcode(status)
        time.sleep(0.01)
    os.kill(pid, 9)
    os.waitpid(pid, 0)
    raise AssertionError(f"child {pid} did not exit in {timeout}s")


@pytest.fixture
def watching_client(dionea, waiter):
    client = DebugClient()
    client.watch_portfile(dionea.portfile)
    waiter(lambda: client.sessions(), message="attach to parent")
    yield client
    client.close()


class TestTelemetryCommand:
    def test_snapshot_shape_and_identity(self, dionea, watching_client):
        session = watching_client.sessions()[0]
        snap = session.request("telemetry", {})
        assert snap["pid"] == os.getpid()
        assert snap["program"] == "test"
        assert snap["epoch"] == dionea.server.session.epoch
        assert snap["fork_generation"] == 0
        assert {"clock", "metrics", "spans", "ringlog"} <= set(snap)
        assert {"wall", "mono"} <= set(snap["clock"])
        metrics = snap["metrics"]
        assert metrics["labels"]["pid"] == os.getpid()
        # the command that fetched this snapshot is itself counted
        assert metrics["counters"]["server.commands{command=telemetry}"] >= 1

    def test_command_latency_histogram_populated(self, dionea,
                                                 watching_client):
        session = watching_client.sessions()[0]
        session.request("info")
        session.request("threads")
        snap = session.request("telemetry", {})
        hists = snap["metrics"]["histograms"]
        assert any(k.startswith("server.command_seconds") for k in hists)
        info_key = "server.command_seconds{command=info}"
        assert hists[info_key]["count"] >= 1
        assert hists[info_key]["sum"] > 0

    def test_spans_record_commands(self, dionea, watching_client):
        session = watching_client.sessions()[0]
        session.request("info")
        snap = session.request("telemetry", {})
        names = {s["name"] for s in snap["spans"]}
        assert "cmd:info" in names

    def test_reset_drains_counters(self, dionea, watching_client):
        obs.inc("test.reset_sentinel", 5)
        session = watching_client.sessions()[0]
        first = session.request("telemetry", {"reset": True})
        assert first["metrics"]["counters"]["test.reset_sentinel"] == 5
        second = session.request("telemetry", {})
        assert "test.reset_sentinel" not in second["metrics"]["counters"]

    def test_ringlog_rides_along_but_is_not_drained(self, dionea,
                                                    watching_client):
        from repro.util.ringlog import GLOBAL_LOG, debug_event
        debug_event("test", "telemetry ringlog probe")
        session = watching_client.sessions()[0]
        snap = session.request("telemetry", {"reset": True})
        messages = [r["message"] for r in snap["ringlog"]]
        assert "telemetry ringlog probe" in messages
        # reset drains metrics/spans, never the flight recorder
        survivors = [r.message for r in GLOBAL_LOG.snapshot()]
        assert "telemetry ringlog probe" in survivors


class TestForkAwareness:
    def test_child_registry_reset_and_relabeled(self, dionea,
                                                watching_client):
        """The telemetry flavour of Fig. 4: the child must not report
        the parent's numbers under its own pid."""
        obs.inc("test.parent_sentinel", 42)
        pid = os.fork()
        if pid == 0:
            time.sleep(0.5)
            os._exit(0)
        session = watching_client.session_for_pid(pid, timeout=10)
        snap = session.request("telemetry", {})
        assert snap["pid"] == pid
        labels = snap["metrics"]["labels"]
        assert labels["pid"] == pid
        assert labels["epoch"] >= 1
        # inherited shards were dropped: the parent's counter is gone
        assert "test.parent_sentinel" not in snap["metrics"]["counters"]
        wait_child(pid)

    def test_child_fork_phase_timings_survive_the_reset(self, dionea,
                                                        watching_client):
        """The obs reset runs FIRST among child handlers, so the dionea
        child phase's own per-hook duration lands in the child's fresh
        registry instead of being wiped with the parent's shards."""
        pid = os.fork()
        if pid == 0:
            time.sleep(0.5)
            os._exit(0)
        session = watching_client.session_for_pid(pid, timeout=10)
        snap = session.request("telemetry", {})
        hists = snap["metrics"]["histograms"]
        assert any(k.startswith("fork.child_seconds") for k in hists)
        wait_child(pid)

    def test_parent_registry_unaffected_by_fork(self, dionea,
                                                watching_client):
        obs.inc("test.parent_keeps_this", 7)
        pid = os.fork()
        if pid == 0:
            os._exit(0)
        wait_child(pid)
        parent_session = watching_client.session_for_pid(os.getpid())
        snap = parent_session.request("telemetry", {})
        assert snap["metrics"]["counters"]["test.parent_keeps_this"] == 7
        assert snap["metrics"]["labels"]["pid"] == os.getpid()
        # the parent-side fork bracket was counted
        assert snap["metrics"]["counters"].get("fork.forks", 0) >= 1


class TestClusterTelemetry:
    def test_covers_every_live_pid(self, dionea, watching_client):
        pids = []
        for _ in range(2):
            pid = os.fork()
            if pid == 0:
                time.sleep(1.0)
                os._exit(0)
            pids.append(pid)
        for pid in pids:
            watching_client.session_for_pid(pid, timeout=10)
        sweep = watching_client.cluster_telemetry()
        covered = set(sweep["processes"])
        assert covered >= {os.getpid(), *pids}
        for pid, snap in sweep["processes"].items():
            assert snap["pid"] == pid
            assert snap["metrics"]["labels"]["pid"] == pid
        assert "client" in sweep
        for pid in pids:
            wait_child(pid)

    def test_sweep_exports_as_valid_chrome_trace(self, dionea,
                                                 watching_client,
                                                 tmp_path):
        pid = os.fork()
        if pid == 0:
            time.sleep(0.8)
            os._exit(0)
        watching_client.session_for_pid(pid, timeout=10)
        # make sure both processes have spans/commands to export
        for session in watching_client.sessions():
            session.request("info")
        sweep = watching_client.cluster_telemetry()
        document = chrome_trace(list(sweep["processes"].values()),
                                client_snapshot=sweep.get("client"))
        assert validate_trace(document) == []
        event_pids = {e["pid"] for e in document["traceEvents"]}
        assert {os.getpid(), pid} <= event_pids
        x_events = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert x_events, "no spans exported"
        wait_child(pid)


class TestShellAndHeartbeat:
    def test_shell_telemetry_verbs(self, dionea, watching_client):
        from repro.client.shell import Shell
        shell = Shell(watching_client)
        text = shell.execute("telemetry")
        assert f"process {os.getpid()}" in text
        assert "server.commands" in text
        cluster = shell.execute("telemetry cluster")
        assert "client (this process)" in cluster

    def test_heartbeat_rtt_recorded_client_side(self, dionea, waiter):
        client = DebugClient()
        try:
            client.attach("127.0.0.1", dionea.port,
                          heartbeat_interval=0.1)
            waiter(lambda: any(
                k.startswith("client.heartbeat_rtt_seconds")
                for k in obs.REGISTRY.snapshot()["histograms"]),
                timeout=5.0, message="heartbeat RTT sample")
            hist = obs.REGISTRY.snapshot()["histograms"][
                "client.heartbeat_rtt_seconds"]
            assert hist["count"] >= 1
            assert 0 < hist["max"] < 5.0
        finally:
            client.close()

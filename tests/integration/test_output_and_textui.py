"""Integration: the Output window pipeline and the Fig. 2 text UI."""

import os
import threading

import pytest

from repro.client import DebugClient, Shell, TextUI
from repro.server import DebugServer
from repro.util.errors import ViewError

SRC = os.path.abspath(__file__)


def chatty_worker(n):
    total = 0
    for i in range(n):
        print(f"processing item {i}")
        total += i                      # UI_BP_LINE
    return total


UI_BP_LINE = chatty_worker.__code__.co_firstlineno + 4


@pytest.fixture
def io_pair():
    server = DebugServer(program="ui-test", park_timeout=15.0,
                         capture_io=True)
    server.start()
    client = DebugClient()
    session = client.attach("127.0.0.1", server.port)
    yield server, client, session
    client.close()
    server.close()


class TestOutputPipeline:
    def test_output_events_reach_client(self, io_pair, waiter):
        server, client, session = io_pair
        server.output_capture.reinstall()  # pytest re-wrapped stdout
        print("hello from the debuggee")
        waiter(lambda: "hello from the debuggee"
               in client.output_for(os.getpid()),
               message="output event")

    def test_output_command_returns_buffer(self, io_pair):
        server, client, session = io_pair
        server.output_capture.reinstall()
        print("via command")
        result = session.request("output", {"stream": "stdout"})
        assert result["capturing"]
        assert "via command" in result["text"]

    def test_capture_toggle(self, io_pair):
        server, client, session = io_pair
        session.request("capture_output", {"enabled": False})
        assert not server.output_capture.installed
        session.request("capture_output", {"enabled": True})
        assert server.output_capture.installed

    def test_shell_output_command(self, io_pair):
        server, client, session = io_pair
        shell = Shell(client)
        server.output_capture.reinstall()
        print("shell-visible line")
        out = shell.execute("output stdout")
        assert "shell-visible line" in out

    def test_feed_input_roundtrip(self, io_pair):
        server, client, session = io_pair
        session.request("feed_input", {"text": "fed line\n"})
        import sys
        assert sys.stdin.readline() == "fed line\n"
        session.request("close_input")
        assert sys.stdin.readline() == ""


class TestTextUI:
    def test_full_window_render(self, io_pair):
        server, client, session = io_pair
        server.output_capture.reinstall()
        session.request("set_break", {"file": SRC, "line": UI_BP_LINE,
                                      "condition": "i == 2",
                                      "temporary": True})
        box = {}
        thread = threading.Thread(
            target=lambda: box.setdefault("r", chatty_worker(4)))
        thread.start()
        view = client.wait_for_stop(timeout=10)[0]
        view.wait_stopped(10)
        client.activate(view)

        ui = TextUI(client)
        window = ui.render()

        # Source pane: the stop marker on the breakpoint line.
        assert "SOURCE" in window
        assert "->" in window
        assert f":{UI_BP_LINE} in chatty_worker()" in window
        # Variables pane: the loop state at i == 2.
        assert "i = 2" in window
        assert "total = 1" in window  # 0 + 1
        # Processes pane: the parked UE marked.
        assert "PROCESSES AND THREADS" in window
        assert "*" in window
        # Output pane: the debuggee's prints so far.
        assert "processing item 1" in window

        view.cont()
        thread.join(10)
        assert box["r"] == 6

    def test_render_without_views_raises(self):
        client = DebugClient()
        ui = TextUI(client)
        with pytest.raises(ViewError):
            ui.render()
        client.close()

    def test_panes_individually(self, io_pair, waiter):
        server, client, session = io_pair
        server.output_capture.reinstall()
        ui = TextUI(client)
        procs = ui.processes_pane()
        assert any("ui-test" in line or "process" in line
                   for line in procs)
        print("pane output line")
        waiter(lambda: "pane output line"
               in client.output_for(os.getpid()),
               message="output event")
        assert "pane output line" in "\n".join(
            ui.output_pane(os.getpid()))

    def test_shell_tree_command(self, io_pair):
        server, client, session = io_pair
        shell = Shell(client)
        out = shell.execute("tree")
        assert f"process {os.getpid()}" in out

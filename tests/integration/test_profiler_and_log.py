"""Integration: the profile/log commands over the wire."""

import threading
import time

import pytest

from repro.client import Shell
from repro.util.errors import CommandError


def spin_briefly(duration):
    total = 0
    deadline = time.monotonic() + duration
    while time.monotonic() < deadline:
        for _ in range(500):
            total += 1
    return total


class TestProfileCommands:
    def test_profile_cycle(self, debug_pair):
        server, client, session = debug_pair
        session.request("profile_start", {"interval_ms": 2.0})
        worker = threading.Thread(target=spin_briefly, args=(0.3,))
        worker.start()
        worker.join(10)
        result = session.request("profile_stop")
        assert result["total_sweeps"] > 10
        report = session.request("profile_report")
        assert report["profiles"], "no UE was sampled"
        all_functions = {
            row["function"]
            for data in report["profiles"].values()
            for row in data["hottest"]
        }
        assert "spin_briefly" in all_functions

    def test_double_start_rejected(self, debug_pair):
        server, client, session = debug_pair
        session.request("profile_start", {})
        with pytest.raises(CommandError):
            session.request("profile_start", {})
        session.request("profile_stop")

    def test_report_before_start_rejected(self, debug_pair):
        server, client, session = debug_pair
        with pytest.raises(CommandError):
            session.request("profile_report")

    def test_shell_profile_verbs(self, debug_pair):
        server, client, session = debug_pair
        shell = Shell(client)
        assert "profiler started" in shell.execute("profile start 2")
        spin_briefly(0.2)
        assert "profiler stopped" in shell.execute("profile stop")
        report = shell.execute("profile report")
        assert "sweeps" in report


class TestDebugLogCommand:
    def test_log_returns_engine_events(self, debug_pair):
        server, client, session = debug_pair
        result = session.request("debug_log", {"limit": 100})
        text = "\n".join(result["records"])
        # server startup always logs these
        assert "engine installed" in text or "debug server up" in text

    def test_shell_log_verb(self, debug_pair):
        server, client, session = debug_pair
        shell = Shell(client)
        out = shell.execute("log 20")
        assert out  # some records exist

    def test_shell_help_lists_everything(self, debug_pair):
        server, client, session = debug_pair
        shell = Shell(client)
        out = shell.execute("help")
        for verb in ("break", "continue", "watch", "catch", "profile",
                     "output", "deadlocks", "tree"):
            assert verb in out
        assert "c=continue" in out

"""Integration: degraded mode, detach farewell, tombstones, self-heal.

The do-no-harm escape hatches end to end within one process: a
debugger that concludes it can no longer be harmless removes itself
(``EV_DETACHED`` to the client, tombstone in the rendezvous file,
``os.fork`` restored), a wedged listener is healed onto a fresh port
and the client redials, and a lost session is re-dialed with
exponential backoff.
"""

import os
import threading
import time

import pytest

from repro.client import DebugClient
from repro.core import Dionea
from repro.forkhooks.augment import active_patcher
from repro.util.portfile import PortFile
from tests.conftest import wait_until


def live_session(client, pid=None):
    """The non-closed session for *pid*, or None (no waiting)."""
    session = client._sessions.get(  # noqa: SLF001 - peek, don't block
        pid if pid is not None else os.getpid())
    return session if session is not None and not session.closed else None


@pytest.fixture
def attached(portfile_path):
    """A started Dionea plus a client attached through the portfile."""
    debugger = Dionea(program="degraded-test",
                      portfile_path=portfile_path, park_timeout=15.0)
    debugger.start()
    client = DebugClient()
    client.watch_portfile(PortFile(portfile_path), poll_interval=0.01)
    client.session_for_pid(os.getpid(), timeout=10.0)
    yield debugger, client
    client.close()
    debugger.stop()


class TestDegradedMode:
    def test_degrade_detaches_cleanly(self, attached):
        debugger, client = attached
        original_fork = debugger.patcher._original_fork
        farewells = []
        client.on_detached = lambda session, reason: farewells.append(
            (session.pid, reason))

        debugger._degrade("trusted phase failed (test)")

        wait_until(lambda: farewells, message="EV_DETACHED farewell")
        assert farewells == [(os.getpid(), "trusted phase failed (test)")]
        # the debugger is gone: alias restored, facade slot freed
        assert debugger.server.detached
        assert os.fork is original_fork
        assert active_patcher() is None
        assert not debugger.started
        # ...and the debuggee still forks, bare
        pid = os.fork()
        if pid == 0:
            os._exit(17)
        assert os.waitstatus_to_exitcode(os.waitpid(pid, 0)[1]) == 17

    def test_detach_tombstones_portfile(self, attached, portfile_path):
        debugger, client = attached
        # Stop the watcher first: its GC deliberately reaps tombstones
        # ("both the tombstone and every record it covers"), so a tick
        # landing between the write and the read would erase the very
        # record this test asserts on.
        client.close()
        debugger._degrade("test")
        records = PortFile(portfile_path).read_all()
        assert any(r.tombstoned and r.pid == os.getpid() for r in records)
        assert records[-1].reason == "test"

    def test_tombstone_stops_redials(self, attached):
        """After the farewell the watcher must not dial the pid again —
        the tombstone masks the old announce."""
        debugger, client = attached
        gone = threading.Event()
        client.on_detached = lambda session, reason: gone.set()
        debugger._degrade("test")
        assert gone.wait(5)
        # several watcher polls later, still no resurrected session
        time.sleep(0.1)
        assert live_session(client) is None

    def test_detach_is_idempotent(self, attached):
        debugger, client = attached
        debugger.server.detach("first")
        debugger.server.detach("second")  # no raise, no double farewell
        assert debugger.server.detached


class TestWatchdogHeal:
    def test_heal_moves_port_and_client_redials(self, attached,
                                                portfile_path):
        """The watchdog's heal path: fresh listener, fresh port, same
        pid re-announced — the watching client treats it as a redial."""
        debugger, client = attached
        old_port = debugger.port
        old_session = live_session(client)

        debugger.server.heal_listener("test wedge")

        assert debugger.port != old_port
        records = PortFile(portfile_path).read_all()
        assert records[-1].port == debugger.port
        wait_until(lambda: (live_session(client) is not None
                            and live_session(client) is not old_session),
                   timeout=10.0, message="client redial onto healed port")
        # the healed session is live: a command round-trip works
        assert live_session(client).request("breaks") == []

    def test_heal_survives_repeated_wedges(self, attached):
        debugger, client = attached
        ports = {debugger.port}
        for _ in range(2):
            debugger.server.heal_listener("again")
            ports.add(debugger.port)
        assert len(ports) == 3  # every heal landed on a fresh port
        assert not debugger.server.detached


class TestBackoffReattach:
    def test_lost_session_is_redialed_with_backoff(self, portfile_path):
        """Session loss (not detach) triggers the client's exponential
        backoff redial until the server answers again."""
        debugger = Dionea(program="backoff-test",
                          portfile_path=portfile_path, park_timeout=15.0)
        debugger.start()
        client = DebugClient(auto_reattach=True, reattach_base=0.05,
                             reattach_cap=0.2, reattach_attempts=8)
        try:
            session = client.attach("127.0.0.1", debugger.port)
            losses = []
            client.on_session_lost = lambda s, reason: losses.append(reason)
            # sever the transport underneath the session, then drive the
            # loss verdict the supervision layer would synthesise
            session.close()
            client._route_event(  # noqa: SLF001
                session, {"event": "session_lost",
                          "payload": {"reason": "test sever"}})
            wait_until(lambda: live_session(client) is not None,
                       timeout=10.0, message="backoff reattach")
            assert losses == ["test sever"]
            assert live_session(client).request("breaks") == []
        finally:
            client.close()
            debugger.stop()

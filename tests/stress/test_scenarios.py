"""Stress tier: seeded multi-process fault-injection scenarios.

Each test drives one scenario body through
:class:`repro.testkit.scenarios.ScenarioRunner`: real forks, real
sockets, real pipes, with faults injected at the named points in
:mod:`repro.testkit.faults`.  The runner sweeps the process-level
invariants afterwards (no leaked children, no orphaned port files, no
armed faults escaping), and every test asserts the sweep came back
clean.

Determinism: every scenario takes ONE seed; fault schedules derive from
it via :func:`point_seed`, so a failure reproduces by re-running with
the seed printed in the assertion message.  ``test_same_seed_same_fault_
sequence`` replays a single-threaded scenario twice and asserts the
fired-hit logs are byte-identical.

Run with ``make stress`` or ``pytest -m stress``; the tier is excluded
from the default (tier-1) run by the ``-m "not stress"`` addopts.
"""

import errno
import os
import socket
import time

import pytest

from repro.forkhooks.registry import ForkHandlerRegistry, run_around_fork
from repro.mp.pool import Pool
from repro.mp.queues import Queue
from repro.mp.synchronize import Barrier
from repro.testkit.faults import (
    Fault,
    FaultPlan,
    Schedule,
    point_seed,
    registry as fault_registry,
)
from repro.testkit.scenarios import (
    SCENARIO_MATRIX,
    ScenarioRunner,
    register_scenario,
)
from repro.util.framing import recv_frame, send_frame
from repro.util.portfile import PortFile, PortRecord

pytestmark = [pytest.mark.stress, pytest.mark.forks]

#: One master seed for the tier; individual tests perturb it so no two
#: scenarios share schedules by accident.
MASTER_SEED = 20250806

RUNNER = ScenarioRunner()


@pytest.fixture(autouse=True)
def clean_faults():
    fault_registry().reset()
    yield
    fault_registry().reset()


def run_ok(name, body, seed, budget=None):
    result = RUNNER.run(name, body, seed=seed, budget=budget)
    assert result.ok, (f"scenario {name} (seed={seed}) violated "
                       f"invariants: {result.violations}; "
                       f"details={result.details}")
    assert result.duration < 60.0, \
        f"{name} took {result.duration:.1f}s (budget is 60s)"
    return result


# ---------------------------------------------------------------------------
# 1. fork(2) failing at the worst moment (EAGAIN between prepare and fork)


def _fork_failure_storm(ctx):
    reg = ForkHandlerRegistry()
    depth = {"n": 0}

    def prep():
        depth["n"] += 1

    def par():
        depth["n"] -= 1

    reg.register("balance", prepare=prep, parent=par)
    reg.register("noop", child=lambda: None)
    plan = FaultPlan(ctx.seed, {
        "fork.os_fork": (Fault.os_error(errno.EAGAIN, "injected EAGAIN"),
                         Schedule.seeded(point_seed(ctx.seed, "fork.os_fork"),
                                         rate=0.4)),
    })
    failed = succeeded = 0
    with plan:
        for _ in range(12):
            try:
                pid, is_child = run_around_fork(reg, os.fork)
            except OSError:
                failed += 1
                # The failed fork must leave the registry exactly as
                # found: prepare fully undone, labels intact.
                assert depth["n"] == 0, "prepare left un-unwound"
                assert reg.labels == ["balance", "noop"]
                continue
            if is_child:
                os._exit(0)
            ctx.track_child(pid)
            succeeded += 1
        ctx.details["fire_log"] = plan.fire_logs()["fork.os_fork"]
    for pid in ctx.children:
        code = ctx.wait_child(pid, timeout=10.0)
        assert code == 0, f"forked child {pid} exited {code}"
    assert failed >= 1, "seed produced no fork failures; pick another"
    assert succeeded >= 1, "seed produced no successful forks"
    ctx.details.update(failed=failed, succeeded=succeeded)


def test_fork_failure_storm():
    run_ok("fork_failure_storm", _fork_failure_storm, seed=MASTER_SEED)


# ---------------------------------------------------------------------------
# 2. Partial frame delivery on a single-threaded socketpair (also the
#    determinism witness: its hit sequence is purely local)


def _framing_partial_delivery(ctx):
    left, right = socket.socketpair()
    ctx.defer(left.close)
    ctx.defer(right.close)
    plan = FaultPlan(ctx.seed, {
        "net.frame.send": (Fault.partial(4), 0.4),
        "net.frame.recv": (Fault.partial(3), 0.4),
    })
    payloads = [{"seq": i, "blob": "x" * (17 * (i % 7) + 1)}
                for i in range(40)]
    with plan:
        for message in payloads:
            send_frame(left, message)
            assert recv_frame(right) == message
        ctx.details["fire_logs"] = plan.fire_logs()
        ctx.details["stats"] = plan.stats()
    hits, fires = plan.stats()["net.frame.send"]
    assert fires >= 1, "rate=0.4 over 40 frames must clamp some sends"


def test_partial_frame_delivery():
    run_ok("framing_partial_delivery", _framing_partial_delivery,
           seed=MASTER_SEED + 2)


def test_same_seed_same_fault_sequence():
    """Replaying one seed twice must inject the identical fault
    sequence — the determinism contract of the whole tier."""
    first = run_ok("framing_replay_a", _framing_partial_delivery,
                   seed=MASTER_SEED + 3)
    second = run_ok("framing_replay_b", _framing_partial_delivery,
                    seed=MASTER_SEED + 3)
    assert first.details["fire_logs"] == second.details["fire_logs"]
    assert first.details["stats"] == second.details["stats"]


# ---------------------------------------------------------------------------
# 3. Queue fan-out across forked consumers under injected pipe EINTR


def _fork_chain_pipe_eintr(ctx):
    tasks = Queue(name="stress.tasks")
    results = Queue(name="stress.results")
    ctx.defer(tasks.close)
    ctx.defer(results.close)
    plan = FaultPlan(ctx.seed, {
        "mp.pipe.write": (Fault.eintr(), 0.15),
        "mp.pipe.read": (Fault.eintr(), 0.15),
    })
    n_children, n_items = 3, 30
    with plan:
        def consumer():
            while True:
                item = tasks.get(timeout=15.0)
                if item is None:
                    return 0
                results.put((os.getpid(), item))

        for _ in range(n_children):
            ctx.fork(consumer)
        for i in range(n_items):
            tasks.put(i)
        got = [results.get(timeout=15.0) for _ in range(n_items)]
        for _ in range(n_children):
            tasks.put(None)
        for pid in ctx.children:
            code = ctx.wait_child(pid, timeout=10.0)
            assert code == 0, f"consumer {pid} exited {code}"
        ctx.details["parent_fire_logs"] = plan.fire_logs()
    assert sorted(v for _, v in got) == list(range(n_items))
    ctx.details["consumers"] = len({pid for pid, _ in got})


def test_fork_chain_pipe_eintr():
    run_ok("fork_chain_pipe_eintr", _fork_chain_pipe_eintr,
           seed=MASTER_SEED + 5)


# ---------------------------------------------------------------------------
# 4. Queue flood with EINTR injected into every semaphore acquire


def _queue_flood_sem_eintr(ctx):
    tasks = Queue(name="stress.flood.tasks")
    results = Queue(name="stress.flood.results")
    ctx.defer(tasks.close)
    ctx.defer(results.close)
    plan = FaultPlan(ctx.seed, {
        "mp.sem.acquire": (Fault.eintr(), 0.2),
    })
    n_children, n_items = 4, 60
    with plan:
        def consumer():
            while True:
                item = tasks.get(timeout=15.0)
                if item is None:
                    return 0
                results.put(os.getpid())

        for _ in range(n_children):
            ctx.fork(consumer)
        for i in range(n_items):
            tasks.put(i)
        consumers = {results.get(timeout=15.0) for _ in range(n_items)}
        for _ in range(n_children):
            tasks.put(None)
        for pid in ctx.children:
            code = ctx.wait_child(pid, timeout=10.0)
            assert code == 0, f"consumer {pid} exited {code}"
    # Work-sharing must survive the injected storm (the fair-semaphore
    # guarantee the mp tier-1 tests pin in the happy path).
    assert len(consumers) >= 2, f"one consumer starved: {consumers}"
    ctx.details["consumers"] = len(consumers)


def test_queue_flood_sem_eintr():
    run_ok("queue_flood_sem_eintr", _queue_flood_sem_eintr,
           seed=MASTER_SEED + 7)


# ---------------------------------------------------------------------------
# 5. Pool fan-out with short writes + EINTR on the task/result pipes


def _square(x):
    return x * x


def _pool_fanout_partial_pipes(ctx):
    plan = FaultPlan(ctx.seed, {
        "mp.pipe.write": (Fault.partial(11), 0.3),
        "mp.pipe.read": (Fault.eintr(), 0.15),
    })
    with plan:
        pool = Pool(3)
        ctx.defer(pool.terminate)
        for pid in pool.worker_pids():
            ctx.track_child(pid)
        values = pool.map(_square, range(40), chunksize=3, timeout=20.0)
        pool.close()
        pool.join(10.0)
        ctx.details["parent_fire_logs"] = plan.fire_logs()
    assert values == [x * x for x in range(40)]


def test_pool_fanout_partial_pipes():
    run_ok("pool_fanout_partial_pipes", _pool_fanout_partial_pipes,
           seed=MASTER_SEED + 11)


# ---------------------------------------------------------------------------
# 6. Barrier generations across processes under semaphore EINTR


def _barrier_storm(ctx):
    barrier = Barrier(4, name="stress.barrier")
    ctx.defer(barrier.close)
    generations = 20
    plan = FaultPlan(ctx.seed, {
        "mp.sem.acquire": (Fault.eintr(), 0.05),
    })
    with plan:
        def party():
            for _ in range(generations):
                if not barrier.wait(timeout=20.0):
                    return 1
            return 0

        for _ in range(3):
            ctx.fork(party)
        for gen in range(generations):
            assert barrier.wait(timeout=20.0), \
                f"parent timed out in generation {gen}"
        for pid in ctx.children:
            code = ctx.wait_child(pid, timeout=10.0)
            assert code == 0, f"barrier party {pid} exited {code}"
    ctx.details["generations"] = generations


def test_barrier_storm():
    run_ok("barrier_storm", _barrier_storm, seed=MASTER_SEED + 13)


# ---------------------------------------------------------------------------
# 7. Client <-> debug server session with frames delivered in shreds


def _client_server_partial_frames(ctx):
    from repro.client import DebugClient
    from repro.server import DebugServer

    server = DebugServer(program="stress", park_timeout=15.0)
    server.start(install_tracing=False)
    ctx.defer(server.close)
    client = DebugClient()
    ctx.defer(client.close)
    plan = FaultPlan(ctx.seed, {
        "net.frame.send": (Fault.partial(5), 0.25),
        "net.frame.recv": (Fault.partial(3), 0.25),
        "server.listener.recv": (Fault.partial(7), 0.25),
    })
    with plan:
        session = client.attach("127.0.0.1", server.port)
        for _ in range(15):
            rows = session.request("threads", timeout=15.0)
            assert isinstance(rows, list)
        assert session.request("breaks", timeout=15.0) == []
        ctx.details["stats"] = plan.stats()
    client.close()
    assert session.closed
    hits, _ = ctx.details["stats"]["net.frame.send"]
    assert hits >= 15, "requests did not cross the framed send path"


def test_client_server_partial_frames():
    run_ok("client_server_partial_frames", _client_server_partial_frames,
           seed=MASTER_SEED + 17)


# ---------------------------------------------------------------------------
# 8. Child dies mid-handshake: announced its port, dies on first accept


def _child_death_mid_handshake(ctx):
    from repro.client import DebugClient
    from repro.server import DebugServer

    portfile = ctx.portfile()
    ctx.defer(portfile.remove)

    def dying_server():
        # The child arms its own registry copy: the first accepted
        # connection kills the process between the TCP accept and the
        # hello exchange — the paper's "child vanished during
        # rendezvous" case.
        fault_registry().reset()
        fault_registry().arm("server.listener.accept", Fault.exit(3))
        server = DebugServer(program="stress-child", park_timeout=15.0)
        server.start(install_tracing=False)
        portfile.announce(PortRecord(
            pid=os.getpid(), parent_pid=os.getppid(),
            host="127.0.0.1", port=server.port, created_at=time.time()))
        time.sleep(30.0)  # the injected exit fires first
        return 1

    child = ctx.fork(dying_server)
    deadline = time.monotonic() + 10.0
    record = None
    while time.monotonic() < deadline and record is None:
        for rec in portfile.read_all():
            if rec.pid == child:
                record = rec
        time.sleep(0.02)
    assert record is not None, "child never announced its port"

    client = DebugClient()
    ctx.defer(client.close)
    try:
        client.attach(record.host, record.port)
    except Exception as exc:  # noqa: BLE001 - any *contained* error is a pass
        ctx.details["attach_error"] = type(exc).__name__
    else:
        raise AssertionError("attach to a dying child must not succeed")
    assert ctx.wait_child(child, timeout=10.0) == 3
    # The client survives the failed attach and holds no ghost session.
    assert client.sessions() == []


def test_child_death_mid_handshake():
    run_ok("child_death_mid_handshake", _child_death_mid_handshake,
           seed=MASTER_SEED + 19)


# ---------------------------------------------------------------------------
# 9. Dial races the listener: first connects refused, backoff recovers


def _connect_refused_then_recovers(ctx):
    from repro.client import DebugClient
    from repro.server import DebugServer

    server = DebugServer(program="stress", park_timeout=15.0)
    server.start(install_tracing=False)
    ctx.defer(server.close)
    client = DebugClient()
    ctx.defer(client.close)
    plan = FaultPlan(ctx.seed, {
        "net.connect": (
            Fault.raises(lambda: ConnectionRefusedError("injected refusal")),
            Schedule.on_hits(1, 2)),
    })
    with plan:
        session = client.attach("127.0.0.1", server.port)
        assert isinstance(session.request("threads", timeout=15.0), list)
        stats = plan.stats()["net.connect"]
    # Hits 1 and 2 were refused; the backoff inside connect_endpoint's
    # refusal grace window must have carried the dial through.
    assert stats[1] == 2, f"expected exactly 2 injected refusals: {stats}"
    ctx.details["connect_stats"] = stats


def test_connect_refused_then_recovers():
    run_ok("connect_refused_then_recovers", _connect_refused_then_recovers,
           seed=MASTER_SEED + 23)


# ---------------------------------------------------------------------------
# 10. Frame delays: slow wire, everything still completes in order


def _frame_delay_storm(ctx):
    left, right = socket.socketpair()
    ctx.defer(left.close)
    ctx.defer(right.close)
    plan = FaultPlan(ctx.seed, {
        "net.frame.send": (Fault.delay(0.01), 0.3),
        "net.frame.recv": (Fault.delay(0.01), 0.3),
    })
    with plan:
        for seq in range(30):
            send_frame(left, {"seq": seq})
            assert recv_frame(right) == {"seq": seq}
        ctx.details["stats"] = plan.stats()


def test_frame_delay_storm():
    run_ok("frame_delay_storm", _frame_delay_storm, seed=MASTER_SEED + 29)


# ---------------------------------------------------------------------------
# 11. Server SIGKILLed mid-command: the pending request must resolve
#     within its deadline and the loss must be surfaced (supervision
#     acceptance scenario A)


def _traced_loop(n):
    total = 0
    for i in range(n):
        total += 1              # TRACED_BP_LINE
    return total


TRACED_BP_LINE = _traced_loop.__code__.co_firstlineno + 3
_SRC = os.path.abspath(__file__)


def _server_sigkilled_mid_command(ctx):
    from repro.client import DebugClient
    from repro.server import DebugServer
    from repro.util.errors import RequestTimeoutError, SessionLostError

    portfile = ctx.portfile()
    ctx.defer(portfile.remove)

    def doomed_server():
        # The child arms its own registry copy: the first dispatched
        # command SIGKILLs the process mid-request — no farewell, no
        # FIN-with-goodbye, just a vanished peer.
        fault_registry().reset()
        fault_registry().arm("server.request.dispatch", Fault.kill())
        server = DebugServer(program="stress-doomed", park_timeout=15.0)
        server.start(install_tracing=False)
        portfile.announce(PortRecord(
            pid=os.getpid(), parent_pid=os.getppid(),
            host="127.0.0.1", port=server.port, created_at=time.time()))
        time.sleep(30.0)  # the injected SIGKILL fires first
        return 1

    child = ctx.fork(doomed_server)
    deadline = time.monotonic() + 10.0
    record = None
    while time.monotonic() < deadline and record is None:
        for rec in portfile.read_all():
            if rec.pid == child:
                record = rec
        time.sleep(0.02)
    assert record is not None, "doomed server never announced"

    lost = []
    client = DebugClient(on_session_lost=lambda s, r: lost.append(r))
    ctx.defer(client.close)
    session = client.attach(record.host, record.port,
                            request_timeout=5.0,
                            heartbeat_interval=0.2, heartbeat_misses=3)
    start = time.monotonic()
    try:
        session.request("threads", timeout=5.0)
    except (SessionLostError, RequestTimeoutError) as exc:
        ctx.details["request_error"] = type(exc).__name__
    else:
        raise AssertionError("request to a SIGKILLed server succeeded")
    elapsed = time.monotonic() - start
    assert elapsed < 5.0, \
        f"pending request blocked {elapsed:.1f}s past the server's death"
    assert session.lost, "supervision never declared the session lost"
    end = time.monotonic() + 5.0
    while time.monotonic() < end and not lost:
        time.sleep(0.02)
    assert lost, "EV_SESSION_LOST never reached the client callback"

    assert ctx.wait_child(child, timeout=10.0) == -9  # SIGKILL
    # The liveness GC reaps the corpse's rendezvous record.
    reaped = portfile.reap_dead(min_age=0.0)
    assert child in [r.pid for r in reaped]
    ctx.details["elapsed"] = elapsed


def test_server_sigkilled_mid_command():
    run_ok("server_sigkilled_mid_command", _server_sigkilled_mid_command,
           seed=MASTER_SEED + 31)


# ---------------------------------------------------------------------------
# 12. Client restart: reattach to a surviving server within the grace
#     window, reclaiming parked UEs with breakpoints intact (supervision
#     acceptance scenario B)


def _client_restart_reattach(ctx):
    from repro.client import DebugClient
    from repro.server import DebugServer

    portfile = ctx.portfile()
    ctx.defer(portfile.remove)
    go_path = portfile.path + ".go"
    ctx.defer(lambda: os.path.exists(go_path) and os.unlink(go_path))

    def debuggee():
        fault_registry().reset()
        server = DebugServer(program="stress-reattach", park_timeout=30.0,
                             client_loss_grace=5.0)
        server.start()  # tracing on: the loop below is debuggable
        portfile.announce(PortRecord(
            pid=os.getpid(), parent_pid=os.getppid(),
            host="127.0.0.1", port=server.port, created_at=time.time()))
        end = time.monotonic() + 20.0
        while time.monotonic() < end and not os.path.exists(go_path):
            time.sleep(0.01)
        result = _traced_loop(3)  # parks at the client's breakpoint
        server.close()
        return 0 if result == 3 else 1

    child = ctx.fork(debuggee)
    deadline = time.monotonic() + 10.0
    record = None
    while time.monotonic() < deadline and record is None:
        for rec in portfile.read_all():
            if rec.pid == child:
                record = rec
        time.sleep(0.02)
    assert record is not None, "debuggee never announced"

    client = DebugClient()
    ctx.defer(client.close)
    session = client.attach(record.host, record.port)
    bp = session.request("set_break", {"file": _SRC,
                                       "line": TRACED_BP_LINE})
    with open(go_path, "w", encoding="utf-8") as fh:
        fh.write("go")
    view = client.wait_for_stop(timeout=15.0)[0]
    view.wait_stopped(15.0)

    # The client "crashes": the transport dies with stop state live.
    session.close()

    # ...and restarts within the server's grace window, presenting the
    # resume token.  Parked UE and breakpoint must both have survived.
    reclaimed = client.reattach(child)
    assert reclaimed.resumed, "server treated the reattach as fresh"
    view.wait_stopped(15.0)  # stop replay refreshed the view
    table = reclaimed.request("breaks")
    assert len(table) == 1, f"breakpoints not intact: {table}"

    reclaimed.request("clear_break", {"id": bp["id"]})
    view.cont()
    assert ctx.wait_child(child, timeout=15.0) == 0
    ctx.details["reattached"] = True


def test_client_restart_reattach():
    run_ok("client_restart_reattach", _client_restart_reattach,
           seed=MASTER_SEED + 37)


# ---------------------------------------------------------------------------
# 13. Breakpoint churn against a live 3-deep fork tree (body lives in
#     repro.testkit.scenarios so other harnesses can reuse it via the
#     scenario matrix).  The tentpole's cache-invalidation contract:
#     every seed must produce exactly the scripted stop counts at every
#     tree level, whatever the decoy add/remove schedule did in between.


@pytest.mark.parametrize("offset", range(10))
def test_breakpoint_churn_ten_seeds(offset):
    body = SCENARIO_MATRIX["breakpoint_churn"]
    result = run_ok("breakpoint_churn", body, seed=MASTER_SEED + 41 + offset)
    assert len(result.details["churn_log"]) == 3


# ---------------------------------------------------------------------------
# 14. Prefork fleet: gunicorn-style master + N workers, every session
#     multiplexed onto the client's single reactor (body lives in
#     repro.testkit.scenarios; the fleet benchmark reuses it at scale
#     via DIONEA_FLEET_WORKERS).


@pytest.mark.slow
@pytest.mark.parametrize("offset", range(2))
def test_prefork_fleet(offset):
    body = SCENARIO_MATRIX["prefork_fleet"]
    result = run_ok("prefork_fleet", body, seed=MASTER_SEED + 53 + offset)
    assert len(result.details["client_threads"]) <= 2
    assert len(result.details["sweep_seconds"]) == 3


# ---------------------------------------------------------------------------
# The scenario matrix: register this module's bodies so the registry in
# repro.testkit.scenarios names the tier's full coverage in one place.


for _name, _body in [
    ("fork_failure_storm", _fork_failure_storm),
    ("framing_partial_delivery", _framing_partial_delivery),
    ("fork_chain_pipe_eintr", _fork_chain_pipe_eintr),
    ("queue_flood_sem_eintr", _queue_flood_sem_eintr),
    ("pool_fanout_partial_pipes", _pool_fanout_partial_pipes),
    ("barrier_storm", _barrier_storm),
    ("client_server_partial_frames", _client_server_partial_frames),
    ("child_death_mid_handshake", _child_death_mid_handshake),
    ("connect_refused_then_recovers", _connect_refused_then_recovers),
    ("frame_delay_storm", _frame_delay_storm),
    ("server_sigkilled_mid_command", _server_sigkilled_mid_command),
    ("client_restart_reattach", _client_restart_reattach),
]:
    register_scenario(_name, _body)


def test_matrix_names_every_scenario():
    # >= rather than ==: the chaos tier (repro.testkit.chaos) registers
    # its own scenarios into the same matrix when collected alongside.
    assert set(SCENARIO_MATRIX) >= {
        "fork_failure_storm", "framing_partial_delivery",
        "fork_chain_pipe_eintr", "queue_flood_sem_eintr",
        "pool_fanout_partial_pipes", "barrier_storm",
        "client_server_partial_frames", "child_death_mid_handshake",
        "connect_refused_then_recovers", "frame_delay_storm",
        "server_sigkilled_mid_command", "client_restart_reattach",
        "breakpoint_churn", "prefork_fleet",
    }
    assert all(callable(body) for body in SCENARIO_MATRIX.values())


# ---------------------------------------------------------------------------
# Runner self-checks: the sweep actually reports what it claims to


class TestRunnerSweep:
    def test_leaked_child_is_killed_and_reported(self):
        pids = []

        def leaker(ctx):
            pids.append(ctx.fork(lambda: time.sleep(60) or 0))

        result = RUNNER.run("leaker", leaker, seed=1)
        assert not result.ok
        assert any("leaked children" in v for v in result.violations)
        # ...and the child is actually gone.
        assert pids
        for pid in pids:
            with pytest.raises(OSError):
                os.kill(pid, 0)

    def test_orphaned_portfile_is_reported_and_removed(self):
        paths = []

        def orphaner(ctx):
            pf = ctx.portfile()
            paths.append(pf.path)
            pf.announce(PortRecord(pid=1, parent_pid=0, host="h", port=1,
                                   created_at=0.0))

        result = RUNNER.run("orphaner", orphaner, seed=2)
        assert not result.ok
        assert any("orphaned port files" in v for v in result.violations)
        assert paths and not os.path.exists(paths[0])

    def test_armed_fault_left_behind_is_reported_and_reset(self):
        def armer(ctx):
            fault_registry().arm("left.behind", Fault.eintr())

        result = RUNNER.run("armer", armer, seed=3)
        assert not result.ok
        assert any("left armed" in v for v in result.violations)
        assert fault_registry().armed_points == []

    def test_budget_violation_reported(self):
        def sleeper(ctx):
            time.sleep(5.0)

        result = RUNNER.run("sleeper", sleeper, seed=4, budget=0.2)
        assert not result.ok
        assert any("budget exceeded" in v for v in result.violations)

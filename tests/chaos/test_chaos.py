"""Chaos tier: adversarial debuggees swept under the do-no-harm harness.

Every scenario in :mod:`repro.testkit.chaos` runs the same workload
bare and under a full Dionea facade with an adversary attached (hung /
raising / fork-calling handlers, exec, daemonize, mid-fork SIGKILL) and
asserts byte-identical output, identical wait status, and — for orderly
exits — evidence in the obs counters that the resilience machinery
(deadline, quarantine, reentrancy guard) actually engaged.

Each scenario sweeps ``SEEDS_PER_SCENARIO`` (≥10) seeds; the seed
perturbs round counts, tree shapes and kill points through ``ctx.rng``.
Run with ``make chaos`` or ``pytest -m chaos``; the tier is excluded
from the default (tier-1) run by the ``-m "not stress and not chaos"``
addopts.
"""

import pytest

from repro.testkit.chaos import CHAOS_SCENARIOS
from repro.testkit.faults import registry as fault_registry
from repro.testkit.scenarios import SCENARIO_MATRIX, ScenarioRunner

pytestmark = [pytest.mark.chaos, pytest.mark.forks]

MASTER_SEED = 20250809
SEEDS_PER_SCENARIO = 10

RUNNER = ScenarioRunner()


@pytest.fixture(autouse=True)
def clean_faults():
    fault_registry().reset()
    yield
    fault_registry().reset()


def run_ok(name, seed):
    result = RUNNER.run(name, SCENARIO_MATRIX[name], seed=seed)
    assert result.ok, (f"scenario {name} (seed={seed}) violated "
                       f"invariants: {result.violations}; "
                       f"details={result.details}")
    return result


def test_matrix_registers_every_chaos_scenario():
    assert set(CHAOS_SCENARIOS) <= set(SCENARIO_MATRIX)


@pytest.mark.parametrize("offset", range(SEEDS_PER_SCENARIO))
@pytest.mark.parametrize("name", CHAOS_SCENARIOS)
def test_do_no_harm(name, offset):
    result = run_ok(name, MASTER_SEED + 100 * CHAOS_SCENARIOS.index(name)
                    + offset)
    assert result.details["exit_code"] is not None, \
        "workload never reaped"

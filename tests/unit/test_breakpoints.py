"""Unit tests: breakpoint model and store (repro.tracing.breakpoints)."""

import pytest

from repro.tracing.breakpoints import BreakpointStore, canonical_file
from repro.util.errors import BreakpointError


@pytest.fixture
def store():
    return BreakpointStore()


FILE = "/some/path/app.py"
CANON = canonical_file(FILE)


class TestAddRemove:
    def test_add_assigns_monotonic_ids(self, store):
        a = store.add(FILE, 10)
        b = store.add(FILE, 20)
        assert b.id == a.id + 1

    def test_add_canonicalises_path(self, store):
        bp = store.add("/some/dir/../path/app.py", 5)
        assert bp.file == CANON

    def test_zero_or_negative_line_rejected(self, store):
        with pytest.raises(BreakpointError):
            store.add(FILE, 0)
        with pytest.raises(BreakpointError):
            store.add(FILE, -3)

    def test_remove_clears_lookup(self, store):
        bp = store.add(FILE, 10)
        store.remove(bp.id)
        assert store.match_line(CANON, 10) == []
        assert not store.break_anywhere_in(CANON)
        assert len(store) == 0

    def test_remove_unknown_raises(self, store):
        with pytest.raises(BreakpointError):
            store.remove(404)

    def test_two_breakpoints_same_line(self, store):
        store.add(FILE, 10)
        store.add(FILE, 10, condition="x > 1")
        assert len(store.match_line(CANON, 10)) == 2

    def test_clear(self, store):
        store.add(FILE, 1)
        store.add_function("main")
        store.clear()
        assert len(store) == 0
        assert not store.has_function_breaks()


class TestHotPathQueries:
    def test_break_anywhere_in(self, store):
        assert not store.break_anywhere_in(CANON)
        store.add(FILE, 3)
        assert store.break_anywhere_in(CANON)

    def test_files_with_breakpoints(self, store):
        store.add(FILE, 1)
        store.add("/other.py", 2)
        assert store.files_with_breakpoints() == {
            CANON, canonical_file("/other.py")}

    def test_match_line_misses(self, store):
        store.add(FILE, 10)
        assert store.match_line(CANON, 11) == []
        assert store.match_line(canonical_file("/nope.py"), 10) == []


class TestEffective:
    def test_plain_breakpoint_stops_and_counts(self, store):
        bp = store.add(FILE, 10)
        hit = store.effective(CANON, 10, {}, {})
        assert hit is bp
        assert bp.hit_count == 1

    def test_disabled_does_not_stop(self, store):
        bp = store.add(FILE, 10)
        store.set_enabled(bp.id, False)
        assert store.effective(CANON, 10, {}, {}) is None

    def test_reenabled_stops_again(self, store):
        bp = store.add(FILE, 10)
        store.set_enabled(bp.id, False)
        store.set_enabled(bp.id, True)
        assert store.effective(CANON, 10, {}, {}) is bp

    def test_true_condition_stops(self, store):
        store.add(FILE, 10, condition="x == 3")
        assert store.effective(CANON, 10, {}, {"x": 3}) is not None

    def test_false_condition_does_not_stop(self, store):
        store.add(FILE, 10, condition="x == 3")
        assert store.effective(CANON, 10, {}, {"x": 4}) is None

    def test_condition_reads_globals_too(self, store):
        store.add(FILE, 10, condition="FLAG")
        assert store.effective(CANON, 10, {"FLAG": True}, {}) is not None

    def test_broken_condition_stops(self, store):
        """pdb semantics: a condition that raises should surface."""
        store.add(FILE, 10, condition="1 / 0")
        assert store.effective(CANON, 10, {}, {}) is not None

    def test_ignore_count_skips_then_stops(self, store):
        store.add(FILE, 10, ignore_count=2)
        assert store.effective(CANON, 10, {}, {}) is None
        assert store.effective(CANON, 10, {}, {}) is None
        assert store.effective(CANON, 10, {}, {}) is not None

    def test_temporary_removed_after_first_hit(self, store):
        store.add(FILE, 10, temporary=True)
        assert store.effective(CANON, 10, {}, {}) is not None
        assert len(store) == 0
        assert store.effective(CANON, 10, {}, {}) is None

    def test_first_matching_of_stack_wins(self, store):
        store.add(FILE, 10, condition="False")
        second = store.add(FILE, 10)
        assert store.effective(CANON, 10, {}, {}) is second


class TestFunctionBreakpoints:
    def test_add_and_match(self, store):
        bp = store.add_function("process_item")
        assert store.has_function_breaks()
        assert store.match_function("process_item") == [bp]

    def test_empty_name_rejected(self, store):
        with pytest.raises(BreakpointError):
            store.add_function("")

    def test_effective_with_function(self, store):
        store.add_function("worker")
        hit = store.effective(CANON, 1, {}, {}, function="worker")
        assert hit is not None

    def test_remove_function_break(self, store):
        bp = store.add_function("f")
        store.remove(bp.id)
        assert not store.has_function_breaks()


class TestSnapshot:
    def test_snapshot_is_plain_data(self, store):
        store.add(FILE, 10, condition="x", temporary=True)
        store.add_function("g")
        snap = store.snapshot_state()
        assert len(snap) == 2
        assert snap[0]["condition"] == "x"
        assert snap[0]["temporary"] is True
        assert snap[1]["function"] == "g"
        import json
        json.dumps(snap)  # wire-safe

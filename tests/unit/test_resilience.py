"""Unit tests: do-no-harm resilience policy (repro.forkhooks.resilience).

The deadline/quarantine machinery is what keeps a misbehaving fork
handler from freezing or aborting the debuggee's forks; these tests pin
its contract without forking anything.
"""

import threading
import time

import pytest

from repro.forkhooks.resilience import (
    DEADLINE_ENV,
    PhaseTimeout,
    Quarantine,
    REINSTATE_ENV,
    ResiliencePolicy,
    in_handler_context,
    run_with_deadline,
)


class TestPolicyFromEnv:
    def test_defaults(self, monkeypatch):
        monkeypatch.delenv(DEADLINE_ENV, raising=False)
        monkeypatch.delenv(REINSTATE_ENV, raising=False)
        policy = ResiliencePolicy.from_env()
        assert policy.prepare_deadline == 5.0
        assert policy.reinstate_after == 3
        assert policy.contain_prepare is True

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv(DEADLINE_ENV, "0.25")
        monkeypatch.setenv(REINSTATE_ENV, "7")
        policy = ResiliencePolicy.from_env()
        assert policy.prepare_deadline == 0.25
        assert policy.reinstate_after == 7

    @pytest.mark.parametrize("value", ["", "nope", "-1", "0"])
    def test_garbage_and_nonpositive_fall_back(self, monkeypatch, value):
        monkeypatch.setenv(DEADLINE_ENV, value)
        monkeypatch.setenv(REINSTATE_ENV, value)
        policy = ResiliencePolicy.from_env()
        assert policy.prepare_deadline == 5.0
        assert policy.reinstate_after == 3


class TestQuarantine:
    def quarantine(self, reinstate=2):
        return Quarantine(ResiliencePolicy(reinstate_after=reinstate))

    def test_benched_handler_is_skipped(self):
        quarantine = self.quarantine()
        assert not quarantine.should_skip("h")
        quarantine.record_failure("h", "prepare failed")
        assert quarantine.should_skip("h")
        assert quarantine.benched_labels() == ["h"]

    def test_parole_after_clean_forks(self):
        quarantine = self.quarantine(reinstate=2)
        quarantine.record_failure("h", "hung")
        quarantine.note_clean_fork()
        assert quarantine.should_skip("h")  # one clean fork: still benched
        quarantine.note_clean_fork()
        assert not quarantine.should_skip("h")
        assert quarantine.benched_labels() == []

    def test_refailure_resets_the_clock(self):
        quarantine = self.quarantine(reinstate=2)
        quarantine.record_failure("h", "hung")
        quarantine.note_clean_fork()
        quarantine.record_failure("h", "hung again")
        quarantine.note_clean_fork()
        assert quarantine.should_skip("h")  # clock restarted at 2

    def test_benches_are_independent(self):
        quarantine = self.quarantine(reinstate=1)
        quarantine.record_failure("a", "x")
        quarantine.record_failure("b", "y")
        assert quarantine.benched_labels() == ["a", "b"]
        quarantine.note_clean_fork()
        assert quarantine.benched_labels() == []

    def test_clear(self):
        quarantine = self.quarantine()
        quarantine.record_failure("h", "x")
        quarantine.clear()
        assert not quarantine.should_skip("h")


class TestRunWithDeadline:
    def test_completes_within_deadline(self):
        ran = []
        run_with_deadline("ok", "prepare", lambda: ran.append(1), 5.0)
        assert ran == [1]

    def test_handler_exception_reraised(self):
        with pytest.raises(ZeroDivisionError):
            run_with_deadline("boom", "prepare", lambda: 1 / 0, 5.0)

    def test_timeout_raises_and_abandons(self):
        release = threading.Event()
        try:
            with pytest.raises(PhaseTimeout):
                run_with_deadline("hung", "prepare",
                                  lambda: release.wait(30), 0.05)
        finally:
            release.set()  # let the sacrificial thread finish promptly

    def test_sandbox_thread_is_daemon_and_named(self):
        names = []

        def snoop():
            thread = threading.current_thread()
            names.append((thread.name, thread.daemon))

        run_with_deadline("snoop", "prepare", snoop, 5.0)
        assert names == [("dionea-sandbox-snoop-prepare", True)]


class TestHandlerContext:
    def test_set_inside_sandbox_only(self):
        seen = []
        run_with_deadline("ctx", "prepare",
                          lambda: seen.append(in_handler_context()), 5.0)
        assert seen == [True]
        assert not in_handler_context()

    def test_cleared_even_after_handler_raises(self):
        flags = {}

        def boom():
            flags["during"] = in_handler_context()
            raise RuntimeError("x")

        with pytest.raises(RuntimeError):
            run_with_deadline("ctx", "prepare", boom, 5.0)
        # the flag is thread-local to the (dead) sandbox thread; the
        # calling thread must never see it
        assert not in_handler_context()

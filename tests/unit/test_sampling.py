"""Unit tests: the sampling profiler (repro.tracing.sampling)."""

import threading
import time

import pytest

from repro.tracing.sampling import SamplingProfiler
from repro.util.errors import TraceError
from repro.util.ids import UEId


def busy_function(stop_event):
    """A recognisable hot frame (body dominates; the is_set call is
    amortised so samples land in THIS frame, not threading.py)."""
    count = 0
    while not stop_event.is_set():
        for _ in range(2000):
            count += 1
    return count


class TestLifecycle:
    def test_start_stop(self):
        profiler = SamplingProfiler(interval=0.002)
        profiler.start()
        assert profiler.running
        profiler.stop()
        assert not profiler.running

    def test_double_start_rejected(self):
        profiler = SamplingProfiler()
        profiler.start()
        try:
            with pytest.raises(TraceError):
                profiler.start()
        finally:
            profiler.stop()

    def test_bad_interval(self):
        with pytest.raises(TraceError):
            SamplingProfiler(interval=0)

    def test_context_manager(self):
        with SamplingProfiler(interval=0.002) as profiler:
            time.sleep(0.05)
        assert profiler.total_samples > 0


class TestSampling:
    def test_hot_function_dominates(self):
        stop = threading.Event()
        worker = threading.Thread(target=busy_function, args=(stop,))
        worker.start()
        try:
            with SamplingProfiler(interval=0.002) as profiler:
                time.sleep(0.25)
                ue = UEId.current()._replace_tid(worker.ident) \
                    if hasattr(UEId, "_replace_tid") else None
            import os
            ue = UEId(os.getpid(), worker.ident)
            profile = profiler.profile_for(ue)
            assert profile.samples > 10
            hottest = profile.hottest(3)
            names = [key[2] for key, _ in hottest]
            assert "busy_function" in names
        finally:
            stop.set()
            worker.join(5)

    def test_inclusive_counts_cover_callers(self):
        stop = threading.Event()

        def outer(stop_event):
            return busy_function(stop_event)

        worker = threading.Thread(target=outer, args=(stop,))
        worker.start()
        try:
            with SamplingProfiler(interval=0.002) as profiler:
                time.sleep(0.2)
            import os
            profile = profiler.profile_for(UEId(os.getpid(),
                                                worker.ident))
            inclusive_names = {key[2] for key in profile.inclusive}
            assert "outer" in inclusive_names
            assert "busy_function" in inclusive_names
            # outer is never the top frame
            self_names = {key[2] for key in profile.self_counts}
            assert "busy_function" in self_names
        finally:
            stop.set()
            worker.join(5)

    def test_debugger_threads_skipped(self):
        done = threading.Event()

        def dionea_like():
            while not done.is_set():
                time.sleep(0.001)

        infra = threading.Thread(target=dionea_like,
                                 name="dionea-fake-listener")
        infra.start()
        try:
            with SamplingProfiler(interval=0.002) as profiler:
                time.sleep(0.1)
            import os
            ue = UEId(os.getpid(), infra.ident)
            assert profiler.profile_for(ue).samples == 0
        finally:
            done.set()
            infra.join(5)

    def test_reset(self):
        with SamplingProfiler(interval=0.002) as profiler:
            time.sleep(0.05)
        profiler.reset()
        assert profiler.total_samples == 0
        assert profiler.skipped_passes == 0
        assert profiler.profiles() == {}


class TestScheduling:
    def test_achieved_rate_tracks_requested_rate(self):
        """Deadline scheduling bounds drift: the old interval-after-pass
        scheduler achieved 1/(interval + pass_cost) Hz — every sweep's
        cost pushed the next one later.  Against a monotonic deadline,
        pass cost eats into the wait instead, so on a quiet process the
        achieved rate must come out close to the requested one."""
        with SamplingProfiler(interval=0.01) as profiler:
            time.sleep(0.5)
        requested = 1.0 / profiler.interval
        assert profiler.achieved_rate_hz == pytest.approx(requested,
                                                          rel=0.25)

    def test_achieved_rate_zero_before_running(self):
        profiler = SamplingProfiler(interval=0.005)
        assert profiler.achieved_rate_hz == 0.0

    def test_skipped_passes_counted_separately(self):
        """A sweep seeing only debugger threads records no UE: it must
        land in skipped_passes, not inflate total_samples."""
        done = threading.Event()

        def infra():
            while not done.is_set():
                time.sleep(0.001)

        # Rename the main thread so every thread in the process looks
        # like debugger infrastructure to the sampler.
        main = threading.current_thread()
        saved = main.name
        main.name = "dionea-test-main"
        extra = threading.Thread(target=infra, name="dionea-fake-extra")
        extra.start()
        try:
            with SamplingProfiler(interval=0.002) as profiler:
                time.sleep(0.1)
            assert profiler.total_samples == 0
            assert profiler.skipped_passes > 0
        finally:
            main.name = saved
            done.set()
            extra.join(5)

    def test_total_samples_requires_a_recorded_ue(self):
        """The normal case: the (unrenamed) main thread is sampled, so
        sweeps count as samples and the rate report is consistent."""
        with SamplingProfiler(interval=0.002) as profiler:
            time.sleep(0.1)
        assert profiler.total_samples > 0
        wire = profiler.to_wire()
        assert wire["total_sweeps"] == profiler.total_samples
        assert wire["skipped_passes"] == profiler.skipped_passes
        assert wire["requested_hz"] == pytest.approx(500.0)
        assert wire["achieved_hz"] > 0

    def test_render_reports_achieved_rate(self):
        with SamplingProfiler(interval=0.002) as profiler:
            time.sleep(0.05)
        text = profiler.render()
        assert "requested" in text and "achieved" in text


class TestReports:
    def test_render_mentions_hot_frame(self):
        stop = threading.Event()
        worker = threading.Thread(target=busy_function, args=(stop,))
        worker.start()
        try:
            with SamplingProfiler(interval=0.002) as profiler:
                time.sleep(0.2)
            text = profiler.render()
            assert "busy_function" in text
            assert "sweeps" in text
        finally:
            stop.set()
            worker.join(5)

    def test_to_wire_is_json_safe(self):
        import json
        stop = threading.Event()
        worker = threading.Thread(target=busy_function, args=(stop,))
        worker.start()
        try:
            with SamplingProfiler(interval=0.002) as profiler:
                time.sleep(0.1)
            wire = profiler.to_wire()
            json.dumps(wire)
            assert wire["total_sweeps"] > 0
        finally:
            stop.set()
            worker.join(5)

"""Unit tests: semaphore+pipe queues (repro.mp.queues)."""

import os
import queue as stdlib_queue
import threading
import time

import pytest

from repro.mp.queues import Queue, ThreadQueue
from repro.util.errors import QueueClosed


class TestQueueBasics:
    def test_fifo_order(self):
        q = Queue()
        for i in range(10):
            q.put(i)
        assert [q.get() for _ in range(10)] == list(range(10))
        q.close()

    def test_qsize_empty_tracking(self):
        q = Queue()
        assert q.empty() and q.qsize() == 0
        q.put("x")
        assert not q.empty() and q.qsize() == 1
        q.get()
        assert q.empty()
        q.close()

    def test_arbitrary_picklable_payloads(self):
        q = Queue()
        payloads = [None, 0, "text", b"bytes", [1, [2]], {"k": (3, 4)}]
        for p in payloads:
            q.put(p)
        assert [q.get() for _ in payloads] == payloads
        q.close()

    def test_get_nowait_empty_raises(self):
        q = Queue()
        with pytest.raises(stdlib_queue.Empty):
            q.get_nowait()
        q.close()

    def test_get_timeout_expires(self):
        q = Queue()
        start = time.monotonic()
        with pytest.raises(stdlib_queue.Empty):
            q.get(timeout=0.1)
        assert time.monotonic() - start >= 0.09
        q.close()

    def test_bytes_sent_accounting(self):
        q = Queue()
        assert q.bytes_sent == 0
        q.put("payload")
        assert q.bytes_sent > 0
        q.get()
        q.close()

    def test_closed_queue_rejects_ops(self):
        q = Queue()
        q.close()
        with pytest.raises(QueueClosed):
            q.put(1)
        with pytest.raises(QueueClosed):
            q.get()


class TestBoundedQueue:
    def test_full_and_put_nowait(self):
        q = Queue(maxsize=2)
        q.put(1)
        q.put(2)
        assert q.full()
        with pytest.raises(stdlib_queue.Full):
            q.put_nowait(3)
        q.get()
        assert not q.full()
        q.put_nowait(3)
        q.close()

    def test_put_timeout_expires_when_full(self):
        q = Queue(maxsize=1)
        q.put(1)
        with pytest.raises(stdlib_queue.Full):
            q.put(2, timeout=0.1)
        q.close()

    def test_get_unblocks_blocked_put(self):
        q = Queue(maxsize=1)
        q.put("first")
        done = threading.Event()

        def put_second():
            q.put("second", timeout=5.0)
            done.set()

        thread = threading.Thread(target=put_second)
        thread.start()
        time.sleep(0.05)
        assert q.get() == "first"
        assert done.wait(2.0)
        assert q.get() == "second"
        thread.join(2.0)
        q.close()


class TestConcurrentUse:
    def test_many_producers_one_consumer(self):
        q = Queue()
        n_producers, per_producer = 4, 100

        def produce(tag):
            for i in range(per_producer):
                q.put((tag, i))

        threads = [threading.Thread(target=produce, args=(t,))
                   for t in range(n_producers)]
        for t in threads:
            t.start()
        got = [q.get(timeout=5.0) for _ in range(n_producers * per_producer)]
        for t in threads:
            t.join()
        per_tag = {}
        for tag, i in got:
            per_tag.setdefault(tag, []).append(i)
        for tag, seq in per_tag.items():
            assert seq == sorted(seq), f"producer {tag} reordered"
        q.close()

    def test_many_consumers_drain_everything(self):
        q = Queue()
        for i in range(200):
            q.put(i)
        results = []
        lock = threading.Lock()

        def consume():
            while True:
                try:
                    item = q.get(timeout=0.2)
                except stdlib_queue.Empty:
                    return
                with lock:
                    results.append(item)

        threads = [threading.Thread(target=consume) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(results) == list(range(200))
        q.close()


@pytest.mark.forks
class TestAcrossProcesses:
    def test_parent_to_child_and_back(self):
        request = Queue()
        response = Queue()
        pid = os.fork()
        if pid == 0:
            task = request.get(timeout=5.0)
            response.put(task * 2)
            os._exit(0)
        request.put(21)
        assert response.get(timeout=5.0) == 42
        os.waitpid(pid, 0)
        request.close()
        response.close()

    def test_multiple_children_share_one_queue(self):
        tasks = Queue()
        results = Queue()
        pids = []
        for _ in range(3):
            pid = os.fork()
            if pid == 0:
                while True:
                    task = tasks.get(timeout=5.0)
                    if task is None:
                        os._exit(0)
                    results.put((os.getpid(), task + 1))
            pids.append(pid)
        for i in range(30):
            tasks.put(i)
        got = [results.get(timeout=5.0) for _ in range(30)]
        for _ in pids:
            tasks.put(None)
        for pid in pids:
            os.waitpid(pid, 0)
        values = sorted(v for _, v in got)
        assert values == list(range(1, 31))
        # at least two children actually participated (shared queue)
        assert len({pid for pid, _ in got}) >= 2
        tasks.close()
        results.close()

    def test_just_forked_siblings_are_not_starved(self):
        """Regression: the items semaphore must be *fair* to newborns.

        Without the post-fork fairness window an already-hot consumer
        drains the pipe before just-forked siblings get scheduled, and
        "N children share one queue" silently degenerates to one child
        doing everything.  Repeat the topology a few times so a lost
        race cannot hide behind one lucky run.
        """
        for _ in range(3):
            tasks = Queue()
            results = Queue()
            pids = []
            for _ in range(3):
                pid = os.fork()
                if pid == 0:
                    while True:
                        task = tasks.get(timeout=5.0)
                        if task is None:
                            os._exit(0)
                        results.put(os.getpid())
                pids.append(pid)
            for i in range(30):
                tasks.put(i)
            consumers = {results.get(timeout=5.0) for _ in range(30)}
            for _ in pids:
                tasks.put(None)
            for pid in pids:
                os.waitpid(pid, 0)
            assert len(consumers) >= 2, \
                f"one consumer starved its siblings: {consumers}"
            tasks.close()
            results.close()


class TestInjectedPipeFaults:
    """The queue survives EINTR and short I/O on its pipe (testkit)."""

    @pytest.fixture(autouse=True)
    def clean_faults(self):
        from repro.testkit.faults import registry
        registry().reset()
        yield
        registry().reset()

    def test_put_get_survive_injected_eintr(self):
        from repro.testkit.faults import Fault, Schedule, armed
        q = Queue()
        payload = list(range(50))
        with armed("mp.pipe.write", Fault.eintr(),
                   Schedule.every(3)):
            for item in payload:
                q.put(item)
        with armed("mp.pipe.read", Fault.eintr(),
                   Schedule.every(2)):
            assert [q.get(timeout=5.0) for _ in payload] == payload
        q.close()

    def test_round_trip_survives_short_writes(self):
        from repro.testkit.faults import Fault, armed
        q = Queue()
        blob = {"data": "x" * 2000, "n": 7}
        with armed("mp.pipe.write", Fault.partial(13)):
            q.put(blob)
        assert q.get(timeout=5.0) == blob
        q.close()

    def test_sem_acquire_survives_injected_eintr(self):
        from repro.testkit.faults import Fault, Schedule, armed
        q = Queue()
        q.put("token")
        with armed("mp.sem.acquire", Fault.eintr(), Schedule.on_hits(1)):
            assert q.get(timeout=5.0) == "token"
        q.close()


class TestThreadQueue:
    def test_basic_fifo(self):
        q = ThreadQueue()
        q.put("a")
        q.put("b")
        assert q.get() == "a" and q.get() == "b"

    def test_nonblocking_and_size(self):
        q = ThreadQueue(maxsize=1)
        assert q.empty()
        q.put(1)
        assert q.full() and q.qsize() == 1
        with pytest.raises(stdlib_queue.Full):
            q.put(2, block=False)

    def test_get_timeout(self):
        q = ThreadQueue()
        with pytest.raises(stdlib_queue.Empty):
            q.get(timeout=0.05)

    def test_cross_thread_handoff(self):
        q = ThreadQueue()

        def producer():
            time.sleep(0.02)
            q.put("item")

        thread = threading.Thread(target=producer)
        thread.start()
        assert q.get(timeout=2.0) == "item"
        thread.join()

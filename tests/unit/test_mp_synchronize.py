"""Unit tests: pipe-token semaphores, locks, events (repro.mp.synchronize)."""

import os
import threading
import time

import pytest

from repro.mp.synchronize import BoundedSemaphore, Event, Lock, Semaphore
from repro.util.errors import SyncObjectError


class TestSemaphore:
    def test_initial_value(self):
        sem = Semaphore(3)
        assert sem.value() == 3
        sem.close()

    def test_acquire_release_cycle(self):
        sem = Semaphore(1)
        assert sem.acquire()
        assert sem.value() == 0
        sem.release()
        assert sem.value() == 1
        sem.close()

    def test_nonblocking_miss(self):
        sem = Semaphore(0)
        assert not sem.acquire(blocking=False)
        sem.close()

    def test_timeout_expires(self):
        sem = Semaphore(0)
        start = time.monotonic()
        assert not sem.acquire(timeout=0.1)
        assert time.monotonic() - start >= 0.09
        sem.close()

    def test_release_wakes_blocked_thread(self):
        sem = Semaphore(0)
        got = threading.Event()

        def block():
            if sem.acquire(timeout=5.0):
                got.set()

        thread = threading.Thread(target=block)
        thread.start()
        time.sleep(0.05)
        sem.release()
        assert got.wait(2.0)
        thread.join(2.0)
        sem.close()

    def test_multi_release(self):
        sem = Semaphore(0)
        sem.release(5)
        assert sem.value() == 5
        sem.close()

    def test_negative_value_rejected(self):
        with pytest.raises(SyncObjectError):
            Semaphore(-1)

    def test_bad_release_count_rejected(self):
        sem = Semaphore(1)
        with pytest.raises(SyncObjectError):
            sem.release(0)
        sem.close()

    def test_closed_semaphore_rejects_ops(self):
        sem = Semaphore(1)
        sem.close()
        with pytest.raises(SyncObjectError):
            sem.acquire()
        with pytest.raises(SyncObjectError):
            sem.release()

    def test_context_manager(self):
        sem = Semaphore(1)
        with sem:
            assert sem.value() == 0
        assert sem.value() == 1
        sem.close()

    def test_reinit_restores_permits(self):
        sem = Semaphore(2)
        sem.acquire()
        sem.reinit(2)
        assert sem.value() == 2
        sem.close()

    @pytest.mark.forks
    def test_permits_shared_across_fork(self):
        """A release in the child wakes a waiter in the parent."""
        sem = Semaphore(0)
        pid = os.fork()
        if pid == 0:
            time.sleep(0.05)
            sem.release()
            os._exit(0)
        got = sem.acquire(timeout=5.0)
        os.waitpid(pid, 0)
        assert got
        sem.close()


class TestBoundedSemaphore:
    def test_over_release_rejected(self):
        sem = BoundedSemaphore(1)
        sem.acquire()
        sem.release()
        with pytest.raises(SyncObjectError):
            sem.release()
        sem.close()


class TestLock:
    def test_mutual_exclusion_between_threads(self):
        lock = Lock()
        counter = {"n": 0}

        def bump():
            for _ in range(100):
                with lock:
                    value = counter["n"]
                    time.sleep(0)  # widen the race window
                    counter["n"] = value + 1

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter["n"] == 400
        lock.close()

    def test_owner_tracking(self):
        from repro.util.ids import UEId
        lock = Lock()
        lock.acquire()
        assert lock.locked_by == UEId.current()
        lock.release()
        assert lock.locked_by is None
        lock.close()


class TestEvent:
    def test_initially_clear(self):
        event = Event()
        assert not event.is_set()
        assert not event.wait(timeout=0.05)
        event.close()

    def test_set_and_wait(self):
        event = Event()
        event.set()
        assert event.is_set()
        assert event.wait(timeout=0.1)
        # observing does not consume
        assert event.is_set()
        event.close()

    def test_clear(self):
        event = Event()
        event.set()
        event.clear()
        assert not event.is_set()
        event.close()

    def test_set_idempotent(self):
        event = Event()
        event.set()
        event.set()
        event.clear()
        assert not event.is_set()  # one clear drains all
        event.close()

    def test_broadcast_to_many_threads(self):
        event = Event()
        woken = []
        lock = threading.Lock()

        def waiters():
            if event.wait(timeout=5.0):
                with lock:
                    woken.append(threading.get_ident())

        threads = [threading.Thread(target=waiters) for _ in range(5)]
        for t in threads:
            t.start()
        time.sleep(0.05)
        event.set()
        for t in threads:
            t.join(2.0)
        assert len(woken) == 5
        event.close()

    @pytest.mark.forks
    def test_broadcast_across_fork(self):
        event = Event()
        pid = os.fork()
        if pid == 0:
            ok = event.wait(timeout=5.0)
            os._exit(0 if ok else 1)
        time.sleep(0.05)
        event.set()
        _, status = os.waitpid(pid, 0)
        assert os.waitstatus_to_exitcode(status) == 0
        event.close()

"""Unit tests: shell command parsing (repro.client.shell)."""

import pytest

from repro.client.shell import parse_location
from repro.util.errors import CommandError


class TestParseLocation:
    def test_plain(self):
        assert parse_location("app.py:12") == ("app.py", 12, None)

    def test_with_condition(self):
        assert parse_location("app.py:12, x > 3") == ("app.py", 12, "x > 3")

    def test_absolute_path(self):
        assert parse_location("/a/b/c.py:7") == ("/a/b/c.py", 7, None)

    def test_windows_style_colon_in_path(self):
        # rpartition: the LAST colon separates the line number
        file, line, cond = parse_location("C:/code/app.py:3")
        assert file == "C:/code/app.py" and line == 3

    def test_empty_condition_is_none(self):
        assert parse_location("f.py:1,")[2] is None

    def test_missing_colon_rejected(self):
        with pytest.raises(CommandError):
            parse_location("app.py")

    def test_bad_line_rejected(self):
        with pytest.raises(CommandError):
            parse_location("app.py:twelve")


class TestShellDispatchOffline:
    """Verbs that fail cleanly without a connection."""

    def _shell(self):
        from repro.client import DebugClient, Shell
        client = DebugClient()
        return Shell(client), client

    def test_empty_line_is_noop(self):
        shell, client = self._shell()
        assert shell.execute("") == ""
        client.close()

    def test_unknown_command_rejected(self):
        shell, client = self._shell()
        with pytest.raises(CommandError, match="unknown command"):
            shell.execute("frobnicate now")
        client.close()

    def test_command_needing_session_fails_without_one(self):
        shell, client = self._shell()
        with pytest.raises(CommandError, match="no attached sessions"):
            shell.execute("breaks")
        client.close()

    def test_command_needing_view_fails_without_one(self):
        shell, client = self._shell()
        with pytest.raises(CommandError, match="no active view"):
            shell.execute("continue")
        client.close()

    def test_aliases_resolve(self):
        shell, client = self._shell()
        # 'c' routes to continue (and then fails for want of a view)
        with pytest.raises(CommandError, match="no active view"):
            shell.execute("c")
        client.close()

    def test_p_requires_expression(self):
        shell, client = self._shell()
        with pytest.raises(CommandError):
            shell.execute("p")
        client.close()

    def test_disturb_validates_argument(self):
        shell, client = self._shell()
        with pytest.raises(CommandError, match="on.*off|'on' or 'off'"):
            shell.execute("disturb maybe")
        client.close()

    def test_threads_with_no_sessions(self):
        shell, client = self._shell()
        assert shell.execute("threads") == "no sessions"
        client.close()

    def test_sessions_with_no_sessions(self):
        shell, client = self._shell()
        assert shell.execute("sessions") == "no sessions"
        client.close()
